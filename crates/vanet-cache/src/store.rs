//! The on-disk store: an append-only journal plus an in-memory index.
//!
//! ## Journal format
//!
//! ```text
//! magic   : b"VANETCACHE1\n"                         (12 bytes, format version)
//! record  : u32 key_len | u32 payload_len | u64 checksum | key | payload
//! ```
//!
//! All integers are little-endian; `checksum` is FNV-1a over `key` then
//! `payload`; `key` is a [`CacheKey`] canonical line and `payload` a
//! [`RoundReport`] in the `vanet_stats::codec` encoding.
//!
//! ## Crash tolerance
//!
//! Appends are single `write_all` calls, so a kill mid-write can only tear
//! the **tail** of the file. [`SweepCache::open`] replays the journal from
//! the start and stops at the first record that is incomplete, fails its
//! checksum, or does not decode; the file is truncated back to the last
//! good record, the loss is reported via [`CacheStats::recovered_bytes`],
//! and the next append continues from there. Every record before the tear
//! survives — an interrupted sweep resumes instead of restarting.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use vanet_stats::RoundReport;

use crate::key::{fnv1a64, fnv1a64_chain, CacheKey};

/// The journal file kept inside a cache directory.
const JOURNAL_FILE: &str = "rounds.journal";

/// Format magic; bump the digit when the record or payload encoding changes.
const MAGIC: &[u8; 12] = b"VANETCACHE1\n";

/// `key_len | payload_len | checksum`.
const RECORD_HEADER_LEN: usize = 4 + 4 + 8;

/// Why a cache operation failed. Carries the journal path so that errors
/// surfacing through a sweep or the CLI are actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheError {
    path: PathBuf,
    message: String,
}

impl CacheError {
    fn new(path: &Path, message: impl Into<String>) -> Self {
        CacheError { path: path.to_path_buf(), message: message.into() }
    }

    fn io(path: &Path, action: &str, err: &std::io::Error) -> Self {
        CacheError::new(path, format!("cannot {action}: {err}"))
    }

    /// The journal (or directory) the failure concerns.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round cache at `{}`: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for CacheError {}

/// A point-in-time summary of a cache, as shown by `carq-cli cache stats`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct round reports in the index.
    pub entries: usize,
    /// Journal size on disk, in bytes.
    pub file_bytes: u64,
    /// Bytes of torn tail dropped when the journal was opened (0 after a
    /// clean shutdown).
    pub recovered_bytes: u64,
    /// Entries per scenario name, sorted by name.
    pub scenarios: Vec<(String, usize)>,
}

struct Inner {
    file: File,
    index: BTreeMap<String, RoundReport>,
    file_bytes: u64,
    recovered_bytes: u64,
}

/// A shared, thread-safe handle on one cache directory.
///
/// Lookups are served from an in-memory index loaded at open; [`put`]
/// appends to the journal and updates the index. A `&SweepCache` can be
/// used from any number of threads (the sweep engine's workers share one).
///
/// Two *processes* may append to the same journal concurrently only if they
/// write identical values per key — which the purity contract guarantees —
/// but interleaved appends from distinct handles are not torn-safe; run one
/// sweep per cache directory at a time.
///
/// [`put`]: SweepCache::put
pub struct SweepCache {
    path: PathBuf,
    inner: Mutex<Inner>,
}

impl fmt::Debug for SweepCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("cache lock poisoned");
        f.debug_struct("SweepCache")
            .field("path", &self.path)
            .field("entries", &inner.index.len())
            .field("file_bytes", &inner.file_bytes)
            .finish()
    }
}

impl SweepCache {
    /// Opens (creating if necessary) the cache in directory `dir` and
    /// replays its journal into memory, truncating away a torn tail if the
    /// previous writer was killed mid-append.
    ///
    /// # Errors
    ///
    /// I/O failures, and a journal whose header is not a vanet-cache magic —
    /// the open refuses to clobber a file it does not recognise.
    pub fn open(dir: impl AsRef<Path>) -> Result<SweepCache, CacheError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| CacheError::io(dir, "create the cache directory", &e))?;
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| CacheError::io(&path, "open the journal", &e))?;

        let mut buf = Vec::new();
        file.read_to_end(&mut buf).map_err(|e| CacheError::io(&path, "read the journal", &e))?;

        let mut recovered_bytes = 0u64;
        if buf.is_empty() || (buf.len() < MAGIC.len() && MAGIC.starts_with(&buf)) {
            // Fresh file, or a kill tore the header write itself: (re)write it.
            recovered_bytes = buf.len() as u64;
            file.set_len(0).map_err(|e| CacheError::io(&path, "reset the journal", &e))?;
            file.seek(SeekFrom::Start(0)).map_err(|e| CacheError::io(&path, "seek", &e))?;
            file.write_all(MAGIC).map_err(|e| CacheError::io(&path, "write the header", &e))?;
            buf = MAGIC.to_vec();
        } else if !buf.starts_with(MAGIC) {
            return Err(CacheError::new(
                &path,
                "not a vanet-cache journal (unrecognised header); refusing to touch it",
            ));
        }

        // Replay records up to the first torn/corrupt one.
        let mut index = BTreeMap::new();
        let mut pos = MAGIC.len();
        let valid_len = loop {
            if pos == buf.len() {
                break pos;
            }
            let Some(record_end) = record_end(&buf, pos) else { break pos };
            let key_len = read_u32(&buf, pos) as usize;
            let key_bytes = &buf[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + key_len];
            let payload = &buf[pos + RECORD_HEADER_LEN + key_len..record_end];
            let (Ok(key), Ok(report)) =
                (std::str::from_utf8(key_bytes), RoundReport::from_bytes(payload))
            else {
                break pos;
            };
            // Duplicate appends (e.g. two racing writers) are benign: the
            // purity contract makes their payloads identical. Last wins.
            index.insert(key.to_string(), report);
            pos = record_end;
        };
        if valid_len < buf.len() {
            recovered_bytes += (buf.len() - valid_len) as u64;
            file.set_len(valid_len as u64)
                .map_err(|e| CacheError::io(&path, "truncate the torn tail", &e))?;
            file.seek(SeekFrom::Start(valid_len as u64))
                .map_err(|e| CacheError::io(&path, "seek", &e))?;
        }

        Ok(SweepCache {
            path,
            inner: Mutex::new(Inner { file, index, file_bytes: valid_len as u64, recovered_bytes }),
        })
    }

    /// The report cached under `key`, if any.
    pub fn get(&self, key: &CacheKey) -> Option<RoundReport> {
        self.inner.lock().expect("cache lock poisoned").index.get(key.as_str()).cloned()
    }

    /// Appends `report` under `key`. Returns `false` (writing nothing) if
    /// the key is already cached — by the purity contract an existing entry
    /// is identical, so the journal stays free of redundant records.
    ///
    /// # Errors
    ///
    /// I/O failures while appending. The record is written with a single
    /// `write_all`, so a kill mid-append leaves at worst a torn tail for
    /// the next open to drop; a write *error* (e.g. a full disk) rolls the
    /// file back to the last good record before returning, so later puts
    /// cannot strand valid records behind a mid-file tear.
    pub fn put(&self, key: &CacheKey, report: &RoundReport) -> Result<bool, CacheError> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if inner.index.contains_key(key.as_str()) {
            return Ok(false);
        }
        let key_bytes = key.as_str().as_bytes();
        let payload = report.to_bytes();
        let checksum = fnv1a64_chain(fnv1a64(key_bytes), &payload);
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + key_bytes.len() + payload.len());
        record.extend_from_slice(&(key_bytes.len() as u32).to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&checksum.to_le_bytes());
        record.extend_from_slice(key_bytes);
        record.extend_from_slice(&payload);
        if let Err(e) = inner.file.write_all(&record) {
            // A partial append would become a *mid-file* tear if later puts
            // landed after it — and everything after a tear is dropped on
            // the next open. Roll back to the last good record so the
            // journal stays a valid prefix whatever happens next.
            let good = inner.file_bytes;
            let _ = inner.file.set_len(good);
            let _ = inner.file.seek(SeekFrom::Start(good));
            return Err(CacheError::io(&self.path, "append a record", &e));
        }
        inner.file_bytes += record.len() as u64;
        inner.index.insert(key.as_str().to_string(), report.clone());
        Ok(true)
    }

    /// Drops `key` from the **in-memory index only** (the journal is
    /// append-only), returning whether it was present. Until this handle
    /// re-`put`s the key, lookups through it miss; a fresh [`open`] sees the
    /// original entry again. This exists for tests and tools that need to
    /// simulate partial caches — it is not an on-disk delete (that is
    /// [`clear`]).
    ///
    /// [`open`]: SweepCache::open
    pub fn forget(&self, key: &CacheKey) -> bool {
        self.inner.lock().expect("cache lock poisoned").index.remove(key.as_str()).is_some()
    }

    /// Number of cached reports.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").index.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical key lines currently indexed, in sorted order.
    pub fn keys(&self) -> Vec<CacheKey> {
        self.inner
            .lock()
            .expect("cache lock poisoned")
            .index
            .keys()
            .map(|k| CacheKey::from_canonical(k.clone()))
            .collect()
    }

    /// A point-in-time summary: entry and byte counts, recovery info, and a
    /// per-scenario breakdown.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock poisoned");
        let mut scenarios: BTreeMap<String, usize> = BTreeMap::new();
        for key in inner.index.keys() {
            let scenario = key.split('|').next().unwrap_or("").to_string();
            *scenarios.entry(scenario).or_insert(0) += 1;
        }
        CacheStats {
            entries: inner.index.len(),
            file_bytes: inner.file_bytes,
            recovered_bytes: inner.recovered_bytes,
            scenarios: scenarios.into_iter().collect(),
        }
    }

    /// The journal file this handle reads and appends.
    pub fn journal_path(&self) -> &Path {
        &self.path
    }
}

/// Removes the journal in `dir`, returning the bytes freed (0 if there was
/// none). The directory itself is left in place.
///
/// # Errors
///
/// I/O failures other than the journal not existing.
pub fn clear(dir: impl AsRef<Path>) -> Result<u64, CacheError> {
    let path = dir.as_ref().join(JOURNAL_FILE);
    match std::fs::metadata(&path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(CacheError::io(&path, "stat the journal", &e)),
        Ok(meta) => {
            std::fs::remove_file(&path)
                .map_err(|e| CacheError::io(&path, "remove the journal", &e))?;
            Ok(meta.len())
        }
    }
}

fn read_u32(buf: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes"))
}

fn read_u64(buf: &[u8], pos: usize) -> u64 {
    u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8 bytes"))
}

/// Where the record starting at `pos` ends, or `None` if it is incomplete
/// or fails its checksum (i.e. the journal is torn at `pos`).
fn record_end(buf: &[u8], pos: usize) -> Option<usize> {
    if buf.len() - pos < RECORD_HEADER_LEN {
        return None;
    }
    let key_len = read_u32(buf, pos) as usize;
    let payload_len = read_u32(buf, pos + 4) as usize;
    let checksum = read_u64(buf, pos + 8);
    let body_start = pos + RECORD_HEADER_LEN;
    let end = body_start.checked_add(key_len)?.checked_add(payload_len)?;
    if end > buf.len() {
        return None;
    }
    let key = &buf[body_start..body_start + key_len];
    let payload = &buf[body_start + key_len..end];
    if fnv1a64_chain(fnv1a64(key), payload) != checksum {
        return None;
    }
    Some(end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use vanet_stats::RoundResult;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vanet-cache-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn key(i: u32) -> CacheKey {
        CacheKey::new("fake", 0xF1, "scenario=fake;x=i1", i, u64::from(i) * 31 + 7)
    }

    fn report(i: u32) -> RoundReport {
        RoundReport::new(i, u64::from(i) * 31 + 7, RoundResult::default())
            .with_counter("value", f64::from(i) + 0.5)
    }

    #[test]
    fn put_get_and_reopen() {
        let dir = temp_dir("roundtrip");
        let cache = SweepCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        assert!(cache.get(&key(0)).is_none());
        for i in 0..5 {
            assert!(cache.put(&key(i), &report(i)).unwrap());
        }
        // Duplicate puts write nothing.
        assert!(!cache.put(&key(2), &report(2)).unwrap());
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.get(&key(3)), Some(report(3)));
        let bytes_before = cache.stats().file_bytes;
        drop(cache);

        let reopened = SweepCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), 5);
        assert_eq!(reopened.get(&key(3)), Some(report(3)));
        let stats = reopened.stats();
        assert_eq!(stats.entries, 5);
        assert_eq!(stats.file_bytes, bytes_before);
        assert_eq!(stats.recovered_bytes, 0);
        assert_eq!(stats.scenarios, vec![("fake".to_string(), 5)]);
        assert_eq!(reopened.keys().len(), 5);
        assert!(format!("{reopened:?}").contains("entries"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = temp_dir("torn");
        let cache = SweepCache::open(&dir).unwrap();
        for i in 0..4 {
            cache.put(&key(i), &report(i)).unwrap();
        }
        let path = cache.journal_path().to_path_buf();
        let full_len = cache.stats().file_bytes;
        drop(cache);

        // Chop the last record mid-payload, as a kill mid-write would.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full_len - 7).unwrap();
        drop(file);

        let recovered = SweepCache::open(&dir).unwrap();
        assert_eq!(recovered.len(), 3, "the torn record is dropped");
        assert!(recovered.get(&key(3)).is_none());
        assert_eq!(recovered.get(&key(2)), Some(report(2)));
        let stats = recovered.stats();
        assert!(stats.recovered_bytes > 0);
        assert!(stats.file_bytes < full_len - 7, "file truncated to the last good record");

        // Appending after recovery works and survives another reopen.
        recovered.put(&key(3), &report(3)).unwrap();
        drop(recovered);
        let again = SweepCache::open(&dir).unwrap();
        assert_eq!(again.len(), 4);
        assert_eq!(again.get(&key(3)), Some(report(3)));
        assert_eq!(again.stats().recovered_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_checksum_cuts_the_journal_there() {
        let dir = temp_dir("bitrot");
        let cache = SweepCache::open(&dir).unwrap();
        for i in 0..3 {
            cache.put(&key(i), &report(i)).unwrap();
        }
        let path = cache.journal_path().to_path_buf();
        drop(cache);

        // Flip one byte in the middle record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let recovered = SweepCache::open(&dir).unwrap();
        assert!(recovered.len() < 3, "everything from the corrupt record on is dropped");
        assert_eq!(recovered.get(&key(0)), Some(report(0)));
        assert!(recovered.stats().recovered_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_are_refused() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), b"totally not a cache journal").unwrap();
        let err = SweepCache::open(&dir).unwrap_err();
        assert!(err.to_string().contains("unrecognised header"), "{err}");
        assert!(err.path().ends_with(JOURNAL_FILE));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_header_is_rewritten() {
        let dir = temp_dir("torn-header");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), &MAGIC[..5]).unwrap();
        let cache = SweepCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().recovered_bytes, 5);
        cache.put(&key(0), &report(0)).unwrap();
        drop(cache);
        assert_eq!(SweepCache::open(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn forget_is_in_memory_only() {
        let dir = temp_dir("forget");
        let cache = SweepCache::open(&dir).unwrap();
        cache.put(&key(0), &report(0)).unwrap();
        assert!(cache.forget(&key(0)));
        assert!(!cache.forget(&key(0)));
        assert!(cache.get(&key(0)).is_none());
        drop(cache);
        // The journal still has it.
        assert_eq!(SweepCache::open(&dir).unwrap().get(&key(0)), Some(report(0)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clear_removes_the_journal() {
        let dir = temp_dir("clear");
        assert_eq!(clear(&dir).unwrap(), 0, "clearing a missing journal is a no-op");
        let cache = SweepCache::open(&dir).unwrap();
        cache.put(&key(0), &report(0)).unwrap();
        drop(cache);
        assert!(clear(&dir).unwrap() > 0);
        assert!(SweepCache::open(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_puts_from_many_threads() {
        let dir = temp_dir("parallel");
        let cache = SweepCache::open(&dir).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..25u32 {
                        let n = t * 25 + i;
                        cache.put(&key(n), &report(n)).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 100);
        drop(cache);
        let reopened = SweepCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), 100);
        for n in [0u32, 37, 99] {
            assert_eq!(reopened.get(&key(n)), Some(report(n)));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
