//! The on-disk store: an append-only journal plus an in-memory index.
//!
//! ## Journal format
//!
//! ```text
//! magic   : b"VANETCACHE1\n"                         (12 bytes, format version)
//! record  : u32 key_len | u32 payload_len | u64 checksum | key | payload
//! ```
//!
//! All integers are little-endian; `checksum` is FNV-1a over `key` then
//! `payload`; `key` is a [`CacheKey`] canonical line and `payload` a
//! [`RoundReport`] in the `vanet_stats::codec` encoding.
//!
//! ## Crash tolerance
//!
//! Appends are single `write_all` calls, so a kill mid-write can only tear
//! the **tail** of the file. [`SweepCache::open`] replays the journal from
//! the start and stops at the first record that is incomplete, fails its
//! checksum, or does not decode; the file is truncated back to the last
//! good record, the loss is reported via [`CacheStats::recovered_bytes`],
//! and the next append continues from there. Every record before the tear
//! survives — an interrupted sweep resumes instead of restarting.
//!
//! ## Writer exclusion
//!
//! Appends from two *handles* on one journal are not torn-safe, so a
//! writable open takes an advisory lockfile (`cache.lock`, holding the
//! writer's pid). A second writer on the same directory fails fast with a
//! clear [`CacheError`] instead of interleaving appends; a lockfile left
//! behind by a crashed writer is detected (the pid is gone) and reclaimed.
//! [`SweepCache::open_read_only`] stays lock-free: it never writes, never
//! truncates a torn tail, and coexists with a live writer.
//!
//! ## Compaction
//!
//! The journal is append-only, so superseded records (last-write-wins
//! ingests, entries dropped with [`forget`]) accumulate as dead bytes.
//! [`SweepCache::compact`] rewrites the journal from the live index —
//! written to a temporary file and atomically renamed into place — and
//! returns the bytes reclaimed; [`CacheStats::live_bytes`] reports ahead of
//! time how small a compaction would make the file.
//!
//! [`forget`]: SweepCache::forget

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use vanet_stats::RoundReport;

use crate::key::{fnv1a64, fnv1a64_chain, CacheKey};

/// The journal file kept inside a cache directory.
pub(crate) const JOURNAL_FILE: &str = "rounds.journal";

/// The advisory writer lockfile kept next to the journal.
const LOCK_FILE: &str = "cache.lock";

/// Format magic; bump the digit when the record or payload encoding changes.
pub(crate) const MAGIC: &[u8; 12] = b"VANETCACHE1\n";

/// `key_len | payload_len | checksum`.
const RECORD_HEADER_LEN: usize = 4 + 4 + 8;

/// Why a cache operation failed. Carries the journal path so that errors
/// surfacing through a sweep or the CLI are actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheError {
    path: PathBuf,
    message: String,
}

impl CacheError {
    pub(crate) fn new(path: &Path, message: impl Into<String>) -> Self {
        CacheError { path: path.to_path_buf(), message: message.into() }
    }

    pub(crate) fn io(path: &Path, action: &str, err: &std::io::Error) -> Self {
        CacheError::new(path, format!("cannot {action}: {err}"))
    }

    /// The journal (or directory) the failure concerns.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round cache at `{}`: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for CacheError {}

/// A point-in-time summary of a cache, as shown by `carq-cli cache stats`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct round reports in the index.
    pub entries: usize,
    /// Journal size on disk, in bytes.
    pub file_bytes: u64,
    /// Bytes of torn tail dropped when the journal was opened (0 after a
    /// clean shutdown). A read-only open reports the torn bytes it skipped
    /// without truncating them away.
    pub recovered_bytes: u64,
    /// Bytes the journal would occupy after [`SweepCache::compact`]: the
    /// header plus one record per live index entry. The difference
    /// `file_bytes - live_bytes` is what a compaction reclaims.
    pub live_bytes: u64,
    /// Entries per scenario name, sorted by name. Generated scenarios
    /// (`gen/<generator>/<id16>`) roll up under their generator
    /// (`gen/<generator>`): a campaign populates thousands of one-off
    /// scenario names, and per-name rows would drown the breakdown.
    pub scenarios: Vec<(String, usize)>,
}

impl CacheStats {
    /// Bytes a [`SweepCache::compact`] would reclaim: dead superseded or
    /// forgotten records beyond the live set.
    pub fn reclaimable_bytes(&self) -> u64 {
        self.file_bytes.saturating_sub(self.live_bytes)
    }
}

/// One live index entry: the decoded report plus the size of its journal
/// record (for live-byte accounting and compaction estimates).
struct IndexEntry {
    report: RoundReport,
    record_len: u64,
}

/// Removes the advisory lockfile when the owning writer handle drops.
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Whether `pid` names a live process. Advisory only: on platforms without
/// a `/proc` to consult the answer is a conservative "yes".
fn process_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Whether two paths name the same inode (the post-claim ownership check).
/// On platforms without inode identity the answer is a conservative "yes" —
/// the lock is advisory there anyway, like [`process_alive`].
fn same_file(a: &Path, b: &Path) -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt as _;
        match (std::fs::metadata(a), std::fs::metadata(b)) {
            (Ok(ma), Ok(mb)) => ma.dev() == mb.dev() && ma.ino() == mb.ino(),
            _ => false,
        }
    }
    #[cfg(not(unix))]
    {
        let _ = (a, b);
        true
    }
}

/// Takes the directory's advisory writer lock, reclaiming a lockfile whose
/// recorded pid is no longer alive (a crashed writer).
///
/// Acquisition is atomic. This process's pid is written once to a private
/// claim file, and the lock is taken by `hard_link`ing the claim to
/// `cache.lock`: the link fails if the path exists, and the lockfile's
/// content is complete the instant the path appears — there is no
/// create-then-write window in which a concurrent opener reads an empty
/// lockfile. A stale lock is stolen by atomically renaming it into a
/// private tomb and then **re-verifying the tomb's content**: exactly one
/// racer wins the rename, and if what it yanked is not the stale pid it
/// observed (a faster reclaimer already stole the stale lock *and*
/// re-locked), the yanked fresh lock is linked back into place and the
/// contention error is returned — two processes reclaiming the same stale
/// pid can no longer both proceed. After a successful link the claim and
/// the lockfile are compared by inode as a final ownership check.
fn acquire_lock(dir: &Path, journal: &Path) -> Result<LockGuard, CacheError> {
    let lock_path = dir.join(LOCK_FILE);
    let pid = std::process::id();
    let claim_path = dir.join(format!("{LOCK_FILE}.claim.{pid}"));
    std::fs::write(&claim_path, format!("{pid}\n"))
        .map_err(|e| CacheError::io(&claim_path, "write the lock claim file", &e))?;
    // Dropping this on every exit path removes the claim; on success the
    // lockfile is a second link to the same inode and survives it.
    let claim_guard = LockGuard { path: claim_path.clone() };
    let contention = |holder: Option<u32>| -> CacheError {
        let who = holder.map(|p| format!(" (pid {p})")).unwrap_or_default();
        CacheError::new(
            journal,
            format!(
                "another writer{who} holds this cache (lockfile `{}`); run one \
                 sweep per cache directory at a time, or delete the lockfile if \
                 that process is gone",
                lock_path.display()
            ),
        )
    };
    // Two reclaim rounds cover every benign interleaving; a loop that is
    // still losing races after that reports contention instead of spinning.
    for _attempt in 0..3 {
        match std::fs::hard_link(&claim_path, &lock_path) {
            Ok(()) => {
                if !same_file(&claim_path, &lock_path) {
                    // The claim linked but the path is someone else's inode:
                    // only possible if an outside agent swapped the lockfile
                    // under us. Do not touch it; report contention.
                    return Err(contention(None));
                }
                drop(claim_guard);
                return Ok(LockGuard { path: lock_path });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = std::fs::read_to_string(&lock_path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                let stale = holder.is_some_and(|p| p != pid && !process_alive(p));
                if !stale {
                    return Err(contention(holder));
                }
                let tomb = dir.join(format!("{LOCK_FILE}.stale.{pid}"));
                if std::fs::rename(&lock_path, &tomb).is_ok() {
                    let yanked = std::fs::read_to_string(&tomb)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    if yanked != holder {
                        // We yanked a *fresh* lock a faster reclaimer just
                        // created. Restore it and concede.
                        let _ = std::fs::hard_link(&tomb, &lock_path);
                        let _ = std::fs::remove_file(&tomb);
                        return Err(contention(yanked));
                    }
                    let _ = std::fs::remove_file(&tomb);
                }
                // Retry the link; whoever claims first wins.
            }
            Err(e) => return Err(CacheError::io(&lock_path, "create the writer lockfile", &e)),
        }
    }
    Err(contention(None))
}

struct Inner {
    /// `None` for a read-only handle — lookups only, no appends.
    file: Option<File>,
    index: BTreeMap<String, IndexEntry>,
    file_bytes: u64,
    recovered_bytes: u64,
}

/// What [`SweepCache::ingest`] did with a merged record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IngestOutcome {
    /// The key was new: one record appended.
    Inserted,
    /// The key was already present with an identical report: nothing written.
    Duplicate,
    /// The key was present with a *different* report: last-write-wins, the
    /// new record appended and the index entry replaced.
    Superseded,
}

/// A shared, thread-safe handle on one cache directory.
///
/// Lookups are served from an in-memory index loaded at open; [`put`]
/// appends to the journal and updates the index. A `&SweepCache` can be
/// used from any number of threads (the sweep engine's workers share one).
///
/// Across *processes*, a writable [`open`] takes an advisory lockfile so a
/// second concurrent writer on the same directory fails fast instead of
/// interleaving appends; shard the work across separate directories (see
/// `vanet-fleet`) and merge the journals instead. [`open_read_only`] stays
/// lock-free.
///
/// [`put`]: SweepCache::put
/// [`open`]: SweepCache::open
/// [`open_read_only`]: SweepCache::open_read_only
pub struct SweepCache {
    path: PathBuf,
    /// Held for the handle's lifetime by a writable open; dropping the
    /// handle releases the lockfile. Never read — it exists for its `Drop`.
    _lock: Option<LockGuard>,
    inner: Mutex<Inner>,
}

impl fmt::Debug for SweepCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("cache lock poisoned");
        f.debug_struct("SweepCache")
            .field("path", &self.path)
            .field("read_only", &inner.file.is_none())
            .field("entries", &inner.index.len())
            .field("file_bytes", &inner.file_bytes)
            .finish()
    }
}

/// Encodes one journal record: header, checksum, key, payload.
fn encode_record(key: &str, report: &RoundReport) -> Vec<u8> {
    let key_bytes = key.as_bytes();
    let payload = report.to_bytes();
    let checksum = fnv1a64_chain(fnv1a64(key_bytes), &payload);
    let mut record = Vec::with_capacity(RECORD_HEADER_LEN + key_bytes.len() + payload.len());
    record.extend_from_slice(&(key_bytes.len() as u32).to_le_bytes());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&checksum.to_le_bytes());
    record.extend_from_slice(key_bytes);
    record.extend_from_slice(&payload);
    record
}

/// Replays the records of a journal image (everything after the magic),
/// handing each decoded `(key, report, record_len)` to `record`. Returns
/// the length of the prefix that parsed cleanly — anything beyond it is a
/// torn or corrupt tail.
pub(crate) fn replay(buf: &[u8], mut record: impl FnMut(&str, RoundReport, u64)) -> usize {
    let mut pos = MAGIC.len().min(buf.len());
    loop {
        if pos == buf.len() {
            break pos;
        }
        let Some(record_end) = record_end(buf, pos) else { break pos };
        let key_len = read_u32(buf, pos) as usize;
        let key_bytes = &buf[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + key_len];
        let payload = &buf[pos + RECORD_HEADER_LEN + key_len..record_end];
        let (Ok(key), Ok(report)) =
            (std::str::from_utf8(key_bytes), RoundReport::from_bytes(payload))
        else {
            break pos;
        };
        record(key, report, (record_end - pos) as u64);
        pos = record_end;
    }
}

impl SweepCache {
    /// Opens (creating if necessary) the cache in directory `dir` for
    /// reading *and writing*: takes the directory's advisory writer lock,
    /// replays the journal into memory, and truncates away a torn tail if
    /// the previous writer was killed mid-append.
    ///
    /// # Errors
    ///
    /// I/O failures; a journal whose header is not a vanet-cache magic (the
    /// open refuses to clobber a file it does not recognise); and a live
    /// concurrent writer on the same directory — interleaved appends from
    /// two processes are not torn-safe, so the second writer fails fast.
    /// Use [`SweepCache::open_read_only`] for lock-free inspection.
    pub fn open(dir: impl AsRef<Path>) -> Result<SweepCache, CacheError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| CacheError::io(dir, "create the cache directory", &e))?;
        let path = dir.join(JOURNAL_FILE);
        let lock = acquire_lock(dir, &path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| CacheError::io(&path, "open the journal", &e))?;

        let mut buf = Vec::new();
        file.read_to_end(&mut buf).map_err(|e| CacheError::io(&path, "read the journal", &e))?;

        let mut recovered_bytes = 0u64;
        if buf.is_empty() || (buf.len() < MAGIC.len() && MAGIC.starts_with(&buf)) {
            // Fresh file, or a kill tore the header write itself: (re)write it.
            recovered_bytes = buf.len() as u64;
            file.set_len(0).map_err(|e| CacheError::io(&path, "reset the journal", &e))?;
            file.seek(SeekFrom::Start(0)).map_err(|e| CacheError::io(&path, "seek", &e))?;
            file.write_all(MAGIC).map_err(|e| CacheError::io(&path, "write the header", &e))?;
            buf = MAGIC.to_vec();
        } else if !buf.starts_with(MAGIC) {
            return Err(CacheError::new(
                &path,
                "not a vanet-cache journal (unrecognised header); refusing to touch it",
            ));
        }

        // Replay records up to the first torn/corrupt one. Duplicate keys
        // (last-write-wins ingests) are benign: the last record wins, as it
        // was the last written.
        let mut index = BTreeMap::new();
        let valid_len = replay(&buf, |key, report, record_len| {
            index.insert(key.to_string(), IndexEntry { report, record_len });
        });
        if valid_len < buf.len() {
            recovered_bytes += (buf.len() - valid_len) as u64;
            file.set_len(valid_len as u64)
                .map_err(|e| CacheError::io(&path, "truncate the torn tail", &e))?;
            file.seek(SeekFrom::Start(valid_len as u64))
                .map_err(|e| CacheError::io(&path, "seek", &e))?;
        }

        Ok(SweepCache {
            path,
            _lock: Some(lock),
            inner: Mutex::new(Inner {
                file: Some(file),
                index,
                file_bytes: valid_len as u64,
                recovered_bytes,
            }),
        })
    }

    /// Opens the cache in `dir` **read-only and lock-free**: no lockfile is
    /// taken (a live writer is left undisturbed), nothing is created, and a
    /// torn tail is skipped in memory without truncating the file. A
    /// missing journal opens as an empty cache. Writing through this handle
    /// ([`put`], [`compact`]) is an error.
    ///
    /// # Errors
    ///
    /// I/O failures other than the journal not existing, and an
    /// unrecognised journal header.
    ///
    /// [`put`]: SweepCache::put
    /// [`compact`]: SweepCache::compact
    pub fn open_read_only(dir: impl AsRef<Path>) -> Result<SweepCache, CacheError> {
        let path = dir.as_ref().join(JOURNAL_FILE);
        let buf = match std::fs::read(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(CacheError::io(&path, "read the journal", &e)),
            Ok(bytes) => bytes,
        };
        let recovered_bytes;
        let mut index = BTreeMap::new();
        if buf.len() < MAGIC.len() {
            if !MAGIC.starts_with(buf.as_slice()) {
                return Err(CacheError::new(
                    &path,
                    "not a vanet-cache journal (unrecognised header); refusing to touch it",
                ));
            }
            recovered_bytes = buf.len() as u64;
        } else if !buf.starts_with(MAGIC) {
            return Err(CacheError::new(
                &path,
                "not a vanet-cache journal (unrecognised header); refusing to touch it",
            ));
        } else {
            let valid_len = replay(&buf, |key, report, record_len| {
                index.insert(key.to_string(), IndexEntry { report, record_len });
            });
            recovered_bytes = (buf.len() - valid_len) as u64;
        }
        Ok(SweepCache {
            path,
            _lock: None,
            inner: Mutex::new(Inner {
                file: None,
                index,
                file_bytes: buf.len() as u64,
                recovered_bytes,
            }),
        })
    }

    /// Whether this handle was opened with [`SweepCache::open_read_only`].
    pub fn is_read_only(&self) -> bool {
        self.inner.lock().expect("cache lock poisoned").file.is_none()
    }

    /// Whether `key` is cached, without cloning the stored report — the
    /// cheap membership probe coverage checks (e.g. fleet warm-run
    /// pre-filtering) use.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.inner.lock().expect("cache lock poisoned").index.contains_key(key.as_str())
    }

    /// The report cached under `key`, if any.
    pub fn get(&self, key: &CacheKey) -> Option<RoundReport> {
        self.inner
            .lock()
            .expect("cache lock poisoned")
            .index
            .get(key.as_str())
            .map(|entry| entry.report.clone())
    }

    /// Appends `report` under `key`. Returns `false` (writing nothing) if
    /// the key is already cached — by the purity contract an existing entry
    /// is identical, so the journal stays free of redundant records.
    ///
    /// # Errors
    ///
    /// A read-only handle, and I/O failures while appending. The record is
    /// written with a single `write_all`, so a kill mid-append leaves at
    /// worst a torn tail for the next open to drop; a write *error* (e.g. a
    /// full disk) rolls the file back to the last good record before
    /// returning, so later puts cannot strand valid records behind a
    /// mid-file tear.
    pub fn put(&self, key: &CacheKey, report: &RoundReport) -> Result<bool, CacheError> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if inner.index.contains_key(key.as_str()) {
            return Ok(false);
        }
        self.append_record(&mut inner, key.as_str(), report.clone())?;
        Ok(true)
    }

    /// Appends `report` under the raw canonical `key` with
    /// **last-write-wins** semantics — the merge layer's ingest path. An
    /// identical existing entry writes nothing; a *differing* one is
    /// superseded (new record appended, index entry replaced; the old
    /// record becomes dead bytes a [`compact`] reclaims).
    ///
    /// [`compact`]: SweepCache::compact
    pub(crate) fn ingest(
        &self,
        key: &str,
        report: RoundReport,
    ) -> Result<IngestOutcome, CacheError> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        let outcome = match inner.index.get(key) {
            Some(existing) if existing.report == report => return Ok(IngestOutcome::Duplicate),
            Some(_) => IngestOutcome::Superseded,
            None => IngestOutcome::Inserted,
        };
        self.append_record(&mut inner, key, report)?;
        Ok(outcome)
    }

    /// The shared append path of [`put`] and [`ingest`]: encodes, writes in
    /// one `write_all` (rolling back to the last good record on error), and
    /// updates the index.
    ///
    /// [`put`]: SweepCache::put
    /// [`ingest`]: SweepCache::ingest
    fn append_record(
        &self,
        inner: &mut Inner,
        key: &str,
        report: RoundReport,
    ) -> Result<(), CacheError> {
        let mut record = encode_record(key, &report);
        let good = inner.file_bytes;
        let Some(file) = inner.file.as_mut() else {
            return Err(CacheError::new(&self.path, "opened read-only; cannot append"));
        };
        // The injectable write seam: an armed chaos schedule may corrupt
        // the record, delay it, fail it, or demand a torn write-then-die
        // here. Disarmed (every production run) this is one atomic load.
        match vanet_faults::before_append(vanet_faults::StoreKind::Sweep, &mut record) {
            Ok(vanet_faults::AppendAction::Write) => {}
            Ok(vanet_faults::AppendAction::TornWriteThenDie { keep }) => {
                let _ = file.write_all(&record[..keep]);
                let _ = file.sync_all();
                eprintln!("fault: torn append — exiting mid-record");
                std::process::exit(vanet_faults::CHAOS_EXIT);
            }
            Err(e) => return Err(CacheError::io(&self.path, "append a record", &e)),
        }
        if let Err(e) = file.write_all(&record) {
            // A partial append would become a *mid-file* tear if later puts
            // landed after it — and everything after a tear is dropped on
            // the next open. Roll back to the last good record so the
            // journal stays a valid prefix whatever happens next.
            let _ = file.set_len(good);
            let _ = file.seek(SeekFrom::Start(good));
            return Err(CacheError::io(&self.path, "append a record", &e));
        }
        inner.file_bytes += record.len() as u64;
        inner.index.insert(key.to_string(), IndexEntry { report, record_len: record.len() as u64 });
        Ok(())
    }

    /// Rewrites the journal from the live index, dropping superseded
    /// records and entries removed with [`forget`] — the append-only file's
    /// garbage collection. The replacement is written to a temporary file
    /// and atomically renamed over the journal, so a kill mid-compaction
    /// leaves either the old journal or the new one, never a mix. Returns
    /// the bytes reclaimed.
    ///
    /// # Errors
    ///
    /// A read-only handle, and I/O failures while rewriting.
    ///
    /// [`forget`]: SweepCache::forget
    pub fn compact(&self) -> Result<u64, CacheError> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if inner.file.is_none() {
            return Err(CacheError::new(&self.path, "opened read-only; cannot compact"));
        }
        let mut bytes = Vec::with_capacity(
            MAGIC.len() + inner.index.values().map(|e| e.record_len as usize).sum::<usize>(),
        );
        bytes.extend_from_slice(MAGIC);
        for (key, entry) in &inner.index {
            bytes.extend_from_slice(&encode_record(key, &entry.report));
        }
        // Write the replacement through a handle we keep: after the atomic
        // rename that same handle *is* the journal (the fd follows the
        // inode), already positioned at the end for the next append. No
        // fallible step remains after the swap, so an error can only leave
        // the old journal fully in place — never a handle on an unlinked
        // file that would silently swallow later puts.
        let tmp = self.path.with_extension("journal.tmp");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| CacheError::io(&tmp, "create the compaction file", &e))?;
        if let Err(e) = file.write_all(&bytes) {
            let _ = std::fs::remove_file(&tmp);
            return Err(CacheError::io(&tmp, "write the compacted journal", &e));
        }
        if let Err(e) = std::fs::rename(&tmp, &self.path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(CacheError::io(&self.path, "swap in the compacted journal", &e));
        }
        let reclaimed = inner.file_bytes.saturating_sub(bytes.len() as u64);
        inner.file = Some(file);
        inner.file_bytes = bytes.len() as u64;
        Ok(reclaimed)
    }

    /// Drops `key` from the **in-memory index only** (the journal is
    /// append-only), returning whether it was present. Until this handle
    /// re-`put`s the key, lookups through it miss; a fresh [`open`] sees the
    /// original entry again — unless a [`compact`] rewrote the journal
    /// without it first. This exists for tests and tools that need to
    /// simulate partial caches — it is not an on-disk delete (that is
    /// [`clear`], or a `forget` made durable by `compact`).
    ///
    /// [`open`]: SweepCache::open
    /// [`compact`]: SweepCache::compact
    pub fn forget(&self, key: &CacheKey) -> bool {
        self.inner.lock().expect("cache lock poisoned").index.remove(key.as_str()).is_some()
    }

    /// Number of cached reports.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").index.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical key lines currently indexed, in sorted order.
    pub fn keys(&self) -> Vec<CacheKey> {
        self.inner
            .lock()
            .expect("cache lock poisoned")
            .index
            .keys()
            .map(|k| CacheKey::from_canonical(k.clone()))
            .collect()
    }

    /// A point-in-time summary: entry and byte counts, recovery info, and a
    /// per-scenario breakdown.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock poisoned");
        let mut scenarios: BTreeMap<String, usize> = BTreeMap::new();
        for key in inner.index.keys() {
            let scenario = key.split('|').next().unwrap_or("");
            // Roll generated scenarios (`gen/<generator>/<id16>`) up under
            // their generator so campaign-sized caches stay readable.
            let group = match scenario.strip_prefix("gen/").and_then(|rest| rest.split_once('/')) {
                Some((generator, _)) => format!("gen/{generator}"),
                None => scenario.to_string(),
            };
            *scenarios.entry(group).or_insert(0) += 1;
        }
        let live_bytes = if inner.index.is_empty() && inner.file_bytes == 0 {
            0
        } else {
            MAGIC.len() as u64 + inner.index.values().map(|e| e.record_len).sum::<u64>()
        };
        CacheStats {
            entries: inner.index.len(),
            file_bytes: inner.file_bytes,
            recovered_bytes: inner.recovered_bytes,
            live_bytes,
            scenarios: scenarios.into_iter().collect(),
        }
    }

    /// The journal file this handle reads and appends.
    pub fn journal_path(&self) -> &Path {
        &self.path
    }
}

/// Removes the journal in `dir`, returning the bytes freed (0 if there was
/// none). The directory itself — and any writer lockfile in it — is left in
/// place; clearing a directory another process is actively writing is a
/// caller error the advisory lock does not police.
///
/// # Errors
///
/// I/O failures other than the journal not existing.
pub fn clear(dir: impl AsRef<Path>) -> Result<u64, CacheError> {
    let path = dir.as_ref().join(JOURNAL_FILE);
    match std::fs::metadata(&path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(CacheError::io(&path, "stat the journal", &e)),
        Ok(meta) => {
            std::fs::remove_file(&path)
                .map_err(|e| CacheError::io(&path, "remove the journal", &e))?;
            Ok(meta.len())
        }
    }
}

fn read_u32(buf: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes"))
}

fn read_u64(buf: &[u8], pos: usize) -> u64 {
    u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8 bytes"))
}

/// Where the record starting at `pos` ends, or `None` if it is incomplete
/// or fails its checksum (i.e. the journal is torn at `pos`).
fn record_end(buf: &[u8], pos: usize) -> Option<usize> {
    if buf.len() - pos < RECORD_HEADER_LEN {
        return None;
    }
    let key_len = read_u32(buf, pos) as usize;
    let payload_len = read_u32(buf, pos + 4) as usize;
    let checksum = read_u64(buf, pos + 8);
    let body_start = pos + RECORD_HEADER_LEN;
    let end = body_start.checked_add(key_len)?.checked_add(payload_len)?;
    if end > buf.len() {
        return None;
    }
    let key = &buf[body_start..body_start + key_len];
    let payload = &buf[body_start + key_len..end];
    if fnv1a64_chain(fnv1a64(key), payload) != checksum {
        return None;
    }
    Some(end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use vanet_stats::RoundResult;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vanet-cache-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn key(i: u32) -> CacheKey {
        CacheKey::new("fake", 0xF1, "scenario=fake;x=i1", i, u64::from(i) * 31 + 7)
    }

    fn report(i: u32) -> RoundReport {
        RoundReport::new(i, u64::from(i) * 31 + 7, RoundResult::default())
            .with_counter("value", f64::from(i) + 0.5)
    }

    #[test]
    fn put_get_and_reopen() {
        let dir = temp_dir("roundtrip");
        let cache = SweepCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        assert!(cache.get(&key(0)).is_none());
        for i in 0..5 {
            assert!(cache.put(&key(i), &report(i)).unwrap());
        }
        // Duplicate puts write nothing.
        assert!(!cache.put(&key(2), &report(2)).unwrap());
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.get(&key(3)), Some(report(3)));
        let bytes_before = cache.stats().file_bytes;
        drop(cache);

        let reopened = SweepCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), 5);
        assert_eq!(reopened.get(&key(3)), Some(report(3)));
        let stats = reopened.stats();
        assert_eq!(stats.entries, 5);
        assert_eq!(stats.file_bytes, bytes_before);
        assert_eq!(stats.recovered_bytes, 0);
        assert_eq!(stats.live_bytes, bytes_before, "no dead bytes after plain puts");
        assert_eq!(stats.reclaimable_bytes(), 0);
        assert_eq!(stats.scenarios, vec![("fake".to_string(), 5)]);
        assert_eq!(reopened.keys().len(), 5);
        assert!(format!("{reopened:?}").contains("entries"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_roll_generated_scenarios_up_by_generator() {
        let dir = temp_dir("gen-rollup");
        let cache = SweepCache::open(&dir).unwrap();
        cache.put(&key(0), &report(0)).unwrap();
        // Generated scenario names vary per identity; the stats breakdown
        // groups them by generator so campaign caches stay readable.
        for (i, name) in [
            "gen/grid-city/0011223344556677",
            "gen/grid-city/8899aabbccddeeff",
            "gen/highway-flow/0123456789abcdef",
        ]
        .iter()
        .enumerate()
        {
            let k = CacheKey::new(name, 0xF2, &format!("scenario={name};rounds=i1"), 0, i as u64);
            cache.put(&k, &report(0)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(
            stats.scenarios,
            vec![
                ("fake".to_string(), 1),
                ("gen/grid-city".to_string(), 2),
                ("gen/highway-flow".to_string(), 1),
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = temp_dir("torn");
        let cache = SweepCache::open(&dir).unwrap();
        for i in 0..4 {
            cache.put(&key(i), &report(i)).unwrap();
        }
        let path = cache.journal_path().to_path_buf();
        let full_len = cache.stats().file_bytes;
        drop(cache);

        // Chop the last record mid-payload, as a kill mid-write would.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full_len - 7).unwrap();
        drop(file);

        let recovered = SweepCache::open(&dir).unwrap();
        assert_eq!(recovered.len(), 3, "the torn record is dropped");
        assert!(recovered.get(&key(3)).is_none());
        assert_eq!(recovered.get(&key(2)), Some(report(2)));
        let stats = recovered.stats();
        assert!(stats.recovered_bytes > 0);
        assert!(stats.file_bytes < full_len - 7, "file truncated to the last good record");

        // Appending after recovery works and survives another reopen.
        recovered.put(&key(3), &report(3)).unwrap();
        drop(recovered);
        let again = SweepCache::open(&dir).unwrap();
        assert_eq!(again.len(), 4);
        assert_eq!(again.get(&key(3)), Some(report(3)));
        assert_eq!(again.stats().recovered_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_checksum_cuts_the_journal_there() {
        let dir = temp_dir("bitrot");
        let cache = SweepCache::open(&dir).unwrap();
        for i in 0..3 {
            cache.put(&key(i), &report(i)).unwrap();
        }
        let path = cache.journal_path().to_path_buf();
        drop(cache);

        // Flip one byte in the middle record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let recovered = SweepCache::open(&dir).unwrap();
        assert!(recovered.len() < 3, "everything from the corrupt record on is dropped");
        assert_eq!(recovered.get(&key(0)), Some(report(0)));
        assert!(recovered.stats().recovered_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_are_refused() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), b"totally not a cache journal").unwrap();
        let err = SweepCache::open(&dir).unwrap_err();
        assert!(err.to_string().contains("unrecognised header"), "{err}");
        assert!(err.path().ends_with(JOURNAL_FILE));
        let err = SweepCache::open_read_only(&dir).unwrap_err();
        assert!(err.to_string().contains("unrecognised header"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_header_is_rewritten() {
        let dir = temp_dir("torn-header");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), &MAGIC[..5]).unwrap();
        let cache = SweepCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().recovered_bytes, 5);
        cache.put(&key(0), &report(0)).unwrap();
        drop(cache);
        assert_eq!(SweepCache::open(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn forget_is_in_memory_only() {
        let dir = temp_dir("forget");
        let cache = SweepCache::open(&dir).unwrap();
        cache.put(&key(0), &report(0)).unwrap();
        assert!(cache.forget(&key(0)));
        assert!(!cache.forget(&key(0)));
        assert!(cache.get(&key(0)).is_none());
        drop(cache);
        // The journal still has it.
        assert_eq!(SweepCache::open(&dir).unwrap().get(&key(0)), Some(report(0)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clear_removes_the_journal() {
        let dir = temp_dir("clear");
        assert_eq!(clear(&dir).unwrap(), 0, "clearing a missing journal is a no-op");
        let cache = SweepCache::open(&dir).unwrap();
        cache.put(&key(0), &report(0)).unwrap();
        drop(cache);
        assert!(clear(&dir).unwrap() > 0);
        assert!(SweepCache::open(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_puts_from_many_threads() {
        let dir = temp_dir("parallel");
        let cache = SweepCache::open(&dir).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..25u32 {
                        let n = t * 25 + i;
                        cache.put(&key(n), &report(n)).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 100);
        drop(cache);
        let reopened = SweepCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), 100);
        for n in [0u32, 37, 99] {
            assert_eq!(reopened.get(&key(n)), Some(report(n)));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_writer_fails_fast_until_the_first_drops() {
        let dir = temp_dir("lock");
        let first = SweepCache::open(&dir).unwrap();
        let err = SweepCache::open(&dir).unwrap_err();
        assert!(err.to_string().contains("another writer"), "{err}");
        assert!(err.to_string().contains("cache.lock"), "{err}");
        // The failed open must not have stolen the lock...
        first.put(&key(0), &report(0)).unwrap();
        drop(first);
        // ...and dropping the holder releases it.
        let second = SweepCache::open(&dir).unwrap();
        assert_eq!(second.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_reclaimed() {
        if !cfg!(target_os = "linux") {
            return; // liveness is only checkable via /proc
        }
        let dir = temp_dir("stale-lock");
        std::fs::create_dir_all(&dir).unwrap();
        // No real process has pid u32::MAX - 1 (far beyond pid_max).
        std::fs::write(dir.join(LOCK_FILE), format!("{}\n", u32::MAX - 1)).unwrap();
        let cache = SweepCache::open(&dir).unwrap();
        cache.put(&key(0), &report(0)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_only_open_is_lock_free_and_rejects_writes() {
        let dir = temp_dir("read-only");
        let writer = SweepCache::open(&dir).unwrap();
        writer.put(&key(0), &report(0)).unwrap();
        // Coexists with the live writer...
        let reader = SweepCache::open_read_only(&dir).unwrap();
        assert!(reader.is_read_only());
        assert!(!writer.is_read_only());
        assert_eq!(reader.get(&key(0)), Some(report(0)));
        // ...and refuses to mutate anything.
        let err = reader.put(&key(1), &report(1)).unwrap_err();
        assert!(err.to_string().contains("read-only"), "{err}");
        let err = reader.compact().unwrap_err();
        assert!(err.to_string().contains("read-only"), "{err}");
        drop(writer);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_only_open_skips_a_torn_tail_without_truncating() {
        let dir = temp_dir("read-only-torn");
        let cache = SweepCache::open(&dir).unwrap();
        for i in 0..3 {
            cache.put(&key(i), &report(i)).unwrap();
        }
        let path = cache.journal_path().to_path_buf();
        let full_len = cache.stats().file_bytes;
        drop(cache);
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full_len - 5).unwrap();
        drop(file);

        let reader = SweepCache::open_read_only(&dir).unwrap();
        assert_eq!(reader.len(), 2, "the torn record is skipped");
        assert!(reader.stats().recovered_bytes > 0);
        // The file itself was left exactly as found.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full_len - 5);
        // A missing journal opens as an empty cache.
        let empty = SweepCache::open_read_only(temp_dir("read-only-missing")).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.stats().file_bytes, 0);
        assert_eq!(empty.stats().live_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_reclaims_forgotten_and_superseded_records() {
        let dir = temp_dir("compact");
        let cache = SweepCache::open(&dir).unwrap();
        for i in 0..6 {
            cache.put(&key(i), &report(i)).unwrap();
        }
        // Supersede one entry (last-write-wins ingest) and forget another.
        cache.ingest(key(1).as_str(), report(41)).unwrap();
        assert!(cache.forget(&key(4)));
        let stats = cache.stats();
        assert_eq!(stats.entries, 5);
        assert!(stats.reclaimable_bytes() > 0, "dead bytes accumulated");

        let reclaimed = cache.compact().unwrap();
        assert_eq!(reclaimed, stats.reclaimable_bytes());
        let after = cache.stats();
        assert_eq!(after.entries, 5);
        assert_eq!(after.file_bytes, stats.live_bytes);
        assert_eq!(after.reclaimable_bytes(), 0);
        // The handle keeps working after the swap...
        cache.put(&key(7), &report(7)).unwrap();
        assert_eq!(cache.get(&key(1)), Some(report(41)), "superseding value survives");
        drop(cache);
        // ...and a fresh open sees the compacted set: the forgotten key is
        // gone for good, the superseded one holds its last value.
        let reopened = SweepCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), 6);
        assert!(reopened.get(&key(4)).is_none(), "forget became durable");
        assert_eq!(reopened.get(&key(1)), Some(report(41)));
        assert_eq!(reopened.get(&key(7)), Some(report(7)));
        assert_eq!(reopened.stats().recovered_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_distinguishes_insert_duplicate_and_supersede() {
        let dir = temp_dir("ingest");
        let cache = SweepCache::open(&dir).unwrap();
        assert_eq!(cache.ingest(key(0).as_str(), report(0)).unwrap(), IngestOutcome::Inserted);
        assert_eq!(cache.ingest(key(0).as_str(), report(0)).unwrap(), IngestOutcome::Duplicate);
        assert_eq!(cache.ingest(key(0).as_str(), report(9)).unwrap(), IngestOutcome::Superseded);
        assert_eq!(cache.get(&key(0)), Some(report(9)), "last write wins");
        drop(cache);
        // Replay preserves last-write-wins: the superseding record is later
        // in the journal.
        assert_eq!(SweepCache::open(&dir).unwrap().get(&key(0)), Some(report(9)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
