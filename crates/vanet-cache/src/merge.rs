//! Unioning shard journals into one store — the "ship the journal, merge
//! on open" half of distributed sweeps.
//!
//! A fleet of worker processes (or machines) each fills its own shard
//! journal; [`merge_into`] folds any set of those journals into a
//! destination cache. Records are validated exactly like an open replays
//! them — checksummed, UTF-8 keys, decodable payloads — so a journal that
//! was torn mid-write on the worker (or corrupted in transit) contributes
//! its clean prefix and reports the dropped tail instead of poisoning the
//! destination. Identical keys resolve **last-write-wins** in source
//! order; under the purity contract duplicates carry identical payloads,
//! so in practice a supersede only happens when two caches were produced
//! by *different* code or schema versions — the [`MergeReport`] counts
//! them separately so that drift is visible.

use std::path::Path;

use crate::store::{replay, CacheError, IngestOutcome, SweepCache, JOURNAL_FILE, MAGIC};

/// What a [`merge_into`] did, per record disposition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergeReport {
    /// Source journals read.
    pub sources: usize,
    /// Records appended under keys the destination did not hold.
    pub records_ingested: usize,
    /// Records skipped because the destination already held an identical
    /// report — the expected case when shards overlap or are re-merged.
    pub records_duplicate: usize,
    /// Records that *replaced* a differing report under the same key
    /// (last-write-wins). Non-zero means the sources disagree — different
    /// code or schema versions produced them.
    pub records_superseded: usize,
    /// Torn or corrupt trailing bytes dropped across all sources.
    pub torn_bytes_dropped: u64,
}

impl MergeReport {
    /// Total records accepted into the destination (ingested + superseding).
    pub fn records_written(&self) -> usize {
        self.records_ingested + self.records_superseded
    }
}

/// Resolves a source argument: a cache *directory* means its journal file,
/// anything else is taken as a journal path directly.
fn source_journal(path: &Path) -> std::path::PathBuf {
    if path.is_dir() {
        path.join(JOURNAL_FILE)
    } else {
        path.to_path_buf()
    }
}

/// Unions the shard journals (or whole cache directories) in `sources`
/// into `dest`, in order, validating every record on ingest. See the
/// module docs for the exact semantics; `dest` must be a writable handle.
///
/// # Errors
///
/// A missing or unrecognised source journal (an explicitly listed source
/// that cannot contribute is a caller error, not a skip), a source that
/// *is* the destination, and I/O or append failures. A failed merge leaves
/// the destination valid — every record already ingested stays.
pub fn merge_into<P: AsRef<Path>>(
    dest: &SweepCache,
    sources: &[P],
) -> Result<MergeReport, CacheError> {
    let dest_journal = dest.journal_path().canonicalize().ok();
    let mut report = MergeReport::default();
    for source in sources {
        let path = source_journal(source.as_ref());
        if dest_journal.is_some() && path.canonicalize().ok() == dest_journal {
            return Err(CacheError::new(&path, "cannot merge a cache into itself"));
        }
        let buf = std::fs::read(&path)
            .map_err(|e| CacheError::io(&path, "read the shard journal", &e))?;
        if !buf.starts_with(MAGIC) {
            // A bare or torn-in-the-header journal holds no records; an
            // unrelated file is refused outright.
            if MAGIC.starts_with(buf.as_slice()) {
                report.sources += 1;
                report.torn_bytes_dropped += buf.len() as u64;
                continue;
            }
            return Err(CacheError::new(
                &path,
                "not a vanet-cache journal (unrecognised header); refusing to merge it",
            ));
        }
        let mut failure: Option<CacheError> = None;
        let valid_len = replay(&buf, |key, record_report, _len| {
            if failure.is_some() {
                return;
            }
            match dest.ingest(key, record_report) {
                Ok(IngestOutcome::Inserted) => report.records_ingested += 1,
                Ok(IngestOutcome::Duplicate) => report.records_duplicate += 1,
                Ok(IngestOutcome::Superseded) => report.records_superseded += 1,
                Err(e) => failure = Some(e),
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
        report.sources += 1;
        report.torn_bytes_dropped += (buf.len() - valid_len) as u64;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::CacheKey;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use vanet_stats::{RoundReport, RoundResult};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vanet-cache-merge-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn key(i: u32) -> CacheKey {
        CacheKey::new("fake", 0xF1, "scenario=fake;x=i1", i, u64::from(i) * 31 + 7)
    }

    fn report(i: u32) -> RoundReport {
        RoundReport::new(i, u64::from(i) * 31 + 7, RoundResult::default())
            .with_counter("value", f64::from(i) + 0.5)
    }

    /// Builds a shard cache holding `range` and returns its directory.
    fn shard(tag: &str, range: std::ops::Range<u32>) -> PathBuf {
        let dir = temp_dir(tag);
        let cache = SweepCache::open(&dir).unwrap();
        for i in range {
            cache.put(&key(i), &report(i)).unwrap();
        }
        dir
    }

    #[test]
    fn merging_disjoint_shards_unions_them() {
        let a = shard("union-a", 0..3);
        let b = shard("union-b", 3..7);
        let dest_dir = temp_dir("union-dest");
        let dest = SweepCache::open(&dest_dir).unwrap();
        let merged = merge_into(&dest, &[&a, &b]).unwrap();
        assert_eq!(merged.sources, 2);
        assert_eq!(merged.records_ingested, 7);
        assert_eq!(merged.records_duplicate, 0);
        assert_eq!(merged.records_superseded, 0);
        assert_eq!(merged.torn_bytes_dropped, 0);
        assert_eq!(merged.records_written(), 7);
        assert_eq!(dest.len(), 7);
        drop(dest);
        // The union is durable.
        let reopened = SweepCache::open(&dest_dir).unwrap();
        for i in 0..7 {
            assert_eq!(reopened.get(&key(i)), Some(report(i)), "key {i}");
        }
        for dir in [a, b, dest_dir] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn overlapping_and_re_merged_records_count_as_duplicates() {
        let a = shard("dup-a", 0..4);
        let b = shard("dup-b", 2..6);
        let dest_dir = temp_dir("dup-dest");
        let dest = SweepCache::open(&dest_dir).unwrap();
        let first = merge_into(&dest, &[&a, &b]).unwrap();
        assert_eq!(first.records_ingested, 6);
        assert_eq!(first.records_duplicate, 2, "the overlap is skipped, not re-written");
        let bytes = dest.stats().file_bytes;
        // Merging the same shards again writes nothing at all.
        let again = merge_into(&dest, &[&a, &b]).unwrap();
        assert_eq!(again.records_ingested, 0);
        assert_eq!(again.records_duplicate, 8);
        assert_eq!(dest.stats().file_bytes, bytes);
        for dir in [a, b, dest_dir] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn conflicting_records_resolve_last_write_wins() {
        let a = temp_dir("lww-a");
        let cache = SweepCache::open(&a).unwrap();
        cache.put(&key(0), &report(100)).unwrap();
        drop(cache);
        let b = temp_dir("lww-b");
        let cache = SweepCache::open(&b).unwrap();
        cache.put(&key(0), &report(200)).unwrap();
        drop(cache);

        let dest_dir = temp_dir("lww-dest");
        let dest = SweepCache::open(&dest_dir).unwrap();
        let merged = merge_into(&dest, &[&a, &b]).unwrap();
        assert_eq!(merged.records_ingested, 1);
        assert_eq!(merged.records_superseded, 1, "the conflict is counted");
        assert_eq!(dest.get(&key(0)), Some(report(200)), "the later source wins");
        assert!(dest.stats().reclaimable_bytes() > 0, "the superseded record is dead bytes");
        for dir in [a, b, dest_dir] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn torn_shard_journals_contribute_their_clean_prefix() {
        let a = shard("torn-a", 0..4);
        // Tear the shard's last record mid-payload, as a worker killed
        // mid-append would.
        let journal = a.join(JOURNAL_FILE);
        let len = std::fs::metadata(&journal).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&journal).unwrap();
        file.set_len(len - 6).unwrap();
        drop(file);

        let dest_dir = temp_dir("torn-dest");
        let dest = SweepCache::open(&dest_dir).unwrap();
        let merged = merge_into(&dest, &[&a]).unwrap();
        assert_eq!(merged.records_ingested, 3, "the clean prefix is ingested");
        assert!(merged.torn_bytes_dropped > 0);
        assert_eq!(dest.get(&key(2)), Some(report(2)));
        assert!(dest.get(&key(3)).is_none(), "the torn record is dropped");
        // The source was read, not repaired.
        assert_eq!(std::fs::metadata(&journal).unwrap().len(), len - 6);
        for dir in [a, dest_dir] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn merge_refuses_missing_foreign_and_self_sources() {
        let dest_dir = temp_dir("refuse-dest");
        let dest = SweepCache::open(&dest_dir).unwrap();
        dest.put(&key(0), &report(0)).unwrap();

        let missing = temp_dir("refuse-missing").join("nope.journal");
        let err = merge_into(&dest, &[&missing]).unwrap_err();
        assert!(err.to_string().contains("read the shard journal"), "{err}");

        let foreign = temp_dir("refuse-foreign");
        std::fs::create_dir_all(&foreign).unwrap();
        let foreign_file = foreign.join("random.bin");
        std::fs::write(&foreign_file, b"not a journal at all").unwrap();
        let err = merge_into(&dest, &[&foreign_file]).unwrap_err();
        assert!(err.to_string().contains("unrecognised header"), "{err}");

        let err = merge_into(&dest, &[&dest_dir]).unwrap_err();
        assert!(err.to_string().contains("into itself"), "{err}");

        // A bare-header (record-free) journal is fine — zero records.
        let empty = temp_dir("refuse-empty");
        drop(SweepCache::open(&empty).unwrap());
        let merged = merge_into(&dest, &[&empty]).unwrap();
        assert_eq!(merged.sources, 1);
        assert_eq!(merged.records_written(), 0);
        for dir in [dest_dir, foreign, empty] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
