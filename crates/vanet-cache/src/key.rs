//! The content address of one cached round.

use std::fmt;

// The journal's record checksum: FNV-1a, the workspace's one specified hash
// (shared via `sim-core` so durable-format implementations cannot drift).
// It guards against torn writes and bit rot, not adversaries.
pub(crate) use sim_core::{fnv1a64, fnv1a64_chain};

/// The content address of one round's report:
/// `(scenario, schema fingerprint, canonical configuration, round, round seed)`.
///
/// Everything that can change a round's result is in the key, so a hit is
/// *guaranteed* to equal what re-simulating would produce:
///
/// * the **scenario name** separates experiment families;
/// * the **schema fingerprint** (`ParamSchema::fingerprint`) invalidates
///   entries when a scenario's parameter semantics change;
/// * the **canonical configuration** (`ParamSchema::canonical_config`)
///   captures every parameter value that influences a round's physics,
///   losslessly, with defaults resolved;
/// * the **round** index and **round seed** pin down the one remaining
///   input of `run_round(round, seed)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    canonical: String,
}

impl CacheKey {
    /// Builds the key. `canonical_config` is the scenario schema's canonical
    /// rendering of the point (defaults resolved, round-neutral parameters
    /// excluded).
    ///
    /// # Panics
    ///
    /// Panics if `scenario` or `canonical_config` contains a newline (the
    /// journal's keys are single lines by construction).
    pub fn new(
        scenario: &str,
        schema_fingerprint: u64,
        canonical_config: &str,
        round: u32,
        round_seed: u64,
    ) -> Self {
        assert!(
            !scenario.contains('\n') && !canonical_config.contains('\n'),
            "cache key components must be single-line"
        );
        CacheKey {
            canonical: format!(
                "{scenario}|{schema_fingerprint:016x}|{canonical_config}|r{round}|s{round_seed:016x}"
            ),
        }
    }

    /// Re-wraps a canonical key line read back from a journal.
    pub(crate) fn from_canonical(canonical: String) -> Self {
        CacheKey { canonical }
    }

    /// The full canonical key line — what the journal stores.
    pub fn as_str(&self) -> &str {
        &self.canonical
    }

    /// Parses a canonical key line read back from a journal; `None` when the
    /// line is not a plausible key (multi-line, or missing the
    /// `scenario|fingerprint|config|rN|sHEX` shape).
    pub fn parse(line: &str) -> Option<Self> {
        if line.contains('\n') {
            return None;
        }
        let mut tail = line.rsplit('|');
        let seed = tail.next()?;
        let round = tail.next()?;
        // `scenario|fingerprint|config` leaves ≥ 3 more fields.
        if tail.count() < 3 || !seed.starts_with('s') || !round.starts_with('r') {
            return None;
        }
        Some(CacheKey { canonical: line.to_string() })
    }

    /// The scenario-name component (the first `|`-separated field).
    pub fn scenario(&self) -> &str {
        self.canonical.split('|').next().unwrap_or("")
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct_per_component() {
        let base = CacheKey::new("urban", 1, "scenario=urban;n_cars=i3", 0, 7);
        assert_eq!(base, CacheKey::new("urban", 1, "scenario=urban;n_cars=i3", 0, 7));
        assert_ne!(base, CacheKey::new("highway", 1, "scenario=urban;n_cars=i3", 0, 7));
        assert_ne!(base, CacheKey::new("urban", 2, "scenario=urban;n_cars=i3", 0, 7));
        assert_ne!(base, CacheKey::new("urban", 1, "scenario=urban;n_cars=i4", 0, 7));
        assert_ne!(base, CacheKey::new("urban", 1, "scenario=urban;n_cars=i3", 1, 7));
        assert_ne!(base, CacheKey::new("urban", 1, "scenario=urban;n_cars=i3", 0, 8));
        assert_eq!(base.scenario(), "urban");
        assert!(base.to_string().contains("|r0|"));
    }

    #[test]
    fn parse_round_trips_canonical_lines() {
        let key = CacheKey::new("urban", 1, "scenario=urban;n_cars=i3", 2, 7);
        assert_eq!(CacheKey::parse(key.as_str()), Some(key));
        assert_eq!(CacheKey::parse("not a key"), None);
        assert_eq!(CacheKey::parse("a|b|c|d|e"), None, "tail fields must be rN/sHEX");
        assert_eq!(CacheKey::parse("urban|x|cfg|r0\n|s1"), None);
    }

    #[test]
    #[should_panic(expected = "single-line")]
    fn newlines_in_components_are_rejected() {
        let _ = CacheKey::new("ur\nban", 1, "x", 0, 0);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: this value is written into journals on disk.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
