//! Two-process regression test for the `cache.lock` stale-lock race.
//!
//! The original acquisition had a TOCTOU hole: two workers could both read
//! a stale pid from `cache.lock`, both delete it, and both create their own
//! lockfile — two live writers on one journal. The fixed acquisition claims
//! via a private file + `hard_link` (atomic on every platform we build for)
//! and re-verifies ownership after stealing a stale lock, so exactly one
//! reclaimer may win.
//!
//! The test re-executes this test binary: the parent plants a stale lock
//! (a dead process's pid), spawns two children that block on a shared "go"
//! file and then race to open the cache writably at the same instant, and
//! asserts exactly one child claimed the lock while the other got the
//! contention error.

use std::path::Path;
use std::process::Command;
use std::time::{Duration, Instant};

use vanet_cache::SweepCache;

const CHILD_ENV: &str = "VANET_LOCK_RACE_CHILD";

/// Child mode: wait for the go-file, race for the writer lock once, report
/// the outcome on stdout, and (if we won) hold the lock long enough for the
/// loser to observe it.
fn run_child(dir: &str) {
    let dir = Path::new(dir);
    let go = dir.join("go");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !go.exists() {
        assert!(Instant::now() < deadline, "parent never released the children");
        std::thread::sleep(Duration::from_millis(1));
    }
    match SweepCache::open(dir) {
        Ok(cache) => {
            println!("LOCK_RACE=claimed");
            // Keep the lock alive while the sibling attempts its claim.
            std::thread::sleep(Duration::from_millis(1500));
            drop(cache);
        }
        Err(err) => {
            let rendered = err.to_string();
            assert!(rendered.contains("another writer"), "unexpected error: {rendered}");
            println!("LOCK_RACE=contended");
        }
    }
}

/// A pid that is certainly not alive: a just-reaped child of ours.
fn dead_pid() -> u32 {
    let mut child = Command::new("sh").arg("-c").arg("exit 0").spawn().unwrap();
    let pid = child.id();
    child.wait().unwrap();
    pid
}

#[test]
fn two_processes_cannot_both_reclaim_a_stale_lock() {
    if let Ok(dir) = std::env::var(CHILD_ENV) {
        run_child(&dir);
        return;
    }

    let dir = std::env::temp_dir().join(format!("vanet-cache-lock-race-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // A valid cache directory with a *stale* lock: the pid belongs to a
    // process that has already exited.
    drop(SweepCache::open(&dir).unwrap());
    std::fs::write(dir.join("cache.lock"), format!("{}\n", dead_pid())).unwrap();

    let exe = std::env::current_exe().unwrap();
    let spawn = || {
        Command::new(&exe)
            .arg("two_processes_cannot_both_reclaim_a_stale_lock")
            .arg("--exact")
            .arg("--nocapture")
            .env(CHILD_ENV, dir.display().to_string())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap()
    };
    let first = spawn();
    let second = spawn();
    // Both children are polling for this file; creating it starts the race.
    std::fs::write(dir.join("go"), b"go").unwrap();

    let first = first.wait_with_output().unwrap();
    let second = second.wait_with_output().unwrap();
    let stdout = format!(
        "{}{}",
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&second.stdout),
    );
    assert!(first.status.success() && second.status.success(), "child failed:\n{stdout}");
    let claimed = stdout.matches("LOCK_RACE=claimed").count();
    let contended = stdout.matches("LOCK_RACE=contended").count();
    assert_eq!(
        (claimed, contended),
        (1, 1),
        "exactly one reclaimer may win the stale lock:\n{stdout}"
    );

    // The winner's drop released the lock: the cache is writable again.
    assert!(!dir.join("cache.lock").exists(), "lockfile leaked");
    drop(SweepCache::open(&dir).unwrap());
    std::fs::remove_dir_all(&dir).ok();
}
