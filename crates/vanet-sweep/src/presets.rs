//! Named, ready-to-run sweeps — the catalogue behind `carq-cli sweep list`.

use carq::{RecoveryStrategyKind, RequestStrategy, SelectionStrategy};
use vanet_scenarios::urban::UrbanConfig;
use vanet_scenarios::{HighwayScenario, MultiApScenario, Scenario, UrbanScenario};

use crate::spec::{Param, ParamValue, SweepSpec};

/// A named sweep: a scenario plus the spec it runs.
pub struct Preset {
    /// The CLI name.
    pub name: &'static str,
    /// One-line description shown by `sweep list`.
    pub description: &'static str,
    build: fn(u64, u32) -> (Box<dyn Scenario>, SweepSpec),
}

impl std::fmt::Debug for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Preset").field("name", &self.name).finish_non_exhaustive()
    }
}

impl Preset {
    /// Instantiates the preset with a master seed and a per-point round
    /// count (laps for urban, passes for highway; the multi-AP download
    /// ignores it — each of its points is one whole download, bounded by
    /// the scenario's AP-visit budget).
    pub fn build(&self, master_seed: u64, rounds: u32) -> (Box<dyn Scenario>, SweepSpec) {
        (self.build)(master_seed, rounds)
    }
}

fn floats(xs: &[f64]) -> Vec<ParamValue> {
    xs.iter().map(|x| ParamValue::Float(*x)).collect()
}

fn ints(xs: &[u64]) -> Vec<ParamValue> {
    xs.iter().map(|x| ParamValue::Int(*x)).collect()
}

fn urban_platoon(master_seed: u64, rounds: u32) -> (Box<dyn Scenario>, SweepSpec) {
    let base = UrbanConfig::paper_testbed().with_rounds(rounds);
    let spec = SweepSpec::new(master_seed)
        .axis(Param::SpeedKmh, floats(&[10.0, 15.0, 20.0, 25.0, 30.0, 40.0]))
        .axis(Param::NCars, ints(&[2, 3, 4, 5]));
    (Box::new(UrbanScenario::new(base)), spec)
}

fn urban_load(master_seed: u64, rounds: u32) -> (Box<dyn Scenario>, SweepSpec) {
    let base = UrbanConfig::paper_testbed().with_rounds(rounds);
    let spec = SweepSpec::new(master_seed)
        .axis(Param::ApRatePps, floats(&[1.0, 2.0, 5.0, 10.0]))
        .axis(Param::PayloadBytes, ints(&[250, 500, 1000]))
        .axis(Param::NCars, ints(&[2, 3]));
    (Box::new(UrbanScenario::new(base)), spec)
}

fn urban_strategies(master_seed: u64, rounds: u32) -> (Box<dyn Scenario>, SweepSpec) {
    let base = UrbanConfig::paper_testbed().with_rounds(rounds);
    let spec = SweepSpec::new(master_seed)
        .axis(
            Param::Selection,
            vec![
                ParamValue::Selection(SelectionStrategy::AllNeighbours),
                ParamValue::Selection(SelectionStrategy::FirstHeard { k: 1 }),
                ParamValue::Selection(SelectionStrategy::FirstHeard { k: 2 }),
                ParamValue::Selection(SelectionStrategy::StrongestSignal { k: 1 }),
                ParamValue::Selection(SelectionStrategy::StrongestSignal { k: 2 }),
            ],
        )
        .axis(
            Param::Request,
            vec![
                ParamValue::Request(RequestStrategy::PerPacket),
                ParamValue::Request(RequestStrategy::Batched),
            ],
        )
        .axis(Param::NCars, ints(&[3, 5]));
    (Box::new(UrbanScenario::new(base)), spec)
}

fn strategy_compare(master_seed: u64, rounds: u32) -> (Box<dyn Scenario>, SweepSpec) {
    let base = UrbanConfig::paper_testbed().with_rounds(rounds);
    let spec = SweepSpec::new(master_seed)
        .axis(
            Param::Strategy,
            RecoveryStrategyKind::ALL.iter().map(|k| ParamValue::Strategy(*k)).collect(),
        )
        .axis(Param::NCars, ints(&[3, 5]));
    (Box::new(UrbanScenario::new(base)), spec)
}

fn highway_speed_rate(master_seed: u64, rounds: u32) -> (Box<dyn Scenario>, SweepSpec) {
    let mut base = vanet_scenarios::highway::HighwayConfig::drive_thru_reference();
    base.passes = rounds;
    let spec = SweepSpec::new(master_seed)
        .axis(Param::SpeedKmh, floats(&[60.0, 80.0, 100.0, 120.0, 140.0]))
        .axis(Param::ApRatePps, floats(&[1.0, 5.0, 10.0]))
        .axis(Param::Cooperation, vec![ParamValue::Bool(false), ParamValue::Bool(true)])
        .axis(Param::NCars, ints(&[3]));
    (Box::new(HighwayScenario::new(base)), spec)
}

// `rounds` has no effect here: a multi-AP point is one whole download,
// bounded by the scenario's own AP-visit budget rather than a round count.
fn multi_ap_blocks(master_seed: u64, _rounds: u32) -> (Box<dyn Scenario>, SweepSpec) {
    let base = vanet_scenarios::multi_ap::MultiApConfig::default_download();
    let spec = SweepSpec::new(master_seed)
        .axis(Param::FileBlocks, ints(&[300, 600, 1200, 1500]))
        .axis(Param::Cooperation, vec![ParamValue::Bool(false), ParamValue::Bool(true)])
        .axis(Param::NCars, ints(&[2, 3, 4]));
    (Box::new(MultiApScenario::new(base)), spec)
}

/// The built-in preset catalogue.
pub fn all() -> Vec<Preset> {
    vec![
        Preset {
            name: "urban-platoon",
            description: "urban testbed, speed x platoon-size grid (24 points)",
            build: urban_platoon,
        },
        Preset {
            name: "urban-load",
            description: "urban testbed, AP rate x payload x platoon grid (24 points)",
            build: urban_load,
        },
        Preset {
            name: "urban-strategies",
            description: "urban testbed, cooperator-selection x REQUEST-strategy grid (20 points)",
            build: urban_strategies,
        },
        Preset {
            name: "strategy-compare",
            description: "urban testbed, recovery-strategy x platoon grid (8 points)",
            build: strategy_compare,
        },
        Preset {
            name: "highway-speed-rate",
            description: "highway drive-thru, speed x rate x cooperation grid (30 points)",
            build: highway_speed_rate,
        },
        Preset {
            name: "multiap-blocks",
            description: "multi-AP download, file-size x cooperation x platoon grid (24 points)",
            build: multi_ap_blocks,
        },
    ]
}

/// Looks a preset up by name.
pub fn find(name: &str) -> Option<Preset> {
    all().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_unique_and_findable() {
        let presets = all();
        assert!(presets.len() >= 5);
        let names: std::collections::BTreeSet<&str> = presets.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), presets.len());
        for preset in &presets {
            assert!(find(preset.name).is_some());
        }
        assert!(find("no-such-preset").is_none());
    }

    #[test]
    fn presets_expand_to_their_advertised_sizes() {
        for preset in all() {
            let (scenario, spec) = preset.build(1, 2);
            assert!(!spec.is_empty(), "{} is empty", preset.name);
            assert!(!scenario.name().is_empty());
            // The flagship urban preset must satisfy the >= 24-point bar.
            if preset.name == "urban-platoon" {
                assert_eq!(spec.len(), 24);
            }
        }
    }

    #[test]
    fn every_preset_point_passes_its_scenario_schema() {
        // The strictness satellite: presets must stay valid under
        // unknown-parameter rejection, without the escape hatch.
        for preset in all() {
            let (scenario, spec) = preset.build(1, 2);
            for (i, point) in spec.expand().iter().enumerate() {
                scenario
                    .schema()
                    .validate(point)
                    .unwrap_or_else(|e| panic!("{} point {i} fails validation: {e}", preset.name));
            }
        }
    }

    #[test]
    fn preset_round_budgets_do_not_change_cache_identity() {
        // Presets bake the requested round count into the scenario's base
        // config (and thus the schema's Rounds default). That budget is
        // round-neutral, so neither the schema fingerprint nor the
        // canonical configurations may move — otherwise a `--rounds 60`
        // re-run could never resume from a `--rounds 30` cache.
        use crate::spec::SweepPoint;
        for preset in all() {
            let (short, spec) = preset.build(1, 30);
            let (long, _) = preset.build(1, 60);
            assert_eq!(
                short.schema().fingerprint(),
                long.schema().fingerprint(),
                "{}: fingerprint must ignore the round budget",
                preset.name
            );
            for point in spec.expand() {
                assert_eq!(
                    short.schema().canonical_config(&point),
                    long.schema().canonical_config(&point),
                    "{}: canonical config moved for {}",
                    preset.name,
                    point.label()
                );
            }
            assert_eq!(
                short.schema().canonical_config(&SweepPoint::empty()),
                long.schema().canonical_config(&SweepPoint::empty()),
            );
        }
    }

    #[test]
    fn strategy_compare_points_have_distinct_cache_identities() {
        // The cache-identity contract of the strategy parameter: every
        // strategy x platoon point resolves to its own canonical
        // configuration (the string seeds and cache keys derive from), and
        // the default-strategy points keep the exact canonical an
        // urban schema produced before the parameter existed.
        let (scenario, spec) = find("strategy-compare").unwrap().build(1, 2);
        let points = spec.expand();
        assert_eq!(points.len(), RecoveryStrategyKind::ALL.len() * 2);
        let mut canons: Vec<String> =
            points.iter().map(|p| scenario.schema().canonical_config(p)).collect();
        canons.sort();
        canons.dedup();
        assert_eq!(canons.len(), points.len(), "each point needs its own cache identity");
        // CoopArq points carry no `strategy=` segment: they alias the
        // pre-strategy canonical (and therefore its seeds and cache).
        for point in &points {
            let canon = scenario.schema().canonical_config(point);
            match point.get(Param::Strategy) {
                Some(ParamValue::Strategy(RecoveryStrategyKind::CoopArq)) => {
                    assert!(!canon.contains("strategy="), "{canon}");
                }
                _ => assert!(canon.contains("strategy="), "{canon}"),
            }
        }
    }

    #[test]
    fn preset_debug_shows_name() {
        let preset = find("urban-platoon").unwrap();
        assert!(format!("{preset:?}").contains("urban-platoon"));
    }
}
