//! The [`Experiment`] trait and its adapters for the three scenarios of
//! `vanet-scenarios`.

use vanet_scenarios::highway::{HighwayConfig, HighwayExperiment};
use vanet_scenarios::multi_ap::{MultiApConfig, MultiApExperiment};
use vanet_scenarios::urban::{UrbanConfig, UrbanExperiment};
use vanet_stats::{mean, Percentiles};

use crate::spec::{Param, SweepPoint};

/// The metric row one sweep point produced: ordered `(name, value)` pairs.
/// Every point of one sweep must report the same metric names in the same
/// order (the engine enforces this), so the rows align into a table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointSummary {
    /// Ordered metric values.
    pub metrics: Vec<(&'static str, f64)>,
}

impl PointSummary {
    /// The metric names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.metrics.iter().map(|(n, _)| *n).collect()
    }

    /// The value of the metric called `name`, if present.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

/// A scenario that a sweep can drive.
///
/// Implementations hold a *base* configuration; each sweep point overrides
/// the parameters it assigns (unknown parameters are ignored, so one spec
/// can drive scenarios that consume different subsets). `run_point` must be
/// a pure function of `(point, seed)` — all randomness must derive from
/// `seed` — because the engine relies on that for thread-count-independent
/// results.
pub trait Experiment: Send + Sync {
    /// Short scenario name used in exports and the CLI.
    fn name(&self) -> &'static str;

    /// Runs the scenario at `point`, seeding all randomness from `seed`.
    fn run_point(&self, point: &SweepPoint, seed: u64) -> PointSummary;
}

/// Narrows a sweep value to the `u32` the scenario configs use,
/// saturating rather than wrapping (a 2^32-block file would otherwise
/// become a 0-block file and export plausible-looking nonsense).
fn saturate_u32(value: u64) -> u32 {
    u32::try_from(value).unwrap_or(u32::MAX)
}

/// Per-flow loss percentages pooled over rounds — shared by the urban and
/// highway adapters.
#[derive(Debug, Default)]
struct LossSamples {
    window: Vec<f64>,
    before_pct: Vec<f64>,
    after_pct: Vec<f64>,
}

impl LossSamples {
    fn absorb(&mut self, round: &vanet_stats::RoundResult) {
        for car in round.cars() {
            let Some(flow) = round.flow_for(car) else { continue };
            let tx = flow.tx_by_ap_in_window();
            if tx == 0 {
                continue;
            }
            self.window.push(tx as f64);
            self.before_pct.push(flow.lost_before_coop() as f64 / tx as f64 * 100.0);
            self.after_pct.push(flow.lost_after_coop() as f64 / tx as f64 * 100.0);
        }
    }

    fn metrics(&self) -> Vec<(&'static str, f64)> {
        let after = Percentiles::of(&self.after_pct);
        vec![
            ("tx_window_mean", mean(&self.window)),
            ("loss_before_pct_mean", mean(&self.before_pct)),
            ("loss_after_pct_mean", mean(&self.after_pct)),
            ("loss_after_pct_p50", after.p50),
            ("loss_after_pct_p90", after.p90),
            ("loss_after_pct_max", after.max),
        ]
    }
}

/// Sweep adapter for the paper's urban testbed.
#[derive(Debug, Clone)]
pub struct UrbanSweep {
    base: UrbanConfig,
}

impl UrbanSweep {
    /// Creates an adapter sweeping around `base`.
    pub fn new(base: UrbanConfig) -> Self {
        UrbanSweep { base }
    }

    /// Sweeps around the paper's testbed configuration.
    pub fn paper_testbed() -> Self {
        UrbanSweep::new(UrbanConfig::paper_testbed())
    }

    /// The configuration a point runs: the base with the point's overrides.
    pub fn config_for(&self, point: &SweepPoint) -> UrbanConfig {
        let mut cfg = self.base.clone();
        if let Some(speed) = point.get(Param::SpeedKmh).and_then(|v| v.as_f64()) {
            cfg.speed_kmh = speed;
        }
        if let Some(n) = point.get(Param::NCars).and_then(|v| v.as_u64()) {
            cfg = cfg.with_platoon_size(n as usize);
        }
        if let Some(rate) = point.get(Param::ApRatePps).and_then(|v| v.as_f64()) {
            cfg.ap_rate_pps = rate;
        }
        if let Some(payload) = point.get(Param::PayloadBytes).and_then(|v| v.as_u64()) {
            cfg.payload_bytes = saturate_u32(payload);
            cfg.carq.expected_payload_bytes = saturate_u32(payload);
        }
        if let Some(crate::ParamValue::Selection(selection)) = point.get(Param::Selection) {
            cfg.carq.selection = selection;
        }
        if let Some(crate::ParamValue::Request(request)) = point.get(Param::Request) {
            cfg.carq.request_strategy = request;
        }
        if let Some(coop) = point.get(Param::Cooperation).and_then(|v| v.as_bool()) {
            cfg.cooperation_enabled = coop;
        }
        if let Some(rounds) = point.get(Param::Rounds).and_then(|v| v.as_u64()) {
            cfg.rounds = saturate_u32(rounds);
        }
        cfg
    }
}

impl Experiment for UrbanSweep {
    fn name(&self) -> &'static str {
        "urban"
    }

    fn run_point(&self, point: &SweepPoint, seed: u64) -> PointSummary {
        let mut cfg = self.config_for(point);
        cfg.master_seed = seed;
        let result = UrbanExperiment::new(cfg).run();
        let mut losses = LossSamples::default();
        let mut efficiency = Vec::new();
        for round in result.rounds() {
            losses.absorb(round);
            for car in round.cars() {
                if let Some(flow) = round.flow_for(car) {
                    efficiency.push(flow.recovery_efficiency());
                }
            }
        }
        let mut metrics = losses.metrics();
        metrics.push(("recovery_efficiency_mean", mean(&efficiency)));
        metrics.push(("requests_sent", result.total_requests_sent() as f64));
        metrics.push(("coop_data_sent", result.total_coop_data_sent() as f64));
        PointSummary { metrics }
    }
}

/// Sweep adapter for the highway drive-thru scenario.
#[derive(Debug, Clone)]
pub struct HighwaySweep {
    base: HighwayConfig,
}

impl HighwaySweep {
    /// Creates an adapter sweeping around `base`.
    pub fn new(base: HighwayConfig) -> Self {
        HighwaySweep { base }
    }

    /// Sweeps around the drive-thru reference configuration.
    pub fn drive_thru() -> Self {
        HighwaySweep::new(HighwayConfig::drive_thru_reference())
    }

    /// The configuration a point runs.
    pub fn config_for(&self, point: &SweepPoint) -> HighwayConfig {
        let mut cfg = self.base.clone();
        if let Some(speed) = point.get(Param::SpeedKmh).and_then(|v| v.as_f64()) {
            cfg.speed_kmh = speed;
        }
        if let Some(rate) = point.get(Param::ApRatePps).and_then(|v| v.as_f64()) {
            cfg.ap_rate_pps = rate;
        }
        if let Some(n) = point.get(Param::NCars).and_then(|v| v.as_u64()) {
            cfg.n_cars = n as usize;
        }
        if let Some(payload) = point.get(Param::PayloadBytes).and_then(|v| v.as_u64()) {
            cfg.payload_bytes = saturate_u32(payload);
        }
        if let Some(coop) = point.get(Param::Cooperation).and_then(|v| v.as_bool()) {
            cfg.cooperation_enabled = coop;
        }
        if let Some(passes) = point.get(Param::Rounds).and_then(|v| v.as_u64()) {
            cfg.passes = saturate_u32(passes);
        }
        cfg
    }
}

impl Experiment for HighwaySweep {
    fn name(&self) -> &'static str {
        "highway"
    }

    fn run_point(&self, point: &SweepPoint, seed: u64) -> PointSummary {
        let mut cfg = self.config_for(point);
        cfg.master_seed = seed;
        let passes = cfg.passes;
        let experiment = HighwayExperiment::new(cfg);
        let mut losses = LossSamples::default();
        for pass in 0..passes {
            losses.absorb(&experiment.run_pass(pass));
        }
        PointSummary { metrics: losses.metrics() }
    }
}

/// Sweep adapter for the multi-AP download extension.
#[derive(Debug, Clone)]
pub struct MultiApSweep {
    base: MultiApConfig,
}

impl MultiApSweep {
    /// Creates an adapter sweeping around `base`.
    pub fn new(base: MultiApConfig) -> Self {
        MultiApSweep { base }
    }

    /// Sweeps around the default 1500-block download.
    pub fn default_download() -> Self {
        MultiApSweep::new(MultiApConfig::default_download())
    }

    /// The configuration a point runs.
    pub fn config_for(&self, point: &SweepPoint) -> MultiApConfig {
        let mut cfg = self.base.clone();
        if let Some(blocks) = point.get(Param::FileBlocks).and_then(|v| v.as_u64()) {
            cfg.file_blocks = saturate_u32(blocks);
        }
        if let Some(speed) = point.get(Param::SpeedKmh).and_then(|v| v.as_f64()) {
            cfg.pass.speed_kmh = speed;
        }
        if let Some(rate) = point.get(Param::ApRatePps).and_then(|v| v.as_f64()) {
            cfg.pass.ap_rate_pps = rate;
        }
        if let Some(n) = point.get(Param::NCars).and_then(|v| v.as_u64()) {
            cfg.pass.n_cars = n as usize;
        }
        if let Some(payload) = point.get(Param::PayloadBytes).and_then(|v| v.as_u64()) {
            cfg.pass.payload_bytes = saturate_u32(payload);
        }
        if let Some(coop) = point.get(Param::Cooperation).and_then(|v| v.as_bool()) {
            cfg.pass.cooperation_enabled = coop;
        }
        cfg
    }
}

impl Experiment for MultiApSweep {
    fn name(&self) -> &'static str {
        "multi-ap"
    }

    fn run_point(&self, point: &SweepPoint, seed: u64) -> PointSummary {
        let mut cfg = self.config_for(point);
        cfg.pass.master_seed = seed;
        let max_passes = cfg.max_passes;
        let outcomes = MultiApExperiment::new(cfg).run();
        // A car that never finishes counts as `max_passes + 1` visits — a
        // pessimistic lower bound that keeps the mean monotone across a
        // sweep axis instead of collapsing to 0 exactly where downloads
        // stop completing.
        let visits: Vec<f64> =
            outcomes.iter().map(|o| f64::from(o.passes_needed.unwrap_or(max_passes + 1))).collect();
        let unfinished = outcomes.iter().filter(|o| o.passes_needed.is_none()).count();
        let worst = visits.iter().copied().fold(0.0, f64::max);
        let blocks_per_pass: Vec<f64> = outcomes.iter().map(|o| o.mean_blocks_per_pass).collect();
        PointSummary {
            metrics: vec![
                ("passes_needed_mean", mean(&visits)),
                ("passes_needed_max", worst),
                ("unfinished_cars", unfinished as f64),
                ("blocks_per_pass_mean", mean(&blocks_per_pass)),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ParamValue;
    use carq::{RequestStrategy, SelectionStrategy};

    fn point(assignments: Vec<(Param, ParamValue)>) -> SweepPoint {
        SweepPoint::new(assignments)
    }

    #[test]
    fn urban_overrides_reach_the_config() {
        let sweep = UrbanSweep::paper_testbed();
        let cfg = sweep.config_for(&point(vec![
            (Param::SpeedKmh, ParamValue::Float(35.0)),
            (Param::NCars, ParamValue::Int(5)),
            (Param::ApRatePps, ParamValue::Float(8.0)),
            (Param::PayloadBytes, ParamValue::Int(500)),
            (Param::Selection, ParamValue::Selection(SelectionStrategy::FirstHeard { k: 2 })),
            (Param::Request, ParamValue::Request(RequestStrategy::Batched)),
            (Param::Cooperation, ParamValue::Bool(false)),
            (Param::Rounds, ParamValue::Int(4)),
        ]));
        assert_eq!(cfg.speed_kmh, 35.0);
        assert_eq!(cfg.n_cars, 5);
        assert_eq!(cfg.drivers.len(), 5);
        assert_eq!(cfg.ap_rate_pps, 8.0);
        assert_eq!(cfg.payload_bytes, 500);
        assert_eq!(cfg.carq.expected_payload_bytes, 500);
        assert_eq!(cfg.carq.selection, SelectionStrategy::FirstHeard { k: 2 });
        assert_eq!(cfg.carq.request_strategy, RequestStrategy::Batched);
        assert!(!cfg.cooperation_enabled);
        assert_eq!(cfg.rounds, 4);
    }

    #[test]
    fn unassigned_parameters_keep_base_values() {
        let sweep = UrbanSweep::paper_testbed();
        let cfg = sweep.config_for(&point(vec![(Param::NCars, ParamValue::Int(4))]));
        let base = UrbanConfig::paper_testbed();
        assert_eq!(cfg.speed_kmh, base.speed_kmh);
        assert_eq!(cfg.ap_rate_pps, base.ap_rate_pps);
        assert_eq!(cfg.rounds, base.rounds);
        assert_eq!(cfg.n_cars, 4);
    }

    #[test]
    fn highway_overrides_reach_the_config() {
        let sweep = HighwaySweep::drive_thru();
        let cfg = sweep.config_for(&point(vec![
            (Param::SpeedKmh, ParamValue::Float(120.0)),
            (Param::ApRatePps, ParamValue::Float(10.0)),
            (Param::NCars, ParamValue::Int(3)),
            (Param::Cooperation, ParamValue::Bool(true)),
            (Param::Rounds, ParamValue::Int(2)),
        ]));
        assert_eq!(cfg.speed_kmh, 120.0);
        assert_eq!(cfg.ap_rate_pps, 10.0);
        assert_eq!(cfg.n_cars, 3);
        assert!(cfg.cooperation_enabled);
        assert_eq!(cfg.passes, 2);
    }

    #[test]
    fn oversized_values_saturate_instead_of_wrapping() {
        let cfg = MultiApSweep::default_download()
            .config_for(&point(vec![(Param::FileBlocks, ParamValue::Int(1 << 32))]));
        assert_eq!(cfg.file_blocks, u32::MAX);
        let cfg = UrbanSweep::paper_testbed()
            .config_for(&point(vec![(Param::PayloadBytes, ParamValue::Int(u64::MAX))]));
        assert_eq!(cfg.payload_bytes, u32::MAX);
    }

    #[test]
    fn multi_ap_unfinished_downloads_report_pessimistic_visit_counts() {
        let mut base = MultiApConfig::default_download();
        base.max_passes = 1; // one visit can never move ~10k blocks
        let sweep = MultiApSweep::new(base);
        let summary =
            sweep.run_point(&point(vec![(Param::FileBlocks, ParamValue::Int(10_000))]), 5);
        assert_eq!(summary.get("unfinished_cars"), Some(3.0));
        // Unfinished cars count as max_passes + 1 visits, not 0.
        assert_eq!(summary.get("passes_needed_mean"), Some(2.0));
        assert_eq!(summary.get("passes_needed_max"), Some(2.0));
    }

    #[test]
    fn multi_ap_overrides_reach_pass_and_file() {
        let sweep = MultiApSweep::default_download();
        let cfg = sweep.config_for(&point(vec![
            (Param::FileBlocks, ParamValue::Int(600)),
            (Param::SpeedKmh, ParamValue::Float(60.0)),
            (Param::Cooperation, ParamValue::Bool(false)),
        ]));
        assert_eq!(cfg.file_blocks, 600);
        assert_eq!(cfg.pass.speed_kmh, 60.0);
        assert!(!cfg.pass.cooperation_enabled);
    }

    #[test]
    fn urban_point_run_reports_the_full_metric_row() {
        let sweep = UrbanSweep::new(UrbanConfig::paper_testbed().with_rounds(1));
        let summary = sweep.run_point(&point(vec![(Param::NCars, ParamValue::Int(2))]), 42);
        let names = summary.names();
        assert!(names.contains(&"loss_before_pct_mean"));
        assert!(names.contains(&"loss_after_pct_p90"));
        assert!(names.contains(&"requests_sent"));
        assert!(summary.get("tx_window_mean").unwrap() > 0.0);
        let before = summary.get("loss_before_pct_mean").unwrap();
        let after = summary.get("loss_after_pct_mean").unwrap();
        assert!(after <= before, "cooperation must not increase losses ({after} > {before})");
    }

    #[test]
    fn same_seed_same_summary_different_seed_differs() {
        let sweep = UrbanSweep::new(UrbanConfig::paper_testbed().with_rounds(1));
        let p = point(vec![(Param::NCars, ParamValue::Int(2))]);
        let a = sweep.run_point(&p, 7);
        let b = sweep.run_point(&p, 7);
        let c = sweep.run_point(&p, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
