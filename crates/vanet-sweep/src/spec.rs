//! Declarative sweep specifications: axes and grid expansion.
//!
//! The parameter vocabulary itself — [`Param`], [`ParamValue`],
//! [`SweepPoint`] — lives in `vanet-scenarios` (next to the schemas that
//! validate it) and is re-exported here for convenience.

pub use vanet_scenarios::{Param, ParamValue, SweepPoint};

/// One axis of the sweep grid: a parameter and the values it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// The varied parameter.
    pub param: Param,
    /// The values, in the order they were declared (the expansion preserves
    /// this order).
    pub values: Vec<ParamValue>,
}

/// A declarative sweep: a master seed, a cartesian grid of axes, and an
/// optional list of explicit extra points appended after the grid.
///
/// Expansion order is deterministic and independent of how the sweep is
/// later executed: the grid is row-major with the **first** axis varying
/// slowest, followed by the explicit points in declaration order. The order
/// decides only how results are *presented* (export rows) — each point's
/// seed derives from its canonical configuration, not its position (see
/// [`crate::engine::point_seed`]), so editing the grid never changes the
/// results of the points that survive the edit.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Master seed; every point derives its own seed from it.
    pub master_seed: u64,
    /// Grid axes, outermost first.
    pub axes: Vec<Axis>,
    /// Explicit points appended after the grid.
    pub extra_points: Vec<SweepPoint>,
}

impl SweepSpec {
    /// Creates an empty spec with the given master seed.
    pub fn new(master_seed: u64) -> Self {
        SweepSpec { master_seed, axes: Vec::new(), extra_points: Vec::new() }
    }

    /// Adds a grid axis. Axes expand in the order they are added, the first
    /// varying slowest.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or the parameter already has an axis.
    #[must_use]
    pub fn axis(mut self, param: Param, values: Vec<ParamValue>) -> Self {
        assert!(!values.is_empty(), "axis {param} needs at least one value");
        assert!(
            !self.axes.iter().any(|a| a.param == param),
            "parameter {param} already has an axis"
        );
        self.axes.push(Axis { param, values });
        self
    }

    /// Appends an explicit point after the grid.
    #[must_use]
    pub fn point(mut self, point: SweepPoint) -> Self {
        self.extra_points.push(point);
        self
    }

    /// Number of points the expansion will produce.
    pub fn len(&self) -> usize {
        let grid: usize = if self.axes.is_empty() {
            0
        } else {
            self.axes.iter().map(|a| a.values.len()).product()
        };
        grid + self.extra_points.len()
    }

    /// Whether the expansion is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into its points: the cartesian product of the axes
    /// (row-major, first axis slowest) followed by the explicit points.
    pub fn expand(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        if !self.axes.is_empty() {
            let mut indices = vec![0usize; self.axes.len()];
            loop {
                points.push(SweepPoint::new(
                    self.axes
                        .iter()
                        .zip(&indices)
                        .map(|(axis, i)| (axis.param, axis.values[*i]))
                        .collect(),
                ));
                // Odometer increment, last axis fastest.
                let mut dim = self.axes.len();
                loop {
                    if dim == 0 {
                        return self.finish_expansion(points);
                    }
                    dim -= 1;
                    indices[dim] += 1;
                    if indices[dim] < self.axes[dim].values.len() {
                        break;
                    }
                    indices[dim] = 0;
                }
            }
        }
        self.finish_expansion(points)
    }

    fn finish_expansion(&self, mut points: Vec<SweepPoint>) -> Vec<SweepPoint> {
        points.extend(self.extra_points.iter().cloned());
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn floats(xs: &[f64]) -> Vec<ParamValue> {
        xs.iter().map(|x| ParamValue::Float(*x)).collect()
    }

    fn ints(xs: &[u64]) -> Vec<ParamValue> {
        xs.iter().map(|x| ParamValue::Int(*x)).collect()
    }

    #[test]
    fn expansion_is_row_major_with_first_axis_slowest() {
        let spec = SweepSpec::new(1)
            .axis(Param::SpeedKmh, floats(&[10.0, 20.0]))
            .axis(Param::NCars, ints(&[2, 3, 4]));
        let points = spec.expand();
        assert_eq!(points.len(), 6);
        assert_eq!(spec.len(), 6);
        let as_pairs: Vec<(f64, u64)> = points
            .iter()
            .map(|p| {
                (
                    p.get(Param::SpeedKmh).unwrap().as_f64().unwrap(),
                    p.get(Param::NCars).unwrap().as_u64().unwrap(),
                )
            })
            .collect();
        assert_eq!(
            as_pairs,
            vec![(10.0, 2), (10.0, 3), (10.0, 4), (20.0, 2), (20.0, 3), (20.0, 4)]
        );
    }

    #[test]
    fn expansion_ordering_is_stable_across_calls() {
        let spec = SweepSpec::new(7)
            .axis(Param::ApRatePps, floats(&[1.0, 5.0, 10.0]))
            .axis(Param::PayloadBytes, ints(&[500, 1000]))
            .axis(Param::NCars, ints(&[2, 3]));
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        // Labels are unique: no two grid points collide.
        let labels: std::collections::BTreeSet<String> = a.iter().map(SweepPoint::label).collect();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn explicit_points_follow_the_grid_in_order() {
        let extra_a = SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Float(99.0))]);
        let extra_b = SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Float(5.0))]);
        let spec = SweepSpec::new(1)
            .axis(Param::SpeedKmh, floats(&[10.0]))
            .point(extra_a.clone())
            .point(extra_b.clone());
        let points = spec.expand();
        assert_eq!(points.len(), 3);
        assert_eq!(points[1], extra_a);
        assert_eq!(points[2], extra_b);
    }

    #[test]
    fn spec_with_only_explicit_points_expands_to_them() {
        let point = SweepPoint::new(vec![(Param::NCars, ParamValue::Int(4))]);
        let spec = SweepSpec::new(3).point(point.clone());
        assert_eq!(spec.expand(), vec![point]);
        assert!(!spec.is_empty());
        assert!(SweepSpec::new(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "already has an axis")]
    fn duplicate_axis_rejected() {
        let _ = SweepSpec::new(1).axis(Param::NCars, ints(&[1])).axis(Param::NCars, ints(&[2]));
    }
}
