//! Declarative sweep specifications: parameters, axes and grid expansion.

use std::fmt;

use carq::{RequestStrategy, SelectionStrategy};

/// A parameter a sweep can vary. Not every scenario consumes every
/// parameter; an [`crate::Experiment`] implementation ignores the parameters
/// it has no use for (e.g. `FileBlocks` outside the multi-AP download).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Param {
    /// Platoon cruise speed in km/h.
    SpeedKmh,
    /// Number of cars in the platoon.
    NCars,
    /// AP sending rate per car, packets per second.
    ApRatePps,
    /// Payload per data packet in bytes.
    PayloadBytes,
    /// Cooperator-selection strategy of the C-ARQ protocol.
    Selection,
    /// REQUEST strategy of the C-ARQ protocol (per-packet vs batched).
    Request,
    /// Whether cooperation is enabled at all.
    Cooperation,
    /// Rounds (urban laps) or passes (highway drive-bys) per point.
    Rounds,
    /// File size in blocks (multi-AP download only).
    FileBlocks,
}

impl Param {
    /// The column name used in exports and the CLI.
    pub fn key(&self) -> &'static str {
        match self {
            Param::SpeedKmh => "speed_kmh",
            Param::NCars => "n_cars",
            Param::ApRatePps => "ap_rate_pps",
            Param::PayloadBytes => "payload_bytes",
            Param::Selection => "selection",
            Param::Request => "request",
            Param::Cooperation => "cooperation",
            Param::Rounds => "rounds",
            Param::FileBlocks => "file_blocks",
        }
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One value of a sweep parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// A real-valued parameter (speed, rate).
    Float(f64),
    /// An integral parameter (cars, payload, rounds, blocks).
    Int(u64),
    /// An on/off parameter (cooperation).
    Bool(bool),
    /// A cooperator-selection strategy.
    Selection(SelectionStrategy),
    /// A REQUEST strategy.
    Request(RequestStrategy),
}

impl ParamValue {
    /// The float behind this value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Float(x) => Some(*x),
            ParamValue::Int(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The integer behind this value, if integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ParamValue::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean behind this value, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(x) => Some(*x),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Fixed decimals keep exports byte-stable; see vanet-stats.
            ParamValue::Float(x) => write!(f, "{x:.3}"),
            ParamValue::Int(x) => write!(f, "{x}"),
            ParamValue::Bool(x) => write!(f, "{x}"),
            ParamValue::Selection(SelectionStrategy::AllNeighbours) => f.write_str("all"),
            ParamValue::Selection(SelectionStrategy::FirstHeard { k }) => write!(f, "first{k}"),
            ParamValue::Selection(SelectionStrategy::StrongestSignal { k }) => {
                write!(f, "strong{k}")
            }
            ParamValue::Request(RequestStrategy::PerPacket) => f.write_str("per-packet"),
            ParamValue::Request(RequestStrategy::Batched) => f.write_str("batched"),
        }
    }
}

/// One axis of the sweep grid: a parameter and the values it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// The varied parameter.
    pub param: Param,
    /// The values, in the order they were declared (the expansion preserves
    /// this order).
    pub values: Vec<ParamValue>,
}

/// One point of an expanded sweep: parameter assignments in axis order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepPoint {
    assignments: Vec<(Param, ParamValue)>,
}

impl SweepPoint {
    /// Creates a point from explicit assignments.
    ///
    /// # Panics
    ///
    /// Panics if a parameter appears twice.
    pub fn new(assignments: Vec<(Param, ParamValue)>) -> Self {
        for (i, (param, _)) in assignments.iter().enumerate() {
            assert!(
                !assignments[..i].iter().any(|(p, _)| p == param),
                "parameter {param} assigned twice in one point"
            );
        }
        SweepPoint { assignments }
    }

    /// The assignments, in axis order.
    pub fn assignments(&self) -> &[(Param, ParamValue)] {
        &self.assignments
    }

    /// The value assigned to `param`, if any.
    pub fn get(&self, param: Param) -> Option<ParamValue> {
        self.assignments.iter().find(|(p, _)| *p == param).map(|(_, v)| *v)
    }

    /// A compact `key=value,key=value` label for logs and progress output.
    pub fn label(&self) -> String {
        self.assignments.iter().map(|(p, v)| format!("{p}={v}")).collect::<Vec<_>>().join(",")
    }
}

/// A declarative sweep: a master seed, a cartesian grid of axes, and an
/// optional list of explicit extra points appended after the grid.
///
/// Expansion order is deterministic and independent of how the sweep is
/// later executed: the grid is row-major with the **first** axis varying
/// slowest, followed by the explicit points in declaration order. The
/// per-point seed derivation (see [`crate::engine::point_seed`]) keys on the
/// point's position in this expansion, which is what makes sweep results
/// independent of thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Master seed; every point derives its own seed from it.
    pub master_seed: u64,
    /// Grid axes, outermost first.
    pub axes: Vec<Axis>,
    /// Explicit points appended after the grid.
    pub extra_points: Vec<SweepPoint>,
}

impl SweepSpec {
    /// Creates an empty spec with the given master seed.
    pub fn new(master_seed: u64) -> Self {
        SweepSpec { master_seed, axes: Vec::new(), extra_points: Vec::new() }
    }

    /// Adds a grid axis. Axes expand in the order they are added, the first
    /// varying slowest.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or the parameter already has an axis.
    #[must_use]
    pub fn axis(mut self, param: Param, values: Vec<ParamValue>) -> Self {
        assert!(!values.is_empty(), "axis {param} needs at least one value");
        assert!(
            !self.axes.iter().any(|a| a.param == param),
            "parameter {param} already has an axis"
        );
        self.axes.push(Axis { param, values });
        self
    }

    /// Appends an explicit point after the grid.
    #[must_use]
    pub fn point(mut self, point: SweepPoint) -> Self {
        self.extra_points.push(point);
        self
    }

    /// Number of points the expansion will produce.
    pub fn len(&self) -> usize {
        let grid: usize = if self.axes.is_empty() {
            0
        } else {
            self.axes.iter().map(|a| a.values.len()).product()
        };
        grid + self.extra_points.len()
    }

    /// Whether the expansion is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into its points: the cartesian product of the axes
    /// (row-major, first axis slowest) followed by the explicit points.
    pub fn expand(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        if !self.axes.is_empty() {
            let mut indices = vec![0usize; self.axes.len()];
            loop {
                points.push(SweepPoint::new(
                    self.axes
                        .iter()
                        .zip(&indices)
                        .map(|(axis, i)| (axis.param, axis.values[*i]))
                        .collect(),
                ));
                // Odometer increment, last axis fastest.
                let mut dim = self.axes.len();
                loop {
                    if dim == 0 {
                        return self.finish_expansion(points);
                    }
                    dim -= 1;
                    indices[dim] += 1;
                    if indices[dim] < self.axes[dim].values.len() {
                        break;
                    }
                    indices[dim] = 0;
                }
            }
        }
        self.finish_expansion(points)
    }

    fn finish_expansion(&self, mut points: Vec<SweepPoint>) -> Vec<SweepPoint> {
        points.extend(self.extra_points.iter().cloned());
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn floats(xs: &[f64]) -> Vec<ParamValue> {
        xs.iter().map(|x| ParamValue::Float(*x)).collect()
    }

    fn ints(xs: &[u64]) -> Vec<ParamValue> {
        xs.iter().map(|x| ParamValue::Int(*x)).collect()
    }

    #[test]
    fn expansion_is_row_major_with_first_axis_slowest() {
        let spec = SweepSpec::new(1)
            .axis(Param::SpeedKmh, floats(&[10.0, 20.0]))
            .axis(Param::NCars, ints(&[2, 3, 4]));
        let points = spec.expand();
        assert_eq!(points.len(), 6);
        assert_eq!(spec.len(), 6);
        let as_pairs: Vec<(f64, u64)> = points
            .iter()
            .map(|p| {
                (
                    p.get(Param::SpeedKmh).unwrap().as_f64().unwrap(),
                    p.get(Param::NCars).unwrap().as_u64().unwrap(),
                )
            })
            .collect();
        assert_eq!(
            as_pairs,
            vec![(10.0, 2), (10.0, 3), (10.0, 4), (20.0, 2), (20.0, 3), (20.0, 4)]
        );
    }

    #[test]
    fn expansion_ordering_is_stable_across_calls() {
        let spec = SweepSpec::new(7)
            .axis(Param::ApRatePps, floats(&[1.0, 5.0, 10.0]))
            .axis(Param::PayloadBytes, ints(&[500, 1000]))
            .axis(Param::NCars, ints(&[2, 3]));
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        // Labels are unique: no two grid points collide.
        let labels: std::collections::BTreeSet<String> = a.iter().map(SweepPoint::label).collect();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn explicit_points_follow_the_grid_in_order() {
        let extra_a = SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Float(99.0))]);
        let extra_b = SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Float(5.0))]);
        let spec = SweepSpec::new(1)
            .axis(Param::SpeedKmh, floats(&[10.0]))
            .point(extra_a.clone())
            .point(extra_b.clone());
        let points = spec.expand();
        assert_eq!(points.len(), 3);
        assert_eq!(points[1], extra_a);
        assert_eq!(points[2], extra_b);
    }

    #[test]
    fn spec_with_only_explicit_points_expands_to_them() {
        let point = SweepPoint::new(vec![(Param::NCars, ParamValue::Int(4))]);
        let spec = SweepSpec::new(3).point(point.clone());
        assert_eq!(spec.expand(), vec![point]);
        assert!(!spec.is_empty());
        assert!(SweepSpec::new(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "already has an axis")]
    fn duplicate_axis_rejected() {
        let _ = SweepSpec::new(1).axis(Param::NCars, ints(&[1])).axis(Param::NCars, ints(&[2]));
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_assignment_rejected() {
        let _ = SweepPoint::new(vec![
            (Param::NCars, ParamValue::Int(1)),
            (Param::NCars, ParamValue::Int(2)),
        ]);
    }

    #[test]
    fn param_values_render_compactly() {
        use carq::{RequestStrategy, SelectionStrategy};
        assert_eq!(ParamValue::Float(20.0).to_string(), "20.000");
        assert_eq!(ParamValue::Int(3).to_string(), "3");
        assert_eq!(ParamValue::Bool(true).to_string(), "true");
        assert_eq!(ParamValue::Selection(SelectionStrategy::AllNeighbours).to_string(), "all");
        assert_eq!(
            ParamValue::Selection(SelectionStrategy::FirstHeard { k: 2 }).to_string(),
            "first2"
        );
        assert_eq!(
            ParamValue::Selection(SelectionStrategy::StrongestSignal { k: 1 }).to_string(),
            "strong1"
        );
        assert_eq!(ParamValue::Request(RequestStrategy::PerPacket).to_string(), "per-packet");
        assert_eq!(ParamValue::Request(RequestStrategy::Batched).to_string(), "batched");
        let point = SweepPoint::new(vec![
            (Param::SpeedKmh, ParamValue::Float(20.0)),
            (Param::NCars, ParamValue::Int(3)),
        ]);
        assert_eq!(point.label(), "speed_kmh=20.000,n_cars=3");
    }
}
