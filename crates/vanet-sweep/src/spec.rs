//! Declarative sweep specifications: axes and grid expansion.
//!
//! The parameter vocabulary itself — [`Param`], [`ParamValue`],
//! [`SweepPoint`] — lives in `vanet-scenarios` (next to the schemas that
//! validate it) and is re-exported here for convenience.

pub use vanet_scenarios::{Param, ParamValue, SweepPoint};

/// One axis of the sweep grid: a parameter and the values it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// The varied parameter.
    pub param: Param,
    /// The values, in the order they were declared (the expansion preserves
    /// this order).
    pub values: Vec<ParamValue>,
}

/// A declarative sweep: a master seed, a cartesian grid of axes, and an
/// optional list of explicit extra points appended after the grid.
///
/// Expansion order is deterministic and independent of how the sweep is
/// later executed: the grid is row-major with the **first** axis varying
/// slowest, followed by the explicit points in declaration order. The order
/// decides only how results are *presented* (export rows) — each point's
/// seed derives from its canonical configuration, not its position (see
/// [`crate::engine::point_seed`]), so editing the grid never changes the
/// results of the points that survive the edit.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Master seed; every point derives its own seed from it.
    pub master_seed: u64,
    /// Grid axes, outermost first.
    pub axes: Vec<Axis>,
    /// Explicit points appended after the grid.
    pub extra_points: Vec<SweepPoint>,
}

impl SweepSpec {
    /// Creates an empty spec with the given master seed.
    pub fn new(master_seed: u64) -> Self {
        SweepSpec { master_seed, axes: Vec::new(), extra_points: Vec::new() }
    }

    /// Adds a grid axis. Axes expand in the order they are added, the first
    /// varying slowest.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or the parameter already has an axis.
    #[must_use]
    pub fn axis(mut self, param: Param, values: Vec<ParamValue>) -> Self {
        assert!(!values.is_empty(), "axis {param} needs at least one value");
        assert!(
            !self.axes.iter().any(|a| a.param == param),
            "parameter {param} already has an axis"
        );
        self.axes.push(Axis { param, values });
        self
    }

    /// Appends an explicit point after the grid.
    #[must_use]
    pub fn point(mut self, point: SweepPoint) -> Self {
        self.extra_points.push(point);
        self
    }

    /// Number of points the expansion will produce.
    pub fn len(&self) -> usize {
        let grid: usize = if self.axes.is_empty() {
            0
        } else {
            self.axes.iter().map(|a| a.values.len()).product()
        };
        grid + self.extra_points.len()
    }

    /// Whether the expansion is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into its points: the cartesian product of the axes
    /// (row-major, first axis slowest) followed by the explicit points.
    pub fn expand(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        if !self.axes.is_empty() {
            let mut indices = vec![0usize; self.axes.len()];
            loop {
                points.push(SweepPoint::new(
                    self.axes
                        .iter()
                        .zip(&indices)
                        .map(|(axis, i)| (axis.param, axis.values[*i]))
                        .collect(),
                ));
                // Odometer increment, last axis fastest.
                let mut dim = self.axes.len();
                loop {
                    if dim == 0 {
                        return self.finish_expansion(points);
                    }
                    dim -= 1;
                    indices[dim] += 1;
                    if indices[dim] < self.axes[dim].values.len() {
                        break;
                    }
                    indices[dim] = 0;
                }
            }
        }
        self.finish_expansion(points)
    }

    fn finish_expansion(&self, mut points: Vec<SweepPoint>) -> Vec<SweepPoint> {
        points.extend(self.extra_points.iter().cloned());
        points
    }

    /// The expanded points paired with their expansion indices — the
    /// enumeration shard planners and progress reporters consume.
    pub fn enumerate_points(&self) -> Vec<(usize, SweepPoint)> {
        self.expand().into_iter().enumerate().collect()
    }

    /// The `index`-th of `count` **strided** shards of this spec: a new
    /// spec with the same master seed whose explicit points are every
    /// `count`-th expansion point starting at `index` (point `i` lands in
    /// shard `i % count`, so uneven per-point costs spread evenly).
    ///
    /// Because point seeds are content-addressed ([`point_seed`] derives
    /// from the canonical configuration, not the grid position), running
    /// the shards separately — in any order, on any machine — simulates
    /// exactly the rounds the unsharded sweep would, with identical seeds
    /// and therefore identical reports. That is the foundation the
    /// `vanet-fleet` crate builds multi-process sweeps on. A shard may be
    /// empty when `count` exceeds the point count; executors skip it.
    ///
    /// [`point_seed`]: crate::engine::point_seed
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index` is not below `count`.
    #[must_use]
    pub fn shard(&self, index: usize, count: usize) -> SweepSpec {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range for {count} shard(s)");
        SweepSpec {
            master_seed: self.master_seed,
            axes: Vec::new(),
            extra_points: self.expand().into_iter().skip(index).step_by(count).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn floats(xs: &[f64]) -> Vec<ParamValue> {
        xs.iter().map(|x| ParamValue::Float(*x)).collect()
    }

    fn ints(xs: &[u64]) -> Vec<ParamValue> {
        xs.iter().map(|x| ParamValue::Int(*x)).collect()
    }

    #[test]
    fn expansion_is_row_major_with_first_axis_slowest() {
        let spec = SweepSpec::new(1)
            .axis(Param::SpeedKmh, floats(&[10.0, 20.0]))
            .axis(Param::NCars, ints(&[2, 3, 4]));
        let points = spec.expand();
        assert_eq!(points.len(), 6);
        assert_eq!(spec.len(), 6);
        let as_pairs: Vec<(f64, u64)> = points
            .iter()
            .map(|p| {
                (
                    p.get(Param::SpeedKmh).unwrap().as_f64().unwrap(),
                    p.get(Param::NCars).unwrap().as_u64().unwrap(),
                )
            })
            .collect();
        assert_eq!(
            as_pairs,
            vec![(10.0, 2), (10.0, 3), (10.0, 4), (20.0, 2), (20.0, 3), (20.0, 4)]
        );
    }

    #[test]
    fn expansion_ordering_is_stable_across_calls() {
        let spec = SweepSpec::new(7)
            .axis(Param::ApRatePps, floats(&[1.0, 5.0, 10.0]))
            .axis(Param::PayloadBytes, ints(&[500, 1000]))
            .axis(Param::NCars, ints(&[2, 3]));
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        // Labels are unique: no two grid points collide.
        let labels: std::collections::BTreeSet<String> = a.iter().map(SweepPoint::label).collect();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn explicit_points_follow_the_grid_in_order() {
        let extra_a = SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Float(99.0))]);
        let extra_b = SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Float(5.0))]);
        let spec = SweepSpec::new(1)
            .axis(Param::SpeedKmh, floats(&[10.0]))
            .point(extra_a.clone())
            .point(extra_b.clone());
        let points = spec.expand();
        assert_eq!(points.len(), 3);
        assert_eq!(points[1], extra_a);
        assert_eq!(points[2], extra_b);
    }

    #[test]
    fn spec_with_only_explicit_points_expands_to_them() {
        let point = SweepPoint::new(vec![(Param::NCars, ParamValue::Int(4))]);
        let spec = SweepSpec::new(3).point(point.clone());
        assert_eq!(spec.expand(), vec![point]);
        assert!(!spec.is_empty());
        assert!(SweepSpec::new(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "already has an axis")]
    fn duplicate_axis_rejected() {
        let _ = SweepSpec::new(1).axis(Param::NCars, ints(&[1])).axis(Param::NCars, ints(&[2]));
    }

    #[test]
    fn shards_stride_the_expansion_and_cover_it_exactly() {
        let spec = SweepSpec::new(0xFEE7)
            .axis(Param::SpeedKmh, floats(&[10.0, 20.0]))
            .axis(Param::NCars, ints(&[2, 3, 4]))
            .point(SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Float(99.0))]));
        let points = spec.expand();
        assert_eq!(points.len(), 7);
        assert_eq!(spec.enumerate_points().len(), 7);
        assert_eq!(spec.enumerate_points()[6].0, 6);

        for count in 1..=9 {
            let shards: Vec<SweepSpec> = (0..count).map(|i| spec.shard(i, count)).collect();
            for shard in &shards {
                assert_eq!(shard.master_seed, spec.master_seed);
                assert!(shard.axes.is_empty(), "shards carry explicit points only");
            }
            // Interleaving the shards back together restores the expansion.
            let mut restored = vec![None; points.len()];
            for (index, shard) in shards.iter().enumerate() {
                for (offset, point) in shard.expand().into_iter().enumerate() {
                    restored[index + offset * count] = Some(point);
                }
            }
            let restored: Vec<SweepPoint> = restored.into_iter().map(Option::unwrap).collect();
            assert_eq!(restored, points, "{count} shard(s) must cover the expansion");
        }
        // More shards than points: the tail shards are empty, not an error.
        assert!(spec.shard(8, 9).is_empty());
        assert_eq!(spec.shard(0, 1).expand(), points);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_out_of_range_rejected() {
        let _ = SweepSpec::new(1).axis(Param::NCars, ints(&[1])).shard(2, 2);
    }
}
