//! The parallel sweep executor and its result type.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::RngCore as _;
use sim_core::StreamRng;
use vanet_scenarios::{run_rounds, ParamError, Scenario, ScenarioRun};
use vanet_stats::{CellValue, PointSummary, RecordTable};

use crate::spec::{SweepPoint, SweepSpec};

/// Derives the seed for point `index` of a sweep with `master_seed`.
///
/// The derivation goes through a dedicated [`StreamRng`] stream
/// (`"sweep.point"`) and its per-index substream, so:
///
/// * the seed depends **only** on `(master_seed, index)` — never on the
///   thread that happens to execute the point, which makes sweep results
///   byte-identical at any thread count;
/// * points of the same sweep get uncorrelated seeds (substream mixing);
/// * a sweep's seeds are uncorrelated with the per-round seeds the executor
///   derives from the point seed ([`vanet_scenarios::round_seed`]), because
///   the label namespaces differ. The full chain is
///   `(master seed, point index, round) → round seed`.
pub fn point_seed(master_seed: u64, index: usize) -> u64 {
    StreamRng::derive(master_seed, "sweep.point").substream(index as u64).next_u64()
}

/// Why a sweep could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec expanded to no points.
    EmptySweep,
    /// A point failed the scenario's schema validation.
    Param {
        /// Index of the offending point in the expansion.
        point: usize,
        /// The point's `key=value` label.
        label: String,
        /// The underlying schema error.
        source: ParamError,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptySweep => f.write_str("cannot run an empty sweep"),
            SweepError::Param { point, label, source } => {
                write!(f, "point {point} ({label}): {source}")
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Param { source, .. } => Some(source),
            SweepError::EmptySweep => None,
        }
    }
}

/// The work-sharing parallel sweep executor.
///
/// The engine parallelises at two levels from one thread budget. Workers
/// pull point indices from a shared queue (an atomic counter), so load
/// balances dynamically across points regardless of how uneven the
/// per-point cost is; when the sweep has fewer points than threads, the
/// leftover budget goes **inside** each point, running its rounds in
/// parallel waves (see [`vanet_scenarios::run_rounds`]). Results land in
/// their point's slot, so the output order is the spec's expansion order,
/// not completion order — and because every round's seed is a pure function
/// of `(master seed, point index, round)`, exports are byte-identical at
/// any thread count.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    threads: usize,
    allow_unknown: bool,
}

impl SweepEngine {
    /// Creates an engine running `threads` workers; `0` means one per
    /// available CPU.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        } else {
            threads
        };
        SweepEngine { threads, allow_unknown: false }
    }

    /// Silently drops sweep parameters the scenario's schema does not
    /// declare instead of failing validation — the escape hatch for driving
    /// scenarios that consume different subsets from one spec.
    #[must_use]
    pub fn with_allow_unknown(mut self, allow: bool) -> Self {
        self.allow_unknown = allow;
        self
    }

    /// The worker count this engine uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether unknown parameters are dropped instead of rejected.
    pub fn allow_unknown(&self) -> bool {
        self.allow_unknown
    }

    /// Runs every point of `spec` through `scenario` and collects the
    /// results in expansion order.
    ///
    /// Every point is validated against the scenario's schema (and
    /// configured) **before** anything runs, so a typo in one point fails
    /// the sweep fast instead of after hours of simulation.
    ///
    /// # Errors
    ///
    /// [`SweepError::EmptySweep`] when the spec has no points;
    /// [`SweepError::Param`] when a point fails schema validation.
    ///
    /// # Panics
    ///
    /// Panics if the scenario reports different metric names for different
    /// points (a scenario implementation bug).
    pub fn run(
        &self,
        scenario: &dyn Scenario,
        spec: &SweepSpec,
    ) -> Result<SweepResult, SweepError> {
        let points = spec.expand();
        if points.is_empty() {
            return Err(SweepError::EmptySweep);
        }
        let seeds: Vec<u64> = (0..points.len()).map(|i| point_seed(spec.master_seed, i)).collect();

        // Configure (and thereby validate) every point up front.
        let runs: Vec<Box<dyn ScenarioRun>> = points
            .iter()
            .enumerate()
            .map(|(index, point)| {
                let effective = if self.allow_unknown {
                    scenario.schema().strip_unknown(point)
                } else {
                    point.clone()
                };
                scenario.configure(&effective).map_err(|source| SweepError::Param {
                    point: index,
                    label: point.label(),
                    source,
                })
            })
            .collect::<Result<_, _>>()?;

        // Split the thread budget: as many point workers as there are
        // points to keep busy, the rest of the budget parallelising rounds
        // within each point. The ceiling division hands the remainder to
        // the round level (5 points on 8 threads → 2 round workers each,
        // briefly 10 live threads) rather than leaving it idle. The split
        // affects wall-clock only — never results.
        let outer = self.threads.min(points.len()).max(1);
        let inner = self.threads.div_ceil(outer);

        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<PointSummary>>> =
            points.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..outer {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(run) = runs.get(index) else { break };
                    let reports = run_rounds(run.as_ref(), seeds[index], inner);
                    let summary = run.aggregate(&reports);
                    *slots[index].lock().expect("sweep slot poisoned") = Some(summary);
                });
            }
        });

        let summaries: Vec<PointSummary> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("sweep slot poisoned").expect("every point was executed")
            })
            .collect();

        let reference = summaries[0].names();
        for (i, summary) in summaries.iter().enumerate() {
            assert_eq!(
                summary.names(),
                reference,
                "scenario reported inconsistent metrics at point {i}"
            );
        }

        Ok(SweepResult {
            scenario: scenario.name().to_string(),
            master_seed: spec.master_seed,
            threads: self.threads,
            elapsed: started.elapsed(),
            points,
            seeds,
            summaries,
        })
    }
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new(0)
    }
}

/// The outcome of a sweep: the expanded points, their derived seeds and
/// their metric rows, in expansion order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Name of the scenario that ran.
    pub scenario: String,
    /// The master seed the sweep ran with.
    pub master_seed: u64,
    /// Worker count used.
    pub threads: usize,
    /// Wall-clock time of the whole sweep.
    pub elapsed: Duration,
    /// The points, in expansion order.
    pub points: Vec<SweepPoint>,
    /// The per-point seeds, aligned with `points`.
    pub seeds: Vec<u64>,
    /// The per-point metric rows, aligned with `points`.
    pub summaries: Vec<PointSummary>,
}

impl SweepResult {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep had no points (never true for an executed sweep).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points executed per wall-clock second.
    pub fn points_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Converts the result into a [`RecordTable`]: one row per point with
    /// `scenario`, `point`, `seed`, one column per swept parameter, and one
    /// column per metric.
    ///
    /// Wall-clock data (`elapsed`, `threads`) deliberately stays out of the
    /// table so exports are reproducible byte for byte.
    pub fn to_table(&self) -> RecordTable {
        let mut columns: Vec<String> = vec!["scenario".into(), "point".into(), "seed".into()];
        // The union of parameters over all points, in first-seen order, so
        // explicit extra points that assign fewer parameters still align.
        let mut params: Vec<crate::Param> = Vec::new();
        for point in &self.points {
            for (param, _) in point.assignments() {
                if !params.contains(param) {
                    params.push(*param);
                }
            }
        }
        columns.extend(params.iter().map(|p| p.key().to_string()));
        columns.extend(
            self.summaries
                .first()
                .map(PointSummary::names)
                .unwrap_or_default()
                .iter()
                .map(|name| (*name).to_string()),
        );

        let mut table = RecordTable::new(columns);
        for (index, (point, summary)) in self.points.iter().zip(&self.summaries).enumerate() {
            // Seeds render as hex text: they can exceed `i64::MAX`, which
            // the integer cell type would saturate (and collide) at.
            let mut row: Vec<CellValue> = vec![
                self.scenario.as_str().into(),
                index.into(),
                format!("{:#018x}", self.seeds[index]).into(),
            ];
            for param in &params {
                row.push(match point.get(*param) {
                    Some(crate::ParamValue::Float(x)) => CellValue::Float(x),
                    Some(crate::ParamValue::Int(x)) => x.into(),
                    Some(value) => value.to_string().into(),
                    None => "".into(),
                });
            }
            for (_, value) in &summary.metrics {
                row.push(CellValue::Float(*value));
            }
            table.push_row(row);
        }
        table
    }

    /// Renders the result as CSV.
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// Renders the result as JSON.
    pub fn to_json(&self) -> String {
        self.to_table().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Param, ParamValue};
    use vanet_scenarios::{ParamSchema, ParamSpec};
    use vanet_stats::RoundReport;

    /// A cheap fake scenario: metrics are pure functions of the point and
    /// seed, with a per-point artificial imbalance in runtime.
    struct FakeScenario {
        schema: ParamSchema,
    }

    impl FakeScenario {
        fn new() -> Self {
            FakeScenario {
                schema: ParamSchema::new(
                    "fake",
                    vec![
                        ParamSpec::float(Param::SpeedKmh, "speed", 0.0, 0.0, 1_000.0),
                        ParamSpec::int(Param::NCars, "cars", 0, 0, 1_000),
                    ],
                ),
            }
        }
    }

    struct FakeRun {
        x: f64,
        n: u64,
    }

    impl Scenario for FakeScenario {
        fn name(&self) -> &'static str {
            "fake"
        }

        fn description(&self) -> &'static str {
            "fake"
        }

        fn schema(&self) -> &ParamSchema {
            &self.schema
        }

        fn configure(&self, point: &SweepPoint) -> Result<Box<dyn ScenarioRun>, ParamError> {
            self.schema.validate(point)?;
            Ok(Box::new(FakeRun {
                x: point.get(Param::SpeedKmh).and_then(|v| v.as_f64()).unwrap_or(0.0),
                n: point.get(Param::NCars).and_then(|v| v.as_u64()).unwrap_or(0),
            }))
        }
    }

    impl ScenarioRun for FakeRun {
        fn rounds(&self) -> u32 {
            2
        }

        fn run_round(&self, round: u32, seed: u64) -> RoundReport {
            // Uneven cost exercises the dynamic load balancing.
            std::thread::sleep(std::time::Duration::from_millis(self.n % 3));
            RoundReport::new(round, seed, vanet_stats::RoundResult::default())
                .with_counter("seed_low", (seed % 1000) as f64)
        }

        fn aggregate(&self, rounds: &[RoundReport]) -> PointSummary {
            PointSummary {
                metrics: vec![
                    ("x_plus_n", self.x + self.n as f64),
                    ("seed_low_sum", vanet_stats::counter_total(rounds, "seed_low")),
                ],
            }
        }
    }

    fn spec() -> SweepSpec {
        SweepSpec::new(0xABCD)
            .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0), ParamValue::Float(20.0)])
            .axis(Param::NCars, vec![ParamValue::Int(1), ParamValue::Int(2), ParamValue::Int(3)])
    }

    #[test]
    fn point_seeds_depend_only_on_master_seed_and_index() {
        assert_eq!(point_seed(1, 0), point_seed(1, 0));
        assert_ne!(point_seed(1, 0), point_seed(1, 1));
        assert_ne!(point_seed(1, 0), point_seed(2, 0));
    }

    #[test]
    fn engine_resolves_zero_threads_to_available_parallelism() {
        assert!(SweepEngine::new(0).threads() >= 1);
        assert_eq!(SweepEngine::new(3).threads(), 3);
        assert!(SweepEngine::default().threads() >= 1);
        assert!(!SweepEngine::new(1).allow_unknown());
        assert!(SweepEngine::new(1).with_allow_unknown(true).allow_unknown());
    }

    #[test]
    fn results_are_in_expansion_order_and_thread_count_independent() {
        let scenario = FakeScenario::new();
        let spec = spec();
        let serial = SweepEngine::new(1).run(&scenario, &spec).unwrap();
        let parallel = SweepEngine::new(4).run(&scenario, &spec).unwrap();
        let wide = SweepEngine::new(16).run(&scenario, &spec).unwrap();
        assert_eq!(serial.len(), 6);
        assert_eq!(serial.points, parallel.points);
        assert_eq!(serial.summaries, parallel.summaries);
        assert_eq!(serial.summaries, wide.summaries);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_csv(), wide.to_csv());
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn table_has_param_and_metric_columns() {
        let result = SweepEngine::new(2).run(&FakeScenario::new(), &spec()).unwrap();
        let table = result.to_table();
        assert_eq!(
            table.columns(),
            &["scenario", "point", "seed", "speed_kmh", "n_cars", "x_plus_n", "seed_low_sum"]
        );
        assert_eq!(table.rows().len(), 6);
        let csv = result.to_csv();
        assert!(csv.starts_with("scenario,point,seed,speed_kmh,n_cars,x_plus_n,seed_low_sum\n"));
        assert!(csv.contains("fake,0,0x"), "seeds export as hex text: {csv}");
        assert!(result.points_per_second() > 0.0);
        assert!(!result.is_empty());
        // Hex rendering is lossless, so per-point seeds stay distinct.
        let seed_cells: std::collections::BTreeSet<&str> =
            csv.lines().skip(1).map(|line| line.split(',').nth(2).unwrap()).collect();
        assert_eq!(seed_cells.len(), 6);
    }

    #[test]
    fn explicit_points_missing_a_param_export_empty_cells() {
        let spec = SweepSpec::new(9)
            .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0)])
            .axis(Param::NCars, vec![ParamValue::Int(2)])
            .point(SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Float(99.0))]));
        let result = SweepEngine::new(2).run(&FakeScenario::new(), &spec).unwrap();
        let csv = result.to_csv();
        let last_row = csv.lines().last().unwrap();
        assert!(last_row.starts_with("fake,1,"));
        assert!(
            last_row.contains(",99.000000,,"),
            "missing n_cars must export as empty: {last_row}"
        );
    }

    #[test]
    fn empty_spec_is_an_error() {
        let err = SweepEngine::new(1).run(&FakeScenario::new(), &SweepSpec::new(1)).unwrap_err();
        assert_eq!(err, SweepError::EmptySweep);
        assert!(err.to_string().contains("empty sweep"));
    }

    #[test]
    fn unknown_parameters_fail_validation_before_running() {
        let spec = SweepSpec::new(1)
            .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0)])
            .axis(Param::FileBlocks, vec![ParamValue::Int(100)]);
        let err = SweepEngine::new(1).run(&FakeScenario::new(), &spec).unwrap_err();
        match &err {
            SweepError::Param { point, label, source } => {
                assert_eq!(*point, 0);
                assert!(label.contains("file_blocks"), "{label}");
                assert!(matches!(source, ParamError::Unknown { .. }));
            }
            other => panic!("expected a param error, got {other:?}"),
        }
        assert!(err.to_string().contains("file_blocks"), "{err}");

        // The escape hatch drops the unknown axis and runs.
        let result =
            SweepEngine::new(1).with_allow_unknown(true).run(&FakeScenario::new(), &spec).unwrap();
        assert_eq!(result.len(), 1);
        // The dropped parameter still appears in the export (it was swept).
        assert!(result.to_csv().contains("file_blocks"));
    }

    /// A scenario whose metric names depend on the point — must be caught.
    struct InconsistentScenario {
        schema: ParamSchema,
    }

    struct InconsistentRun {
        n: u64,
    }

    impl Scenario for InconsistentScenario {
        fn name(&self) -> &'static str {
            "inconsistent"
        }

        fn description(&self) -> &'static str {
            "inconsistent"
        }

        fn schema(&self) -> &ParamSchema {
            &self.schema
        }

        fn configure(&self, point: &SweepPoint) -> Result<Box<dyn ScenarioRun>, ParamError> {
            Ok(Box::new(InconsistentRun {
                n: point.get(Param::NCars).and_then(|v| v.as_u64()).unwrap_or(0),
            }))
        }
    }

    impl ScenarioRun for InconsistentRun {
        fn rounds(&self) -> u32 {
            1
        }

        fn run_round(&self, round: u32, seed: u64) -> RoundReport {
            RoundReport::new(round, seed, vanet_stats::RoundResult::default())
        }

        fn aggregate(&self, _rounds: &[RoundReport]) -> PointSummary {
            PointSummary { metrics: vec![(if self.n == 1 { "a" } else { "b" }, 0.0)] }
        }
    }

    #[test]
    #[should_panic(expected = "inconsistent metrics")]
    fn inconsistent_metric_names_rejected() {
        let scenario = InconsistentScenario {
            schema: ParamSchema::new(
                "inconsistent",
                vec![ParamSpec::int(Param::NCars, "cars", 0, 0, 10)],
            ),
        };
        let spec =
            SweepSpec::new(1).axis(Param::NCars, vec![ParamValue::Int(1), ParamValue::Int(2)]);
        let _ = SweepEngine::new(1).run(&scenario, &spec);
    }
}
