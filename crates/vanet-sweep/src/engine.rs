//! The parallel sweep executor and its result type.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::RngCore as _;
use sim_core::StreamRng;
use vanet_stats::{CellValue, RecordTable};

use crate::experiment::{Experiment, PointSummary};
use crate::spec::{SweepPoint, SweepSpec};

/// Derives the seed for point `index` of a sweep with `master_seed`.
///
/// The derivation goes through a dedicated [`StreamRng`] stream
/// (`"sweep.point"`) and its per-index substream, so:
///
/// * the seed depends **only** on `(master_seed, index)` — never on the
///   thread that happens to execute the point, which makes sweep results
///   byte-identical at any thread count;
/// * points of the same sweep get uncorrelated seeds (substream mixing);
/// * a sweep's seeds are uncorrelated with the per-round streams the
///   scenarios themselves derive from the point seed, because the label
///   namespaces differ.
pub fn point_seed(master_seed: u64, index: usize) -> u64 {
    StreamRng::derive(master_seed, "sweep.point").substream(index as u64).next_u64()
}

/// The work-sharing parallel sweep executor.
///
/// Workers pull point indices from a shared queue (an atomic counter), so
/// load balances dynamically across threads regardless of how uneven the
/// per-point cost is; results land in their point's slot, so the output
/// order is the spec's expansion order, not completion order.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    threads: usize,
}

impl SweepEngine {
    /// Creates an engine running `threads` workers; `0` means one per
    /// available CPU.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        } else {
            threads
        };
        SweepEngine { threads }
    }

    /// The worker count this engine uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every point of `spec` through `experiment` and collects the
    /// results in expansion order.
    ///
    /// # Panics
    ///
    /// Panics if the spec is empty, or if the experiment reports different
    /// metric names for different points.
    pub fn run(&self, experiment: &dyn Experiment, spec: &SweepSpec) -> SweepResult {
        let points = spec.expand();
        assert!(!points.is_empty(), "cannot run an empty sweep");
        let seeds: Vec<u64> = (0..points.len()).map(|i| point_seed(spec.master_seed, i)).collect();

        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<PointSummary>>> =
            points.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(points.len()) {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(point) = points.get(index) else { break };
                    let summary = experiment.run_point(point, seeds[index]);
                    *slots[index].lock().expect("sweep slot poisoned") = Some(summary);
                });
            }
        });

        let summaries: Vec<PointSummary> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("sweep slot poisoned").expect("every point was executed")
            })
            .collect();

        let reference = summaries[0].names();
        for (i, summary) in summaries.iter().enumerate() {
            assert_eq!(
                summary.names(),
                reference,
                "experiment reported inconsistent metrics at point {i}"
            );
        }

        SweepResult {
            experiment: experiment.name().to_string(),
            master_seed: spec.master_seed,
            threads: self.threads,
            elapsed: started.elapsed(),
            points,
            seeds,
            summaries,
        }
    }
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new(0)
    }
}

/// The outcome of a sweep: the expanded points, their derived seeds and
/// their metric rows, in expansion order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Name of the experiment that ran.
    pub experiment: String,
    /// The master seed the sweep ran with.
    pub master_seed: u64,
    /// Worker count used.
    pub threads: usize,
    /// Wall-clock time of the whole sweep.
    pub elapsed: Duration,
    /// The points, in expansion order.
    pub points: Vec<SweepPoint>,
    /// The per-point seeds, aligned with `points`.
    pub seeds: Vec<u64>,
    /// The per-point metric rows, aligned with `points`.
    pub summaries: Vec<PointSummary>,
}

impl SweepResult {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep had no points (never true for an executed sweep).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points executed per wall-clock second.
    pub fn points_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Converts the result into a [`RecordTable`]: one row per point with
    /// `scenario`, `point`, `seed`, one column per swept parameter, and one
    /// column per metric.
    ///
    /// Wall-clock data (`elapsed`, `threads`) deliberately stays out of the
    /// table so exports are reproducible byte for byte.
    pub fn to_table(&self) -> RecordTable {
        let mut columns: Vec<String> = vec!["scenario".into(), "point".into(), "seed".into()];
        // The union of parameters over all points, in first-seen order, so
        // explicit extra points that assign fewer parameters still align.
        let mut params: Vec<crate::Param> = Vec::new();
        for point in &self.points {
            for (param, _) in point.assignments() {
                if !params.contains(param) {
                    params.push(*param);
                }
            }
        }
        columns.extend(params.iter().map(|p| p.key().to_string()));
        columns.extend(
            self.summaries
                .first()
                .map(PointSummary::names)
                .unwrap_or_default()
                .iter()
                .map(|name| (*name).to_string()),
        );

        let mut table = RecordTable::new(columns);
        for (index, (point, summary)) in self.points.iter().zip(&self.summaries).enumerate() {
            // Seeds render as hex text: they can exceed `i64::MAX`, which
            // the integer cell type would saturate (and collide) at.
            let mut row: Vec<CellValue> = vec![
                self.experiment.as_str().into(),
                index.into(),
                format!("{:#018x}", self.seeds[index]).into(),
            ];
            for param in &params {
                row.push(match point.get(*param) {
                    Some(crate::ParamValue::Float(x)) => CellValue::Float(x),
                    Some(crate::ParamValue::Int(x)) => x.into(),
                    Some(value) => value.to_string().into(),
                    None => "".into(),
                });
            }
            for (_, value) in &summary.metrics {
                row.push(CellValue::Float(*value));
            }
            table.push_row(row);
        }
        table
    }

    /// Renders the result as CSV.
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// Renders the result as JSON.
    pub fn to_json(&self) -> String {
        self.to_table().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Param, ParamValue};

    /// A cheap fake experiment: metrics are pure functions of the point and
    /// seed, with a per-point artificial imbalance in runtime.
    struct FakeExperiment;

    impl Experiment for FakeExperiment {
        fn name(&self) -> &'static str {
            "fake"
        }

        fn run_point(&self, point: &SweepPoint, seed: u64) -> PointSummary {
            let x = point.get(Param::SpeedKmh).and_then(|v| v.as_f64()).unwrap_or(0.0);
            let n = point.get(Param::NCars).and_then(|v| v.as_u64()).unwrap_or(0);
            // Uneven cost exercises the dynamic load balancing.
            std::thread::sleep(std::time::Duration::from_millis(n % 3));
            PointSummary {
                metrics: vec![("x_plus_n", x + n as f64), ("seed_low", (seed % 1000) as f64)],
            }
        }
    }

    fn spec() -> SweepSpec {
        SweepSpec::new(0xABCD)
            .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0), ParamValue::Float(20.0)])
            .axis(Param::NCars, vec![ParamValue::Int(1), ParamValue::Int(2), ParamValue::Int(3)])
    }

    #[test]
    fn point_seeds_depend_only_on_master_seed_and_index() {
        assert_eq!(point_seed(1, 0), point_seed(1, 0));
        assert_ne!(point_seed(1, 0), point_seed(1, 1));
        assert_ne!(point_seed(1, 0), point_seed(2, 0));
    }

    #[test]
    fn engine_resolves_zero_threads_to_available_parallelism() {
        assert!(SweepEngine::new(0).threads() >= 1);
        assert_eq!(SweepEngine::new(3).threads(), 3);
        assert!(SweepEngine::default().threads() >= 1);
    }

    #[test]
    fn results_are_in_expansion_order_and_thread_count_independent() {
        let spec = spec();
        let serial = SweepEngine::new(1).run(&FakeExperiment, &spec);
        let parallel = SweepEngine::new(4).run(&FakeExperiment, &spec);
        let wide = SweepEngine::new(16).run(&FakeExperiment, &spec);
        assert_eq!(serial.len(), 6);
        assert_eq!(serial.points, parallel.points);
        assert_eq!(serial.summaries, parallel.summaries);
        assert_eq!(serial.summaries, wide.summaries);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_csv(), wide.to_csv());
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn table_has_param_and_metric_columns() {
        let result = SweepEngine::new(2).run(&FakeExperiment, &spec());
        let table = result.to_table();
        assert_eq!(
            table.columns(),
            &["scenario", "point", "seed", "speed_kmh", "n_cars", "x_plus_n", "seed_low"]
        );
        assert_eq!(table.rows().len(), 6);
        let csv = result.to_csv();
        assert!(csv.starts_with("scenario,point,seed,speed_kmh,n_cars,x_plus_n,seed_low\n"));
        assert!(csv.contains("fake,0,0x"), "seeds export as hex text: {csv}");
        assert!(result.points_per_second() > 0.0);
        assert!(!result.is_empty());
        // Hex rendering is lossless, so per-point seeds stay distinct.
        let seed_cells: std::collections::BTreeSet<&str> =
            csv.lines().skip(1).map(|line| line.split(',').nth(2).unwrap()).collect();
        assert_eq!(seed_cells.len(), 6);
    }

    #[test]
    fn explicit_points_missing_a_param_export_empty_cells() {
        let spec = SweepSpec::new(9)
            .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0)])
            .axis(Param::NCars, vec![ParamValue::Int(2)])
            .point(SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Float(99.0))]));
        let result = SweepEngine::new(2).run(&FakeExperiment, &spec);
        let csv = result.to_csv();
        let last_row = csv.lines().last().unwrap();
        assert!(last_row.starts_with("fake,1,"));
        assert!(
            last_row.contains(",99.000000,,"),
            "missing n_cars must export as empty: {last_row}"
        );
    }

    #[test]
    #[should_panic(expected = "empty sweep")]
    fn empty_spec_rejected() {
        let _ = SweepEngine::new(1).run(&FakeExperiment, &SweepSpec::new(1));
    }

    /// An experiment whose metric names depend on the point — must be caught.
    struct InconsistentExperiment;

    impl Experiment for InconsistentExperiment {
        fn name(&self) -> &'static str {
            "inconsistent"
        }

        fn run_point(&self, point: &SweepPoint, _seed: u64) -> PointSummary {
            let n = point.get(Param::NCars).and_then(|v| v.as_u64()).unwrap_or(0);
            PointSummary { metrics: vec![(if n == 1 { "a" } else { "b" }, 0.0)] }
        }
    }

    #[test]
    #[should_panic(expected = "inconsistent metrics")]
    fn inconsistent_metric_names_rejected() {
        let spec =
            SweepSpec::new(1).axis(Param::NCars, vec![ParamValue::Int(1), ParamValue::Int(2)]);
        let _ = SweepEngine::new(1).run(&InconsistentExperiment, &spec);
    }
}
