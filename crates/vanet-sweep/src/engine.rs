//! The parallel sweep executor and its result type.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::RngCore as _;
use sim_core::StreamRng;
use vanet_cache::{CacheKey, SweepCache};
use vanet_scenarios::{round_seed, ParamError, Scenario, ScenarioRun};
use vanet_stats::{CellValue, PointSummary, RecordTable, RoundReport};

use crate::spec::{SweepPoint, SweepSpec};

/// Derives the seed of the sweep point whose canonical configuration is
/// `canonical_config` (see `ParamSchema::canonical_config`).
///
/// The seed is a pure function of `(master_seed, canonical configuration)` —
/// **not** of the point's position in the grid and not of the thread that
/// executes it. Content addressing is what makes sweeps resumable: widening
/// an axis, appending points, deleting half the spec or re-spelling a point
/// with its defaults written out leaves every unchanged configuration with
/// unchanged seeds, so its rounds reproduce exactly and the round cache
/// hits. Two points that resolve to the same canonical configuration (for
/// example a multi-AP download swept only over its round-neutral file size)
/// deliberately share their seeds — their per-round physics is identical.
///
/// The derivation goes through a dedicated [`StreamRng`] label namespace
/// (`"sweep.point/"`), so point seeds stay uncorrelated with the per-round
/// seeds derived from them ([`vanet_scenarios::round_seed`]). The full
/// chain is `(master seed, canonical config, round) → round seed`.
pub fn point_seed(master_seed: u64, canonical_config: &str) -> u64 {
    StreamRng::derive(master_seed, format!("sweep.point/{canonical_config}")).next_u64()
}

/// Why a sweep could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec expanded to no points.
    EmptySweep,
    /// A point failed the scenario's schema validation.
    Param {
        /// Index of the offending point in the expansion.
        point: usize,
        /// The point's `key=value` label.
        label: String,
        /// The underlying schema error (which names the scenario).
        source: ParamError,
    },
    /// The round cache failed while the sweep ran (write-back I/O error).
    Cache {
        /// The scenario whose sweep hit the failure.
        scenario: String,
        /// The rendered cache error, including the journal path.
        message: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptySweep => f.write_str("cannot run an empty sweep"),
            SweepError::Param { point, label, source } => {
                write!(f, "point {point} ({label}): {source}")
            }
            SweepError::Cache { scenario, message } => {
                write!(f, "scenario `{scenario}`: {message}")
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Param { source, .. } => Some(source),
            SweepError::EmptySweep | SweepError::Cache { .. } => None,
        }
    }
}

/// The validated, seeded expansion of a sweep spec against a scenario:
/// every point with its canonical configuration, content-addressed seed and
/// configured run, in expansion order.
///
/// This is the addressing layer the executor runs on, split out so other
/// consumers — the trace-driven analysis engine in `vanet-analysis`, most
/// importantly — can walk the *same* `(point, canonical, seed, run)` tuples
/// the sweep would, and therefore share its cache keys and reproduce its
/// rounds bit for bit.
pub struct SweepPlan {
    /// The expanded points, in expansion order.
    pub points: Vec<SweepPoint>,
    /// Each point's canonical configuration string (see
    /// `ParamSchema::canonical_config`), aligned with `points`.
    pub canonicals: Vec<String>,
    /// Each point's content-addressed seed (see [`point_seed`]), aligned
    /// with `points`.
    pub seeds: Vec<u64>,
    /// Each point's configured (and thereby validated) run, aligned with
    /// `points`.
    pub runs: Vec<Box<dyn ScenarioRun>>,
    /// The scenario schema fingerprint that cache keys embed.
    pub fingerprint: u64,
}

impl fmt::Debug for SweepPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepPlan")
            .field("points", &self.points)
            .field("canonicals", &self.canonicals)
            .field("seeds", &self.seeds)
            .field("runs", &format_args!("<{} configured run(s)>", self.runs.len()))
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

impl SweepPlan {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan has no points (never true — planning an empty spec
    /// errors instead).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cache key addressing round `round` of point `index`, identical
    /// to the key the sweep executor would use for that round.
    pub fn cache_key(&self, scenario: &str, index: usize, round: u32, round_seed: u64) -> CacheKey {
        CacheKey::new(scenario, self.fingerprint, &self.canonicals[index], round, round_seed)
    }
}

/// Expands, validates and seeds `spec` against `scenario` without running
/// anything — the shared front half of [`SweepEngine::run`].
///
/// # Errors
///
/// [`SweepError::EmptySweep`] when the spec has no points;
/// [`SweepError::Param`] when a point fails schema validation.
pub fn plan(
    scenario: &dyn Scenario,
    spec: &SweepSpec,
    allow_unknown: bool,
) -> Result<SweepPlan, SweepError> {
    let points = spec.expand();
    if points.is_empty() {
        return Err(SweepError::EmptySweep);
    }
    // Content-addressed seeds: a point's seed follows its canonical
    // configuration, not its grid position, so spec edits never invalidate
    // unchanged points (see `point_seed`).
    let schema = scenario.schema();
    let fingerprint = schema.fingerprint();
    let canonicals: Vec<String> =
        points.iter().map(|point| schema.canonical_config(point)).collect();
    let seeds: Vec<u64> =
        canonicals.iter().map(|canon| point_seed(spec.master_seed, canon)).collect();

    // Configure (and thereby validate) every point up front.
    let runs: Vec<Box<dyn ScenarioRun>> = points
        .iter()
        .enumerate()
        .map(|(index, point)| {
            let effective = if allow_unknown { schema.strip_unknown(point) } else { point.clone() };
            scenario.configure(&effective).map_err(|source| SweepError::Param {
                point: index,
                label: point.label(),
                source,
            })
        })
        .collect::<Result<_, _>>()?;

    Ok(SweepPlan { points, canonicals, seeds, runs, fingerprint })
}

/// The work-sharing parallel sweep executor.
///
/// The engine parallelises at two levels from one thread budget. Workers
/// pull point indices from a shared queue (an atomic counter), so load
/// balances dynamically across points regardless of how uneven the
/// per-point cost is; when the sweep has fewer points than threads, the
/// leftover budget goes **inside** each point, running its rounds in
/// parallel waves (see [`vanet_scenarios::run_rounds`]). Results land in
/// their point's slot, so the output order is the spec's expansion order,
/// not completion order — and because every round's seed is a pure function
/// of `(master seed, point index, round)`, exports are byte-identical at
/// any thread count.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    threads: usize,
    allow_unknown: bool,
    cache: Option<Arc<SweepCache>>,
}

impl SweepEngine {
    /// Creates an engine running `threads` workers; `0` means one per
    /// available CPU.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        } else {
            threads
        };
        SweepEngine { threads, allow_unknown: false, cache: None }
    }

    /// Silently drops sweep parameters the scenario's schema does not
    /// declare instead of failing validation — the escape hatch for driving
    /// scenarios that consume different subsets from one spec.
    #[must_use]
    pub fn with_allow_unknown(mut self, allow: bool) -> Self {
        self.allow_unknown = allow;
        self
    }

    /// Attaches a persistent round cache. Before each round wave the engine
    /// partitions the wave into cached-vs-missing, simulates only the
    /// missing rounds, and writes the fresh reports back wave by wave — so
    /// re-running an identical spec simulates nothing, a widened grid or
    /// raised round budget simulates only the delta, and a killed sweep
    /// resumes, losing at most one in-flight wave per point. Exports
    /// are byte-identical with and without the cache, at any thread count.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<SweepCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The worker count this engine uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether unknown parameters are dropped instead of rejected.
    pub fn allow_unknown(&self) -> bool {
        self.allow_unknown
    }

    /// The attached round cache, if any.
    pub fn cache(&self) -> Option<&SweepCache> {
        self.cache.as_deref()
    }

    /// Runs every point of `spec` through `scenario` and collects the
    /// results in expansion order.
    ///
    /// Every point is validated against the scenario's schema (and
    /// configured) **before** anything runs, so a typo in one point fails
    /// the sweep fast instead of after hours of simulation.
    ///
    /// # Errors
    ///
    /// [`SweepError::EmptySweep`] when the spec has no points;
    /// [`SweepError::Param`] when a point fails schema validation;
    /// [`SweepError::Cache`] when an attached cache fails to persist
    /// results.
    ///
    /// # Panics
    ///
    /// Panics if the scenario reports different metric names for different
    /// points (a scenario implementation bug).
    pub fn run(
        &self,
        scenario: &dyn Scenario,
        spec: &SweepSpec,
    ) -> Result<SweepResult, SweepError> {
        let SweepPlan { points, canonicals, seeds, runs, fingerprint } =
            plan(scenario, spec, self.allow_unknown)?;

        // Split the thread budget: as many point workers as there are
        // points to keep busy, the rest of the budget parallelising rounds
        // within each point. The ceiling division hands the remainder to
        // the round level (5 points on 8 threads → 2 round workers each,
        // briefly 10 live threads) rather than leaving it idle. The split
        // affects wall-clock only — never results.
        let outer = self.threads.min(points.len()).max(1);
        let inner = self.threads.div_ceil(outer);

        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let simulated_total = AtomicUsize::new(0);
        let cached_total = AtomicUsize::new(0);
        let cache_failure: Mutex<Option<String>> = Mutex::new(None);
        let slots: Vec<Mutex<Option<PointSummary>>> =
            points.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..outer {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(run) = runs.get(index) else { break };
                    let outcome = match &self.cache {
                        // One executor for both paths: the uncached run is a
                        // cached run whose lookups always miss, so the two
                        // cannot drift apart and exports are byte-identical
                        // by construction.
                        None => run_rounds_cached(
                            run.as_ref(),
                            seeds[index],
                            inner,
                            &|_, _| None,
                            &mut |_, _| Ok(()),
                        ),
                        Some(cache) => {
                            let key = |round: u32, round_seed: u64| {
                                CacheKey::new(
                                    scenario.name(),
                                    fingerprint,
                                    &canonicals[index],
                                    round,
                                    round_seed,
                                )
                            };
                            run_rounds_cached(
                                run.as_ref(),
                                seeds[index],
                                inner,
                                &|round, seed| cache.get(&key(round, seed)),
                                // Fresh reports persist wave by wave, so a
                                // kill mid-point loses at most one wave.
                                // Results stand either way; a failed append
                                // must still surface (a "resumable" sweep
                                // that silently persisted nothing is worse
                                // than an error).
                                &mut |round, report| {
                                    cache
                                        .put(&key(round, report.seed), report)
                                        .map(|_| ())
                                        .map_err(|e| e.to_string())
                                },
                            )
                        }
                    };
                    let (reports, fresh) = match outcome {
                        Ok(outcome) => outcome,
                        Err(message) => {
                            let mut failure =
                                cache_failure.lock().expect("cache failure slot poisoned");
                            failure.get_or_insert(message);
                            break;
                        }
                    };
                    simulated_total.fetch_add(fresh, Ordering::Relaxed);
                    cached_total.fetch_add(reports.len() - fresh, Ordering::Relaxed);
                    let summary = run.aggregate(&reports);
                    *slots[index].lock().expect("sweep slot poisoned") = Some(summary);
                });
            }
        });

        if let Some(message) = cache_failure.into_inner().expect("cache failure slot poisoned") {
            return Err(SweepError::Cache { scenario: scenario.name().to_string(), message });
        }

        let summaries: Vec<PointSummary> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("sweep slot poisoned").expect("every point was executed")
            })
            .collect();

        let reference = summaries[0].names();
        for (i, summary) in summaries.iter().enumerate() {
            assert_eq!(
                summary.names(),
                reference,
                "scenario reported inconsistent metrics at point {i}"
            );
        }

        Ok(SweepResult {
            scenario: scenario.name().to_string(),
            master_seed: spec.master_seed,
            threads: self.threads,
            elapsed: started.elapsed(),
            rounds_simulated: simulated_total.into_inner(),
            rounds_cached: cached_total.into_inner(),
            points,
            seeds,
            summaries,
        })
    }
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new(0)
    }
}

/// The engine's round executor, mirroring [`vanet_scenarios::run_rounds`]'s
/// wave structure and settle checks: each wave is first partitioned through
/// `lookup`, only the missing rounds simulate (in parallel when several
/// miss), and every fresh report is handed to `store` before the next wave
/// starts — so a killed sweep loses at most one wave of work per in-flight
/// point. Returns the reports in round order plus the count of rounds that
/// were actually simulated, or the first `store` error.
///
/// Cached rounds cost no simulation, so the executor first drains the
/// cached prefix one round at a time with a settle check between rounds.
/// A settle-capable run served entirely from cache (a fleet's final pass
/// over covered units, say) therefore stops *exactly* at its settle point
/// instead of overshooting by up to a wave of cached reports; only once a
/// round misses does the wave machinery — and its coarser between-wave
/// settle granularity, the price of parallelism — take over.
///
/// The engine runs its cache-less sweeps through this same function with an
/// always-miss `lookup` (every round simulates, `store` is a no-op), which
/// is what makes "exports are byte-identical with and without the cache"
/// true by construction: because a cached report is — by the purity
/// contract and the cache key — identical to what re-simulation would
/// produce, hit/miss partitioning cannot change the report sequence.
fn run_rounds_cached(
    run: &dyn ScenarioRun,
    base_seed: u64,
    threads: usize,
    lookup: &(dyn Fn(u32, u64) -> Option<RoundReport> + Sync),
    store: &mut dyn FnMut(u32, &RoundReport) -> Result<(), String>,
) -> Result<(Vec<RoundReport>, usize), String> {
    let total = run.rounds();
    let threads = threads.max(1) as u32;
    let mut reports: Vec<RoundReport> = Vec::with_capacity(total as usize);
    let mut fresh = 0usize;
    let mut next = 0u32;
    // Serve the cached prefix round by round so settle checks run at the
    // finest possible granularity while no simulation is pending.
    while next < total {
        if !reports.is_empty() && run.is_settled(&reports) {
            return Ok((reports, fresh));
        }
        match lookup(next, round_seed(base_seed, next)) {
            Some(report) => {
                reports.push(report);
                next += 1;
                vanet_faults::round_done();
            }
            None => break,
        }
    }
    while next < total {
        if !reports.is_empty() && run.is_settled(&reports) {
            break;
        }
        let end = next.saturating_add(threads).min(total);
        let mut wave: Vec<Option<RoundReport>> =
            (next..end).map(|round| lookup(round, round_seed(base_seed, round))).collect();
        let missing: Vec<u32> =
            (next..end).filter(|round| wave[(round - next) as usize].is_none()).collect();
        if missing.len() == 1 {
            let round = missing[0];
            vanet_faults::round_start();
            wave[(round - next) as usize] =
                Some(run.run_round(round, round_seed(base_seed, round)));
            vanet_faults::round_done();
        } else if !missing.is_empty() {
            let simulated: Vec<(u32, RoundReport)> = std::thread::scope(|scope| {
                let handles: Vec<_> = missing
                    .iter()
                    .map(|&round| {
                        scope.spawn(move || {
                            vanet_faults::round_start();
                            let report = run.run_round(round, round_seed(base_seed, round));
                            vanet_faults::round_done();
                            (round, report)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("round worker panicked")).collect()
            });
            for (round, report) in simulated {
                wave[(round - next) as usize] = Some(report);
            }
        }
        fresh += missing.len();
        reports.extend(wave.into_iter().map(|slot| slot.expect("wave fully resolved")));
        for round in missing {
            store(round, &reports[round as usize])?;
        }
        next = end;
    }
    Ok((reports, fresh))
}

/// The outcome of a sweep: the expanded points, their derived seeds and
/// their metric rows, in expansion order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Name of the scenario that ran.
    pub scenario: String,
    /// The master seed the sweep ran with.
    pub master_seed: u64,
    /// Worker count used.
    pub threads: usize,
    /// Wall-clock time of the whole sweep.
    pub elapsed: Duration,
    /// Rounds that were actually simulated (i.e. `run_round` calls made).
    /// A re-run of an identical spec against a warm cache reports 0 here.
    pub rounds_simulated: usize,
    /// Rounds served from the attached cache (always 0 without one).
    ///
    /// Like `elapsed` and `threads`, these two are provenance, not results:
    /// they depend on cache state and deliberately stay out of
    /// [`SweepResult::to_table`] so exports are reproducible byte for byte.
    pub rounds_cached: usize,
    /// The points, in expansion order.
    pub points: Vec<SweepPoint>,
    /// The per-point seeds, aligned with `points`.
    pub seeds: Vec<u64>,
    /// The per-point metric rows, aligned with `points`.
    pub summaries: Vec<PointSummary>,
}

impl SweepResult {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep had no points (never true for an executed sweep).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points executed per wall-clock second.
    pub fn points_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Converts the result into a [`RecordTable`]: one row per point with
    /// `scenario`, `point`, `seed`, one column per swept parameter, and one
    /// column per metric.
    ///
    /// Wall-clock data (`elapsed`, `threads`) deliberately stays out of the
    /// table so exports are reproducible byte for byte.
    pub fn to_table(&self) -> RecordTable {
        let mut columns: Vec<String> = vec!["scenario".into(), "point".into(), "seed".into()];
        // The union of parameters over all points, in first-seen order, so
        // explicit extra points that assign fewer parameters still align.
        let mut params: Vec<crate::Param> = Vec::new();
        for point in &self.points {
            for (param, _) in point.assignments() {
                if !params.contains(param) {
                    params.push(*param);
                }
            }
        }
        columns.extend(params.iter().map(|p| p.key().to_string()));
        columns.extend(
            self.summaries
                .first()
                .map(PointSummary::names)
                .unwrap_or_default()
                .iter()
                .map(|name| (*name).to_string()),
        );

        let mut table = RecordTable::new(columns);
        for (index, (point, summary)) in self.points.iter().zip(&self.summaries).enumerate() {
            // Seeds render as hex text: they can exceed `i64::MAX`, which
            // the integer cell type would saturate (and collide) at.
            let mut row: Vec<CellValue> = vec![
                self.scenario.as_str().into(),
                index.into(),
                format!("{:#018x}", self.seeds[index]).into(),
            ];
            for param in &params {
                row.push(match point.get(*param) {
                    Some(crate::ParamValue::Float(x)) => CellValue::Float(x),
                    Some(crate::ParamValue::Int(x)) => x.into(),
                    Some(value) => value.to_string().into(),
                    None => "".into(),
                });
            }
            for (_, value) in &summary.metrics {
                row.push(CellValue::Float(*value));
            }
            table.push_row(row);
        }
        table
    }

    /// Renders the result as CSV.
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// Renders the result as JSON.
    pub fn to_json(&self) -> String {
        self.to_table().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Param, ParamValue};
    use vanet_scenarios::{ParamSchema, ParamSpec};
    use vanet_stats::RoundReport;

    /// A cheap fake scenario: metrics are pure functions of the point and
    /// seed, with a per-point artificial imbalance in runtime.
    struct FakeScenario {
        schema: ParamSchema,
    }

    impl FakeScenario {
        fn new() -> Self {
            FakeScenario {
                schema: ParamSchema::new(
                    "fake",
                    vec![
                        ParamSpec::float(Param::SpeedKmh, "speed", 0.0, 0.0, 1_000.0),
                        ParamSpec::int(Param::NCars, "cars", 0, 0, 1_000),
                    ],
                ),
            }
        }
    }

    struct FakeRun {
        x: f64,
        n: u64,
    }

    impl Scenario for FakeScenario {
        fn name(&self) -> &'static str {
            "fake"
        }

        fn description(&self) -> &'static str {
            "fake"
        }

        fn schema(&self) -> &ParamSchema {
            &self.schema
        }

        fn configure(&self, point: &SweepPoint) -> Result<Box<dyn ScenarioRun>, ParamError> {
            self.schema.validate(point)?;
            Ok(Box::new(FakeRun {
                x: point.get(Param::SpeedKmh).and_then(|v| v.as_f64()).unwrap_or(0.0),
                n: point.get(Param::NCars).and_then(|v| v.as_u64()).unwrap_or(0),
            }))
        }
    }

    impl ScenarioRun for FakeRun {
        fn rounds(&self) -> u32 {
            2
        }

        fn run_round(&self, round: u32, seed: u64) -> RoundReport {
            // Uneven cost exercises the dynamic load balancing.
            std::thread::sleep(std::time::Duration::from_millis(self.n % 3));
            RoundReport::new(round, seed, vanet_stats::RoundResult::default())
                .with_counter("seed_low", (seed % 1000) as f64)
        }

        fn aggregate(&self, rounds: &[RoundReport]) -> PointSummary {
            PointSummary {
                metrics: vec![
                    ("x_plus_n", self.x + self.n as f64),
                    ("seed_low_sum", vanet_stats::counter_total(rounds, "seed_low")),
                ],
            }
        }
    }

    fn spec() -> SweepSpec {
        SweepSpec::new(0xABCD)
            .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0), ParamValue::Float(20.0)])
            .axis(Param::NCars, vec![ParamValue::Int(1), ParamValue::Int(2), ParamValue::Int(3)])
    }

    #[test]
    fn point_seeds_depend_only_on_master_seed_and_canonical_config() {
        let canon_a = "scenario=fake;speed_kmh=f4024000000000000";
        let canon_b = "scenario=fake;speed_kmh=f4034000000000000";
        assert_eq!(point_seed(1, canon_a), point_seed(1, canon_a));
        assert_ne!(point_seed(1, canon_a), point_seed(1, canon_b));
        assert_ne!(point_seed(1, canon_a), point_seed(2, canon_a));
    }

    #[test]
    fn equal_configs_share_seeds_across_grid_positions() {
        // The same configuration at a different position in a different
        // spec keeps its seed — the property that makes widened and
        // reordered grids resumable.
        let scenario = FakeScenario::new();
        let narrow = SweepSpec::new(5)
            .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0), ParamValue::Float(20.0)])
            .axis(Param::NCars, vec![ParamValue::Int(1)]);
        let widened = SweepSpec::new(5)
            .axis(
                Param::SpeedKmh,
                vec![ParamValue::Float(5.0), ParamValue::Float(10.0), ParamValue::Float(20.0)],
            )
            .axis(Param::NCars, vec![ParamValue::Int(1), ParamValue::Int(2)]);
        let a = SweepEngine::new(2).run(&scenario, &narrow).unwrap();
        let b = SweepEngine::new(2).run(&scenario, &widened).unwrap();
        for (i, point) in a.points.iter().enumerate() {
            let pos = b.points.iter().position(|p| p == point).expect("widened keeps the point");
            assert_eq!(b.seeds[pos], a.seeds[i], "seed moved for {}", point.label());
            assert_eq!(b.summaries[pos], a.summaries[i], "results moved for {}", point.label());
        }
    }

    #[test]
    fn engine_resolves_zero_threads_to_available_parallelism() {
        assert!(SweepEngine::new(0).threads() >= 1);
        assert_eq!(SweepEngine::new(3).threads(), 3);
        assert!(SweepEngine::default().threads() >= 1);
        assert!(!SweepEngine::new(1).allow_unknown());
        assert!(SweepEngine::new(1).with_allow_unknown(true).allow_unknown());
    }

    #[test]
    fn results_are_in_expansion_order_and_thread_count_independent() {
        let scenario = FakeScenario::new();
        let spec = spec();
        let serial = SweepEngine::new(1).run(&scenario, &spec).unwrap();
        let parallel = SweepEngine::new(4).run(&scenario, &spec).unwrap();
        let wide = SweepEngine::new(16).run(&scenario, &spec).unwrap();
        assert_eq!(serial.len(), 6);
        assert_eq!(serial.points, parallel.points);
        assert_eq!(serial.summaries, parallel.summaries);
        assert_eq!(serial.summaries, wide.summaries);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_csv(), wide.to_csv());
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn table_has_param_and_metric_columns() {
        let result = SweepEngine::new(2).run(&FakeScenario::new(), &spec()).unwrap();
        let table = result.to_table();
        assert_eq!(
            table.columns(),
            &["scenario", "point", "seed", "speed_kmh", "n_cars", "x_plus_n", "seed_low_sum"]
        );
        assert_eq!(table.rows().len(), 6);
        let csv = result.to_csv();
        assert!(csv.starts_with("scenario,point,seed,speed_kmh,n_cars,x_plus_n,seed_low_sum\n"));
        assert!(csv.contains("fake,0,0x"), "seeds export as hex text: {csv}");
        assert!(result.points_per_second() > 0.0);
        assert!(!result.is_empty());
        // Hex rendering is lossless, so per-point seeds stay distinct.
        let seed_cells: std::collections::BTreeSet<&str> =
            csv.lines().skip(1).map(|line| line.split(',').nth(2).unwrap()).collect();
        assert_eq!(seed_cells.len(), 6);
    }

    #[test]
    fn explicit_points_missing_a_param_export_empty_cells() {
        let spec = SweepSpec::new(9)
            .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0)])
            .axis(Param::NCars, vec![ParamValue::Int(2)])
            .point(SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Float(99.0))]));
        let result = SweepEngine::new(2).run(&FakeScenario::new(), &spec).unwrap();
        let csv = result.to_csv();
        let last_row = csv.lines().last().unwrap();
        assert!(last_row.starts_with("fake,1,"));
        assert!(
            last_row.contains(",99.000000,,"),
            "missing n_cars must export as empty: {last_row}"
        );
    }

    fn temp_cache(tag: &str) -> (std::path::PathBuf, Arc<SweepCache>) {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vanet-sweep-cache-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cache = Arc::new(SweepCache::open(&dir).expect("cache opens"));
        (dir, cache)
    }

    #[test]
    fn warm_cache_re_run_simulates_nothing() {
        let scenario = FakeScenario::new();
        let spec = spec();
        let reference = SweepEngine::new(2).run(&scenario, &spec).unwrap();
        assert_eq!(reference.rounds_simulated, 12, "6 points x 2 rounds, no cache");
        assert_eq!(reference.rounds_cached, 0);

        let (dir, cache) = temp_cache("warm");
        let cold = SweepEngine::new(2).with_cache(cache.clone()).run(&scenario, &spec).unwrap();
        assert_eq!(cold.rounds_simulated, 12);
        assert_eq!(cold.rounds_cached, 0);
        assert_eq!(cold.to_csv(), reference.to_csv(), "cold cache must not change exports");
        assert_eq!(cache.len(), 12);

        // The acceptance bar: a second identical run makes zero run_round
        // calls, with byte-identical exports — at 1 and 8 threads.
        for threads in [1, 2, 8] {
            let warm =
                SweepEngine::new(threads).with_cache(cache.clone()).run(&scenario, &spec).unwrap();
            assert_eq!(warm.rounds_simulated, 0, "warm run at {threads} threads simulated");
            assert_eq!(warm.rounds_cached, 12);
            assert_eq!(warm.to_csv(), reference.to_csv());
            assert_eq!(warm.to_json(), reference.to_json());
        }

        // A reopened cache (fresh process) serves the same entries.
        drop(cache);
        let reopened = Arc::new(SweepCache::open(&dir).unwrap());
        let resumed = SweepEngine::new(4).with_cache(reopened).run(&scenario, &spec).unwrap();
        assert_eq!(resumed.rounds_simulated, 0);
        assert_eq!(resumed.to_csv(), reference.to_csv());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn widened_grid_simulates_only_the_delta() {
        let scenario = FakeScenario::new();
        let (dir, cache) = temp_cache("widen");
        let narrow = spec();
        SweepEngine::new(2).with_cache(cache.clone()).run(&scenario, &narrow).unwrap();

        // Widen the speed axis: 3 new points (x 2 rounds) on top of the 6.
        let widened = SweepSpec::new(0xABCD)
            .axis(
                Param::SpeedKmh,
                vec![ParamValue::Float(10.0), ParamValue::Float(20.0), ParamValue::Float(30.0)],
            )
            .axis(Param::NCars, vec![ParamValue::Int(1), ParamValue::Int(2), ParamValue::Int(3)]);
        let delta = SweepEngine::new(2).with_cache(cache.clone()).run(&scenario, &widened).unwrap();
        assert_eq!(delta.rounds_simulated, 6, "only the 3 new points simulate");
        assert_eq!(delta.rounds_cached, 12);
        let uncached = SweepEngine::new(1).run(&scenario, &widened).unwrap();
        assert_eq!(delta.to_csv(), uncached.to_csv(), "resumed export equals a fresh one");

        // Deleting points and re-running what remains is all hits too.
        let shrunk = SweepSpec::new(0xABCD)
            .axis(Param::SpeedKmh, vec![ParamValue::Float(30.0)])
            .axis(Param::NCars, vec![ParamValue::Int(3), ParamValue::Int(1)]);
        let shrunk_run =
            SweepEngine::new(2).with_cache(cache.clone()).run(&scenario, &shrunk).unwrap();
        assert_eq!(shrunk_run.rounds_simulated, 0, "reordered survivors still hit");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn half_populated_cache_fills_in_and_exports_identically() {
        let scenario = FakeScenario::new();
        let spec = spec();
        let reference = SweepEngine::new(1).run(&scenario, &spec).unwrap();

        let (dir, cache) = temp_cache("half");
        SweepEngine::new(2).with_cache(cache.clone()).run(&scenario, &spec).unwrap();
        // Evict every other entry from the in-memory index.
        let evicted: Vec<_> = cache.keys().into_iter().step_by(2).collect();
        for key in &evicted {
            assert!(cache.forget(key));
        }
        let patched = SweepEngine::new(4).with_cache(cache.clone()).run(&scenario, &spec).unwrap();
        assert_eq!(patched.rounds_simulated, evicted.len());
        assert_eq!(patched.rounds_cached, 12 - evicted.len());
        assert_eq!(patched.to_csv(), reference.to_csv());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strategy_compare_preset_warm_run_simulates_nothing() {
        // Cache-identity regression for the `strategy` parameter, end to
        // end through the real preset: every strategy point lands in its
        // own cache entry (same config, different strategy, different key),
        // and a warm re-run of the whole strategy-compare grid is served
        // entirely from the cache — zero rounds simulated for any strategy.
        let (scenario, spec) = crate::presets::find("strategy-compare").unwrap().build(7, 1);
        let points = spec.len();
        let (dir, cache) = temp_cache("strategy");
        let cold =
            SweepEngine::new(2).with_cache(cache.clone()).run(scenario.as_ref(), &spec).unwrap();
        assert_eq!(cold.rounds_simulated, points, "cold run simulates every strategy point");
        assert_eq!(cold.rounds_cached, 0);
        assert_eq!(
            cache.len(),
            points,
            "each strategy x platoon point must own a distinct cache entry"
        );
        let warm =
            SweepEngine::new(2).with_cache(cache.clone()).run(scenario.as_ref(), &spec).unwrap();
        assert_eq!(warm.rounds_simulated, 0, "no strategy re-simulates on a warm cache");
        assert_eq!(warm.rounds_cached, points);
        assert_eq!(warm.to_csv(), cold.to_csv());
        assert_eq!(warm.to_json(), cold.to_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_spec_is_an_error() {
        let err = SweepEngine::new(1).run(&FakeScenario::new(), &SweepSpec::new(1)).unwrap_err();
        assert_eq!(err, SweepError::EmptySweep);
        assert!(err.to_string().contains("empty sweep"));
    }

    #[test]
    fn unknown_parameters_fail_validation_before_running() {
        let spec = SweepSpec::new(1)
            .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0)])
            .axis(Param::FileBlocks, vec![ParamValue::Int(100)]);
        let err = SweepEngine::new(1).run(&FakeScenario::new(), &spec).unwrap_err();
        match &err {
            SweepError::Param { point, label, source } => {
                assert_eq!(*point, 0);
                assert!(label.contains("file_blocks"), "{label}");
                assert!(matches!(source, ParamError::Unknown { .. }));
            }
            other => panic!("expected a param error, got {other:?}"),
        }
        assert!(err.to_string().contains("file_blocks"), "{err}");

        // The escape hatch drops the unknown axis and runs.
        let result =
            SweepEngine::new(1).with_allow_unknown(true).run(&FakeScenario::new(), &spec).unwrap();
        assert_eq!(result.len(), 1);
        // The dropped parameter still appears in the export (it was swept).
        assert!(result.to_csv().contains("file_blocks"));
    }

    /// A scenario whose metric names depend on the point — must be caught.
    struct InconsistentScenario {
        schema: ParamSchema,
    }

    struct InconsistentRun {
        n: u64,
    }

    impl Scenario for InconsistentScenario {
        fn name(&self) -> &'static str {
            "inconsistent"
        }

        fn description(&self) -> &'static str {
            "inconsistent"
        }

        fn schema(&self) -> &ParamSchema {
            &self.schema
        }

        fn configure(&self, point: &SweepPoint) -> Result<Box<dyn ScenarioRun>, ParamError> {
            Ok(Box::new(InconsistentRun {
                n: point.get(Param::NCars).and_then(|v| v.as_u64()).unwrap_or(0),
            }))
        }
    }

    impl ScenarioRun for InconsistentRun {
        fn rounds(&self) -> u32 {
            1
        }

        fn run_round(&self, round: u32, seed: u64) -> RoundReport {
            RoundReport::new(round, seed, vanet_stats::RoundResult::default())
        }

        fn aggregate(&self, _rounds: &[RoundReport]) -> PointSummary {
            PointSummary { metrics: vec![(if self.n == 1 { "a" } else { "b" }, 0.0)] }
        }
    }

    /// A settle-capable run: done once three reports are in.
    struct SettlingRun {
        simulated: AtomicUsize,
    }

    impl ScenarioRun for SettlingRun {
        fn rounds(&self) -> u32 {
            40
        }

        fn run_round(&self, round: u32, seed: u64) -> RoundReport {
            self.simulated.fetch_add(1, Ordering::Relaxed);
            RoundReport::new(round, seed, vanet_stats::RoundResult::default())
                .with_counter("value", 1.0)
        }

        fn aggregate(&self, rounds: &[RoundReport]) -> PointSummary {
            let total: f64 = rounds.iter().take(3).filter_map(|r| r.counter("value")).sum();
            PointSummary { metrics: vec![("total", total)] }
        }

        fn is_settled(&self, rounds_so_far: &[RoundReport]) -> bool {
            rounds_so_far.len() >= 3
        }
    }

    #[test]
    fn fully_cached_settling_run_stops_exactly_at_the_settle_point() {
        let run = SettlingRun { simulated: AtomicUsize::new(0) };
        let lookup = |round: u32, seed: u64| {
            Some(
                RoundReport::new(round, seed, vanet_stats::RoundResult::default())
                    .with_counter("value", 1.0),
            )
        };
        let mut stored = 0usize;
        let (reports, fresh) = run_rounds_cached(&run, 7, 8, &lookup, &mut |_, _| {
            stored += 1;
            Ok(())
        })
        .unwrap();
        // Previously a fully cached wave overshot to 8 reports; now the
        // cached prefix honours the settle point exactly.
        assert_eq!(reports.len(), 3, "cached prefix must not overshoot the settle point");
        assert_eq!(fresh, 0);
        assert_eq!(run.simulated.load(Ordering::Relaxed), 0);
        assert_eq!(stored, 0, "cached rounds are never re-stored");
    }

    #[test]
    fn partially_cached_settling_run_keeps_the_summary() {
        // Cache covers only round 0: the prefix serves it, then the wave
        // machinery simulates from round 1 and may overshoot by at most one
        // wave — which `aggregate` ignores by contract.
        let run = SettlingRun { simulated: AtomicUsize::new(0) };
        let lookup = |round: u32, seed: u64| {
            (round == 0).then(|| {
                RoundReport::new(round, seed, vanet_stats::RoundResult::default())
                    .with_counter("value", 1.0)
            })
        };
        let (reports, fresh) = run_rounds_cached(&run, 7, 4, &lookup, &mut |_, _| Ok(())).unwrap();
        assert!((3..=5).contains(&reports.len()), "got {} reports", reports.len());
        assert_eq!(fresh, reports.len() - 1);
        assert_eq!(run.aggregate(&reports).metrics, vec![("total", 3.0)]);
    }

    #[test]
    #[should_panic(expected = "inconsistent metrics")]
    fn inconsistent_metric_names_rejected() {
        let scenario = InconsistentScenario {
            schema: ParamSchema::new(
                "inconsistent",
                vec![ParamSpec::int(Param::NCars, "cars", 0, 0, 10)],
            ),
        };
        let spec =
            SweepSpec::new(1).axis(Param::NCars, vec![ParamValue::Int(1), ParamValue::Int(2)]);
        let _ = SweepEngine::new(1).run(&scenario, &spec);
    }
}
