//! # vanet-sweep — parallel, deterministic experiment sweeps
//!
//! The paper evaluates one configuration of each scenario; its open
//! questions (cooperator selection §6, batched REQUESTs §3.3, multi-AP
//! downloads) all demand *sweeps* over platoon size, speed, sending rate and
//! protocol strategy. This crate is the platform for those sweeps:
//!
//! * [`SweepSpec`] — a declarative parameter grid (cartesian axes plus
//!   explicit extra points) expanded in a stable, thread-independent order;
//! * [`Experiment`] — the adapter trait between a sweep point and a
//!   scenario, implemented for the urban testbed ([`UrbanSweep`]), the
//!   highway drive-thru ([`HighwaySweep`]) and the multi-AP download
//!   ([`MultiApSweep`]);
//! * [`SweepEngine`] — a work-sharing thread pool executing points in
//!   parallel;
//! * [`SweepResult`] — per-point metric rows that flow into `vanet-stats`
//!   ([`vanet_stats::RecordTable`]) and export as CSV or JSON;
//! * [`presets`] — the named sweep catalogue `carq-cli sweep list` shows.
//!
//! ## Determinism and seed derivation
//!
//! A sweep is reproducible byte for byte at **any** thread count. The scheme:
//!
//! 1. The spec carries one `master_seed`.
//! 2. Point `i` of the expansion gets
//!    `point_seed = StreamRng::derive(master_seed, "sweep.point").substream(i)`
//!    (first draw) — a pure function of `(master_seed, i)`, independent of
//!    which worker executes the point ([`engine::point_seed`]).
//! 3. The scenario seeds *all* of its randomness from that point seed via
//!    its own named sub-streams (per-round mobility, shadowing, model
//!    events), so two runs of the same point are identical and different
//!    points are uncorrelated.
//!
//! Results are collected into each point's slot (not in completion order),
//! and float formatting is fixed-precision, so the exported CSV/JSON of a
//! sweep is a pure function of `(experiment, spec)`.
//!
//! ## Example
//!
//! ```rust,no_run
//! use vanet_sweep::{Param, ParamValue, SweepEngine, SweepSpec, UrbanSweep};
//!
//! let spec = SweepSpec::new(42)
//!     .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0), ParamValue::Float(20.0)])
//!     .axis(Param::NCars, vec![ParamValue::Int(2), ParamValue::Int(3)]);
//! let result = SweepEngine::new(0).run(&UrbanSweep::paper_testbed(), &spec);
//! println!("{}", result.to_csv());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod experiment;
pub mod presets;
pub mod spec;

pub use engine::{point_seed, SweepEngine, SweepResult};
pub use experiment::{Experiment, HighwaySweep, MultiApSweep, PointSummary, UrbanSweep};
pub use spec::{Axis, Param, ParamValue, SweepPoint, SweepSpec};
