//! # vanet-sweep — parallel, deterministic experiment sweeps
//!
//! The paper evaluates one configuration of each scenario; its open
//! questions (cooperator selection §6, batched REQUESTs §3.3, multi-AP
//! downloads) all demand *sweeps* over platoon size, speed, sending rate and
//! protocol strategy. This crate is the platform for those sweeps, built on
//! the unified [`Scenario`] API of `vanet-scenarios`:
//!
//! * [`SweepSpec`] — a declarative parameter grid (cartesian axes plus
//!   explicit extra points) expanded in a stable, thread-independent order;
//! * [`SweepEngine`] — the two-level parallel executor: points run on a
//!   work-sharing pool, and leftover thread budget parallelises the rounds
//!   *within* each point. Every point is validated against the scenario's
//!   typed [`ParamSchema`] before anything
//!   runs; unknown parameters are an error unless
//!   [`SweepEngine::with_allow_unknown`] opts out;
//! * [`SweepResult`] — per-point metric rows that flow into `vanet-stats`
//!   ([`vanet_stats::RecordTable`]) and export as CSV or JSON, plus the
//!   `rounds_simulated` / `rounds_cached` provenance counters;
//! * [`presets`] — the named sweep catalogue `carq-cli sweep list` shows;
//! * an optional, persistent **round cache**
//!   ([`SweepEngine::with_cache`], backed by [`vanet_cache::SweepCache`]):
//!   before each round wave the engine partitions rounds into
//!   cached-vs-missing, simulates only the delta and writes fresh reports
//!   back — so re-running an identical spec simulates nothing, a widened
//!   grid or raised `--rounds` simulates only the new work, and a killed
//!   sweep resumes instead of restarting.
//!
//! ## Determinism and seed derivation
//!
//! A sweep is reproducible byte for byte at **any** thread count, with both
//! levels of parallelism enabled and with or without a cache. The scheme:
//!
//! 1. The spec carries one `master_seed`.
//! 2. Every point resolves to its **canonical configuration**
//!    (`ParamSchema::canonical_config`): all schema parameters with
//!    defaults applied, rendered losslessly, round-neutral parameters
//!    (round budgets, file sizes) excluded.
//! 3. The point's seed is
//!    `point_seed = StreamRng::derive(master_seed, "sweep.point/" + canonical)`
//!    (first draw) — a pure function of `(master_seed, configuration)`,
//!    independent of the point's grid position and of which worker executes
//!    it ([`engine::point_seed`]). Editing the spec never changes the seeds
//!    of the points that survive the edit — which is what makes the round
//!    cache hit across re-runs.
//! 4. Round `r` of a point gets
//!    `round_seed = StreamRng::derive(point_seed, "scenario.round").substream(r)`
//!    (first draw) — completing the pure
//!    `(master seed, canonical config, round)` chain
//!    ([`vanet_scenarios::round_seed`]).
//! 5. The scenario seeds *all* of a round's randomness from that round seed
//!    via its own named sub-streams (mobility, shadowing, model events), as
//!    the [`ScenarioRun::run_round`] purity contract requires.
//!
//! Results are collected into each point's slot (not in completion order),
//! rounds fold in round order, and float formatting is fixed-precision, so
//! the exported CSV/JSON of a sweep is a pure function of
//! `(scenario, spec)`.
//!
//! ## Example
//!
//! A cheap sweep of the multi-AP download (its file-size axis is
//! round-neutral, so all three points share their per-visit physics):
//!
//! ```rust
//! use vanet_sweep::{Param, ParamValue, SweepEngine, SweepSpec};
//! use vanet_scenarios::{MultiApConfig, MultiApScenario};
//!
//! let spec = SweepSpec::new(42).axis(
//!     Param::FileBlocks,
//!     vec![ParamValue::Int(20), ParamValue::Int(40), ParamValue::Int(60)],
//! );
//! let scenario = MultiApScenario::new(MultiApConfig::default_download());
//! let result = SweepEngine::new(2).run(&scenario, &spec).expect("schema-valid sweep");
//! assert_eq!(result.len(), 3);
//! // Equal per-round physics ⇒ equal content-derived seeds.
//! assert_eq!(result.seeds[0], result.seeds[1]);
//! assert!(result.to_csv().starts_with("scenario,point,seed,file_blocks,"));
//! ```
//!
//! For a cached (resumable) sweep, attach a store first:
//!
//! ```rust,no_run
//! use std::sync::Arc;
//! use vanet_sweep::{Param, ParamValue, SweepCache, SweepEngine, SweepSpec};
//! use vanet_scenarios::UrbanScenario;
//!
//! let cache = Arc::new(SweepCache::open("./sweep-cache").expect("cache dir"));
//! let spec = SweepSpec::new(42)
//!     .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0), ParamValue::Float(20.0)]);
//! let result = SweepEngine::new(0)
//!     .with_cache(cache)
//!     .run(&UrbanScenario::paper_testbed(), &spec)
//!     .expect("schema-valid sweep");
//! eprintln!("{} simulated, {} from cache", result.rounds_simulated, result.rounds_cached);
//! println!("{}", result.to_csv());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod presets;
pub mod spec;

pub use engine::{plan, point_seed, SweepEngine, SweepError, SweepPlan, SweepResult};
pub use spec::{Axis, Param, ParamValue, SweepPoint, SweepSpec};
// The persistent round store behind `SweepEngine::with_cache`, re-exported
// so downstream code can drive cached sweeps from this crate alone.
pub use vanet_cache::{CacheKey, CacheStats, SweepCache};
// The scenario-side half of the sweep API, re-exported so downstream code
// can drive sweeps from this crate alone.
pub use vanet_scenarios::{
    round_seed, ParamError, ParamSchema, Scenario, ScenarioRegistry, ScenarioRun,
};
pub use vanet_stats::PointSummary;
