//! # vanet-sweep — parallel, deterministic experiment sweeps
//!
//! The paper evaluates one configuration of each scenario; its open
//! questions (cooperator selection §6, batched REQUESTs §3.3, multi-AP
//! downloads) all demand *sweeps* over platoon size, speed, sending rate and
//! protocol strategy. This crate is the platform for those sweeps, built on
//! the unified [`Scenario`] API of `vanet-scenarios`:
//!
//! * [`SweepSpec`] — a declarative parameter grid (cartesian axes plus
//!   explicit extra points) expanded in a stable, thread-independent order;
//! * [`SweepEngine`] — the two-level parallel executor: points run on a
//!   work-sharing pool, and leftover thread budget parallelises the rounds
//!   *within* each point. Every point is validated against the scenario's
//!   typed [`ParamSchema`] before anything
//!   runs; unknown parameters are an error unless
//!   [`SweepEngine::with_allow_unknown`] opts out;
//! * [`SweepResult`] — per-point metric rows that flow into `vanet-stats`
//!   ([`vanet_stats::RecordTable`]) and export as CSV or JSON;
//! * [`presets`] — the named sweep catalogue `carq-cli sweep list` shows.
//!
//! ## Determinism and seed derivation
//!
//! A sweep is reproducible byte for byte at **any** thread count, with both
//! levels of parallelism enabled. The scheme:
//!
//! 1. The spec carries one `master_seed`.
//! 2. Point `i` of the expansion gets
//!    `point_seed = StreamRng::derive(master_seed, "sweep.point").substream(i)`
//!    (first draw) — a pure function of `(master_seed, i)`, independent of
//!    which worker executes the point ([`engine::point_seed`]).
//! 3. Round `r` of a point gets
//!    `round_seed = StreamRng::derive(point_seed, "scenario.round").substream(r)`
//!    (first draw) — completing the pure `(master seed, point index, round)`
//!    chain ([`vanet_scenarios::round_seed`]).
//! 4. The scenario seeds *all* of a round's randomness from that round seed
//!    via its own named sub-streams (mobility, shadowing, model events), as
//!    the [`ScenarioRun::run_round`] purity contract requires.
//!
//! Results are collected into each point's slot (not in completion order),
//! rounds fold in round order, and float formatting is fixed-precision, so
//! the exported CSV/JSON of a sweep is a pure function of
//! `(scenario, spec)`.
//!
//! ## Example
//!
//! ```rust,no_run
//! use vanet_sweep::{Param, ParamValue, SweepEngine, SweepSpec};
//! use vanet_scenarios::UrbanScenario;
//!
//! let spec = SweepSpec::new(42)
//!     .axis(Param::SpeedKmh, vec![ParamValue::Float(10.0), ParamValue::Float(20.0)])
//!     .axis(Param::NCars, vec![ParamValue::Int(2), ParamValue::Int(3)]);
//! let result = SweepEngine::new(0)
//!     .run(&UrbanScenario::paper_testbed(), &spec)
//!     .expect("schema-valid sweep");
//! println!("{}", result.to_csv());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod presets;
pub mod spec;

pub use engine::{point_seed, SweepEngine, SweepError, SweepResult};
pub use spec::{Axis, Param, ParamValue, SweepPoint, SweepSpec};
// The scenario-side half of the sweep API, re-exported so downstream code
// can drive sweeps from this crate alone.
pub use vanet_scenarios::{
    round_seed, ParamError, ParamSchema, Scenario, ScenarioRegistry, ScenarioRun,
};
pub use vanet_stats::PointSummary;
