//! The parameter vocabulary scenarios share: [`Param`], [`ParamValue`] and
//! the [`SweepPoint`] assignment a scenario is configured from.
//!
//! These types used to live in `vanet-sweep`; they moved here so that the
//! [`Scenario`](crate::Scenario) trait can speak them without a dependency
//! cycle — a scenario is configured from a `SweepPoint`, whoever produced it
//! (the sweep engine, the CLI, or a hand-written test).

use std::fmt;

use carq::{RecoveryStrategyKind, RequestStrategy, SelectionStrategy};

/// A parameter a scenario can consume. Which parameters a scenario actually
/// understands — with documentation, defaults and ranges — is declared by
/// its [`ParamSchema`](crate::ParamSchema); assigning a parameter outside
/// the schema is an error (see [`ParamError`](crate::ParamError)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Param {
    /// Platoon cruise speed in km/h.
    SpeedKmh,
    /// Number of cars in the platoon.
    NCars,
    /// AP sending rate per car, packets per second.
    ApRatePps,
    /// Payload per data packet in bytes.
    PayloadBytes,
    /// Cooperator-selection strategy of the C-ARQ protocol.
    Selection,
    /// REQUEST strategy of the C-ARQ protocol (per-packet vs batched).
    Request,
    /// Whether cooperation is enabled at all.
    Cooperation,
    /// Rounds per point: urban laps, highway passes, or the AP-visit budget
    /// of a multi-AP download.
    Rounds,
    /// File size in blocks (multi-AP download only).
    FileBlocks,
    /// The recovery strategy cars run after leaving coverage (which ARQ
    /// scheme answers "I missed packets — now what?").
    Strategy,
}

impl Param {
    /// Every parameter, in the order the CLI and exports present them.
    pub const ALL: [Param; 10] = [
        Param::SpeedKmh,
        Param::NCars,
        Param::ApRatePps,
        Param::PayloadBytes,
        Param::Selection,
        Param::Request,
        Param::Cooperation,
        Param::Rounds,
        Param::FileBlocks,
        Param::Strategy,
    ];

    /// The parameter whose [`key`](Param::key) is `key` — the inverse used
    /// when parsing shard files and other serialized points.
    pub fn from_key(key: &str) -> Option<Param> {
        Param::ALL.into_iter().find(|p| p.key() == key)
    }

    /// The column name used in exports and the CLI.
    pub fn key(&self) -> &'static str {
        match self {
            Param::SpeedKmh => "speed_kmh",
            Param::NCars => "n_cars",
            Param::ApRatePps => "ap_rate_pps",
            Param::PayloadBytes => "payload_bytes",
            Param::Selection => "selection",
            Param::Request => "request",
            Param::Cooperation => "cooperation",
            Param::Rounds => "rounds",
            Param::FileBlocks => "file_blocks",
            Param::Strategy => "strategy",
        }
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One value of a scenario parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// A real-valued parameter (speed, rate).
    Float(f64),
    /// An integral parameter (cars, payload, rounds, blocks).
    Int(u64),
    /// An on/off parameter (cooperation).
    Bool(bool),
    /// A cooperator-selection strategy.
    Selection(SelectionStrategy),
    /// A REQUEST strategy.
    Request(RequestStrategy),
    /// A recovery strategy (which ARQ scheme runs after coverage ends).
    Strategy(RecoveryStrategyKind),
}

impl ParamValue {
    /// The float behind this value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Float(x) => Some(*x),
            ParamValue::Int(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The integer behind this value, if integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ParamValue::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean behind this value, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(x) => Some(*x),
            _ => None,
        }
    }

    /// The recovery strategy behind this value, if it is one.
    pub fn as_strategy(&self) -> Option<RecoveryStrategyKind> {
        match self {
            ParamValue::Strategy(x) => Some(*x),
            _ => None,
        }
    }

    /// A **lossless** rendering used in cache keys and seed derivation.
    ///
    /// Unlike [`fmt::Display`], which rounds floats to three decimals for
    /// human-readable labels, this encoding round-trips every value exactly:
    /// floats render as their IEEE-754 bit pattern, so `20.0` and
    /// `20.0000001` never collapse onto one cache entry or seed.
    pub fn canonical(&self) -> String {
        match self {
            ParamValue::Float(x) => format!("f{:016x}", x.to_bits()),
            ParamValue::Int(x) => format!("i{x}"),
            ParamValue::Bool(x) => format!("b{}", u8::from(*x)),
            // Strategy renderings are already lossless (`all`, `first2`,
            // `coop-arq`, …).
            ParamValue::Selection(_) | ParamValue::Request(_) | ParamValue::Strategy(_) => {
                self.to_string()
            }
        }
    }

    /// Parses a [`canonical`](ParamValue::canonical) rendering back into a
    /// value — the exact inverse, so serialized points (shard files, shipped
    /// work units) round-trip bit-for-bit, floats included.
    pub fn parse_canonical(text: &str) -> Option<ParamValue> {
        match text {
            "b0" => return Some(ParamValue::Bool(false)),
            "b1" => return Some(ParamValue::Bool(true)),
            "all" => return Some(ParamValue::Selection(SelectionStrategy::AllNeighbours)),
            "per-packet" => return Some(ParamValue::Request(RequestStrategy::PerPacket)),
            "batched" => return Some(ParamValue::Request(RequestStrategy::Batched)),
            _ => {}
        }
        // Recovery-strategy names (`coop-arq`, `no-coop`, …) share no prefix
        // with the typed encodings below, so an exact-name lookup is safe.
        if let Some(kind) = RecoveryStrategyKind::from_name(text) {
            return Some(ParamValue::Strategy(kind));
        }
        // The strategy spellings start with letters the typed prefixes also
        // use (`first…` vs `f…` floats), so they must be tried first.
        if let Some(k) = text.strip_prefix("first") {
            let k: usize = k.parse().ok().filter(|k| *k > 0)?;
            return Some(ParamValue::Selection(SelectionStrategy::FirstHeard { k }));
        }
        if let Some(k) = text.strip_prefix("strong") {
            let k: usize = k.parse().ok().filter(|k| *k > 0)?;
            return Some(ParamValue::Selection(SelectionStrategy::StrongestSignal { k }));
        }
        if let Some(hex) = text.strip_prefix('f') {
            if hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                let bits = u64::from_str_radix(hex, 16).ok()?;
                return Some(ParamValue::Float(f64::from_bits(bits)));
            }
            return None;
        }
        if let Some(digits) = text.strip_prefix('i') {
            return digits.parse().ok().map(ParamValue::Int);
        }
        None
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Fixed decimals keep exports byte-stable; see vanet-stats.
            ParamValue::Float(x) => write!(f, "{x:.3}"),
            ParamValue::Int(x) => write!(f, "{x}"),
            ParamValue::Bool(x) => write!(f, "{x}"),
            ParamValue::Selection(SelectionStrategy::AllNeighbours) => f.write_str("all"),
            ParamValue::Selection(SelectionStrategy::FirstHeard { k }) => write!(f, "first{k}"),
            ParamValue::Selection(SelectionStrategy::StrongestSignal { k }) => {
                write!(f, "strong{k}")
            }
            ParamValue::Request(RequestStrategy::PerPacket) => f.write_str("per-packet"),
            ParamValue::Request(RequestStrategy::Batched) => f.write_str("batched"),
            ParamValue::Strategy(kind) => f.write_str(kind.name()),
        }
    }
}

/// One point of a sweep (or a one-off run): parameter assignments in a
/// stable order. Parameters a scenario's schema declares but the point does
/// not assign keep their schema defaults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepPoint {
    assignments: Vec<(Param, ParamValue)>,
}

impl SweepPoint {
    /// Creates a point from explicit assignments.
    ///
    /// # Panics
    ///
    /// Panics if a parameter appears twice.
    pub fn new(assignments: Vec<(Param, ParamValue)>) -> Self {
        for (i, (param, _)) in assignments.iter().enumerate() {
            assert!(
                !assignments[..i].iter().any(|(p, _)| p == param),
                "parameter {param} assigned twice in one point"
            );
        }
        SweepPoint { assignments }
    }

    /// The empty point: every parameter keeps its schema default.
    pub fn empty() -> Self {
        SweepPoint::default()
    }

    /// The assignments, in declaration order.
    pub fn assignments(&self) -> &[(Param, ParamValue)] {
        &self.assignments
    }

    /// The value assigned to `param`, if any.
    pub fn get(&self, param: Param) -> Option<ParamValue> {
        self.assignments.iter().find(|(p, _)| *p == param).map(|(_, v)| *v)
    }

    /// A copy of this point without the assignments for `params`.
    #[must_use]
    pub fn without(&self, params: &[Param]) -> SweepPoint {
        SweepPoint {
            assignments: self
                .assignments
                .iter()
                .filter(|(p, _)| !params.contains(p))
                .copied()
                .collect(),
        }
    }

    /// A compact `key=value,key=value` label for logs and progress output.
    pub fn label(&self) -> String {
        self.assignments.iter().map(|(p, v)| format!("{p}={v}")).collect::<Vec<_>>().join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_values_render_compactly() {
        assert_eq!(ParamValue::Float(20.0).to_string(), "20.000");
        assert_eq!(ParamValue::Int(3).to_string(), "3");
        assert_eq!(ParamValue::Bool(true).to_string(), "true");
        assert_eq!(ParamValue::Selection(SelectionStrategy::AllNeighbours).to_string(), "all");
        assert_eq!(
            ParamValue::Selection(SelectionStrategy::FirstHeard { k: 2 }).to_string(),
            "first2"
        );
        assert_eq!(
            ParamValue::Selection(SelectionStrategy::StrongestSignal { k: 1 }).to_string(),
            "strong1"
        );
        assert_eq!(ParamValue::Request(RequestStrategy::PerPacket).to_string(), "per-packet");
        assert_eq!(ParamValue::Request(RequestStrategy::Batched).to_string(), "batched");
        assert_eq!(ParamValue::Strategy(RecoveryStrategyKind::CoopArq).to_string(), "coop-arq");
        assert_eq!(ParamValue::Strategy(RecoveryStrategyKind::NoCoop).to_string(), "no-coop");
        let point = SweepPoint::new(vec![
            (Param::SpeedKmh, ParamValue::Float(20.0)),
            (Param::NCars, ParamValue::Int(3)),
        ]);
        assert_eq!(point.label(), "speed_kmh=20.000,n_cars=3");
    }

    #[test]
    fn canonical_rendering_is_lossless() {
        // Display collapses nearby floats; canonical must not.
        let a = ParamValue::Float(20.0);
        let b = ParamValue::Float(20.000_000_1);
        assert_eq!(a.to_string(), b.to_string(), "Display rounds to 3 decimals");
        assert_ne!(a.canonical(), b.canonical(), "canonical must distinguish them");
        assert_eq!(a.canonical(), format!("f{:016x}", 20.0f64.to_bits()));
        assert_eq!(ParamValue::Int(7).canonical(), "i7");
        assert_eq!(ParamValue::Bool(true).canonical(), "b1");
        assert_eq!(ParamValue::Bool(false).canonical(), "b0");
        assert_eq!(
            ParamValue::Selection(SelectionStrategy::FirstHeard { k: 2 }).canonical(),
            "first2"
        );
        assert_eq!(ParamValue::Request(RequestStrategy::Batched).canonical(), "batched");
        assert_eq!(ParamValue::Strategy(RecoveryStrategyKind::NetCoded).canonical(), "net-coded");
    }

    #[test]
    fn every_param_key_round_trips() {
        for param in Param::ALL {
            assert_eq!(Param::from_key(param.key()), Some(param), "{param}");
        }
        assert_eq!(Param::from_key("warp_factor"), None);
        assert_eq!(Param::from_key(""), None);
    }

    #[test]
    fn canonical_renderings_parse_back_bit_for_bit() {
        let values = [
            ParamValue::Float(20.0),
            ParamValue::Float(20.000_000_1),
            ParamValue::Float(-0.0),
            ParamValue::Float(f64::MIN_POSITIVE),
            ParamValue::Int(0),
            ParamValue::Int(u64::MAX),
            ParamValue::Bool(true),
            ParamValue::Bool(false),
            ParamValue::Selection(SelectionStrategy::AllNeighbours),
            ParamValue::Selection(SelectionStrategy::FirstHeard { k: 2 }),
            ParamValue::Selection(SelectionStrategy::StrongestSignal { k: 7 }),
            ParamValue::Request(RequestStrategy::PerPacket),
            ParamValue::Request(RequestStrategy::Batched),
            ParamValue::Strategy(RecoveryStrategyKind::CoopArq),
            ParamValue::Strategy(RecoveryStrategyKind::NetCoded),
            ParamValue::Strategy(RecoveryStrategyKind::OneHopListen),
            ParamValue::Strategy(RecoveryStrategyKind::NoCoop),
        ];
        for value in values {
            let canonical = value.canonical();
            assert_eq!(
                ParamValue::parse_canonical(&canonical),
                Some(value),
                "round-trip of `{canonical}`"
            );
        }
        for junk in ["", "x1", "f12", "fzzzzzzzzzzzzzzzz", "i", "i1.5", "first0", "strongk", "b2"] {
            assert_eq!(ParamValue::parse_canonical(junk), None, "`{junk}` must not parse");
        }
    }

    #[test]
    fn value_accessors_narrow_by_kind() {
        assert_eq!(ParamValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(ParamValue::Int(4).as_f64(), Some(4.0));
        assert_eq!(ParamValue::Int(4).as_u64(), Some(4));
        assert_eq!(ParamValue::Float(2.5).as_u64(), None);
        assert_eq!(ParamValue::Bool(true).as_bool(), Some(true));
        assert_eq!(ParamValue::Int(1).as_bool(), None);
    }

    #[test]
    fn without_strips_assignments() {
        let point = SweepPoint::new(vec![
            (Param::SpeedKmh, ParamValue::Float(20.0)),
            (Param::FileBlocks, ParamValue::Int(100)),
        ]);
        let stripped = point.without(&[Param::FileBlocks]);
        assert_eq!(stripped.get(Param::SpeedKmh), Some(ParamValue::Float(20.0)));
        assert_eq!(stripped.get(Param::FileBlocks), None);
        assert!(SweepPoint::empty().assignments().is_empty());
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_assignment_rejected() {
        let _ = SweepPoint::new(vec![
            (Param::NCars, ParamValue::Int(1)),
            (Param::NCars, ParamValue::Int(2)),
        ]);
    }
}
