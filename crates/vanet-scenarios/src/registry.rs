//! The scenario registry: every experiment family, discoverable by name.

use crate::highway::HighwayScenario;
use crate::multi_ap::MultiApScenario;
use crate::scenario::Scenario;
use crate::urban::UrbanScenario;

/// A name-indexed collection of [`Scenario`]s.
///
/// The registry is what makes scenarios first-class for tooling: the CLI's
/// `scenario list` / `describe` / `run` subcommands, preset catalogues and
/// sweeps all look experiments up here instead of hard-coding types. Adding
/// a scenario to the platform is implementing [`Scenario`] and registering
/// it — nothing else needs to learn its name.
#[derive(Default)]
pub struct ScenarioRegistry {
    scenarios: Vec<Box<dyn Scenario>>,
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry").field("names", &self.names()).finish()
    }
}

/// Lookup is forgiving about separators (`multi-ap`, `multi_ap` and
/// `multiap` all resolve) but never about the name itself.
fn normalize(name: &str) -> String {
    name.chars().filter(|c| *c != '-' && *c != '_').flat_map(char::to_lowercase).collect()
}

impl ScenarioRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// The registry of built-in scenarios at their paper-default base
    /// configurations: `urban`, `highway` and `multi-ap`.
    pub fn builtin() -> Self {
        let mut registry = ScenarioRegistry::new();
        registry.register(Box::new(UrbanScenario::paper_testbed()));
        registry.register(Box::new(HighwayScenario::drive_thru()));
        registry.register(Box::new(MultiApScenario::default_download()));
        registry
    }

    /// Adds a scenario.
    ///
    /// # Panics
    ///
    /// Panics if a scenario with the same (normalized) name is already
    /// registered.
    pub fn register(&mut self, scenario: Box<dyn Scenario>) {
        assert!(
            self.get(scenario.name()).is_none(),
            "scenario `{}` registered twice",
            scenario.name()
        );
        self.scenarios.push(scenario);
    }

    /// Adds a scenario unless its (normalized) name is already taken,
    /// returning whether it was added. This is the mass-registration hook
    /// for *generated* scenarios: a campaign can regenerate the same
    /// identity twice (warm re-runs, merged shards) and simply keep the
    /// first registration instead of panicking.
    pub fn try_register(&mut self, scenario: Box<dyn Scenario>) -> bool {
        if self.get(scenario.name()).is_some() {
            return false;
        }
        self.scenarios.push(scenario);
        true
    }

    /// Looks a scenario up by name (separator- and case-insensitive).
    pub fn get(&self, name: &str) -> Option<&dyn Scenario> {
        let wanted = normalize(name);
        self.scenarios.iter().find(|s| normalize(s.name()) == wanted).map(Box::as_ref)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.scenarios.iter().map(|s| s.name()).collect()
    }

    /// Iterates over the registered scenarios, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.scenarios.iter().map(Box::as_ref)
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_all_three_scenarios() {
        let registry = ScenarioRegistry::builtin();
        assert_eq!(registry.names(), vec!["urban", "highway", "multi-ap"]);
        assert_eq!(registry.len(), 3);
        assert!(!registry.is_empty());
        for name in registry.names() {
            let scenario = registry.get(name).unwrap();
            assert!(!scenario.description().is_empty());
            assert!(!scenario.schema().params().is_empty());
            assert_eq!(scenario.schema().scenario(), name);
        }
    }

    #[test]
    fn lookup_ignores_separators_and_case() {
        let registry = ScenarioRegistry::builtin();
        for alias in ["multi-ap", "multi_ap", "multiap", "MULTI-AP"] {
            assert_eq!(registry.get(alias).map(|s| s.name()), Some("multi-ap"), "{alias}");
        }
        assert!(registry.get("mars").is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_rejected() {
        let mut registry = ScenarioRegistry::builtin();
        registry.register(Box::new(UrbanScenario::paper_testbed()));
    }

    #[test]
    fn try_register_keeps_the_first_and_reports_duplicates() {
        let mut registry = ScenarioRegistry::builtin();
        assert!(!registry.try_register(Box::new(UrbanScenario::paper_testbed())));
        assert_eq!(registry.len(), 3, "duplicate must not be added");
        let mut empty = ScenarioRegistry::new();
        assert!(empty.try_register(Box::new(UrbanScenario::paper_testbed())));
        assert_eq!(empty.names(), vec!["urban"]);
    }
}
