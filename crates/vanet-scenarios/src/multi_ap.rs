//! Multi-AP file-download extension experiment.
//!
//! The paper's conclusions ask (§6): "how the presented loss reduction can
//! reduce the number of APs that a vehicular node needs to visit to download
//! a file". This experiment answers that question with the simulator: a
//! platoon repeatedly passes isolated APs (the Infostation model the paper
//! builds on); at each pass the infrastructure sends each car the blocks it
//! still misses, the cars run C-ARQ in the gap after the AP, and we count how
//! many AP visits each car needs before its file is complete.
//!
//! Under the unified [`Scenario`] API one *round* is one AP visit — a full
//! drive-by simulation (the same machinery as the highway experiment) that
//! is a pure function of its seed. The sequential part of the story — the
//! infrastructure learning what each car holds and ticking blocks off until
//! the file completes — is a deterministic fold over the per-visit reports
//! in [`ScenarioRun::aggregate`], so visits can simulate in parallel while
//! the accounting stays exactly sequential. [`ScenarioRun::is_settled`]
//! stops the visit budget early once every car has finished.

use vanet_mac::NodeId;
use vanet_stats::{mean, PointSummary, RoundReport};
use vanet_trace::TraceRecord;

use crate::highway::{simulate_pass, simulate_pass_traced, HighwayConfig, PassInvariants};
use crate::params::{Param, SweepPoint};
use crate::scenario::{Scenario, ScenarioRun};
use crate::schema::{ParamError, ParamSchema, ParamSpec};
use crate::urban::saturate_u32;

/// Configuration of the multi-AP download experiment.
#[derive(Debug, Clone)]
pub struct MultiApConfig {
    /// The file size each car must download, in blocks (one block = one
    /// packet of `pass.payload_bytes`).
    pub file_blocks: u32,
    /// The per-pass drive-by configuration (speed, rate, platoon size,
    /// cooperation on/off).
    pub pass: HighwayConfig,
    /// Safety bound on the number of AP visits simulated.
    pub max_passes: u32,
}

impl MultiApConfig {
    /// A 1500-block (≈ 1.5 MB) download by a three-car cooperative platoon on
    /// an arterial road (80 km/h, 5 pkt/s per car): each AP pass delivers a
    /// few hundred blocks, so several visits are needed and the effect of
    /// cooperation on the visit count is visible.
    pub fn default_download() -> Self {
        MultiApConfig {
            file_blocks: 1_500,
            pass: HighwayConfig::drive_thru_reference()
                .with_speed_kmh(80.0)
                .with_rate_pps(5.0)
                .with_cooperating_platoon(3)
                .with_passes(1),
            max_passes: 40,
        }
    }

    /// Disables cooperation for the baseline comparison.
    pub fn without_cooperation(mut self) -> Self {
        self.pass.cooperation_enabled = false;
        self
    }

    /// Overrides the file size in blocks.
    pub fn with_file_blocks(mut self, blocks: u32) -> Self {
        self.file_blocks = blocks;
        self
    }
}

/// The outcome of a multi-AP download for one car.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiApOutcome {
    /// The car.
    pub car: NodeId,
    /// Number of AP visits needed to complete the file, or `None` if the
    /// download did not finish within the configured pass budget.
    pub passes_needed: Option<u32>,
    /// Blocks obtained after the final simulated pass.
    pub blocks_obtained: u32,
    /// Total blocks delivered per pass on average (goodput per visit).
    pub mean_blocks_per_pass: f64,
}

/// The multi-AP download as a registry-discoverable [`Scenario`].
#[derive(Debug)]
pub struct MultiApScenario {
    base: MultiApConfig,
    schema: ParamSchema,
}

impl MultiApScenario {
    /// A scenario sweeping around `base`.
    pub fn new(base: MultiApConfig) -> Self {
        let schema = ParamSchema::new(
            "multi-ap",
            vec![
                // Round-neutral: a visit simulates the AP streaming fresh
                // blocks regardless of file size — the size only decides in
                // `aggregate`/`is_settled` when the download is complete, so
                // a file-size sweep shares its per-visit reports.
                ParamSpec::int(
                    Param::FileBlocks,
                    "file size per car in blocks (one block per packet)",
                    u64::from(base.file_blocks),
                    1,
                    10_000_000,
                )
                .round_neutral(),
                ParamSpec::float(
                    Param::SpeedKmh,
                    "vehicle speed in km/h",
                    base.pass.speed_kmh,
                    1.0,
                    250.0,
                ),
                ParamSpec::float(
                    Param::ApRatePps,
                    "AP sending rate per car (packets/s)",
                    base.pass.ap_rate_pps,
                    0.1,
                    1_000.0,
                ),
                ParamSpec::int(
                    Param::NCars,
                    "number of cars in the platoon",
                    base.pass.n_cars as u64,
                    1,
                    32,
                ),
                ParamSpec::int(
                    Param::PayloadBytes,
                    "payload per data packet in bytes",
                    u64::from(base.pass.payload_bytes),
                    1,
                    65_535,
                ),
                // Default-transparent: points at the default (the paper's
                // C-ARQ) keep the canonical configuration this schema had
                // before the parameter existed; rival strategies get
                // distinct canonicals (and cache keys) automatically.
                ParamSpec::strategy(
                    Param::Strategy,
                    "recovery strategy run after leaving coverage",
                    base.pass.strategy,
                )
                .default_transparent(),
                ParamSpec::bool(
                    Param::Cooperation,
                    "whether the platoon runs C-ARQ",
                    base.pass.cooperation_enabled,
                ),
                // Round-neutral: the budget only bounds how many visits
                // may run.
                ParamSpec::int(
                    Param::Rounds,
                    "AP-visit budget per download (safety bound)",
                    u64::from(base.max_passes),
                    1,
                    10_000,
                )
                .round_neutral(),
            ],
        );
        MultiApScenario { base, schema }
    }

    /// The scenario at the default 1500-block download configuration.
    pub fn default_download() -> Self {
        MultiApScenario::new(MultiApConfig::default_download())
    }

    /// The base configuration `configure` overrides.
    pub fn base(&self) -> &MultiApConfig {
        &self.base
    }

    /// The configuration a point runs. The drive-by parameters share the
    /// highway scenario's override logic; only `FileBlocks` and the
    /// AP-visit budget are this scenario's own.
    pub fn config_for(&self, point: &SweepPoint) -> Result<MultiApConfig, ParamError> {
        self.schema.validate(point)?;
        let mut cfg = self.base.clone();
        crate::highway::apply_pass_overrides(&mut cfg.pass, point);
        if let Some(blocks) = point.get(Param::FileBlocks).and_then(|v| v.as_u64()) {
            cfg.file_blocks = saturate_u32(blocks);
        }
        if let Some(budget) = point.get(Param::Rounds).and_then(|v| v.as_u64()) {
            cfg.max_passes = saturate_u32(budget);
        }
        Ok(cfg)
    }
}

impl Scenario for MultiApScenario {
    fn name(&self) -> &'static str {
        "multi-ap"
    }

    fn description(&self) -> &'static str {
        "the §6 extension: AP visits a platoon needs to finish a file download, with/without C-ARQ"
    }

    fn schema(&self) -> &ParamSchema {
        &self.schema
    }

    fn configure(&self, point: &SweepPoint) -> Result<Box<dyn ScenarioRun>, ParamError> {
        Ok(Box::new(MultiApRun::new(self.config_for(point)?)))
    }
}

/// One configured download: [`ScenarioRun::run_round`] simulates one AP
/// visit, [`ScenarioRun::aggregate`] folds the visits into per-car visit
/// counts.
#[derive(Debug, Clone)]
pub struct MultiApRun {
    config: MultiApConfig,
    invariants: PassInvariants,
}

impl MultiApRun {
    /// Creates a run.
    ///
    /// # Panics
    ///
    /// Panics if the file size or pass budget is zero, or if the per-visit
    /// pass configuration is inconsistent (no cars, non-positive speed or
    /// rate). Configurations built through [`MultiApScenario::configure`]
    /// are schema-checked and cannot trip these.
    pub fn new(config: MultiApConfig) -> Self {
        assert!(config.file_blocks > 0, "file must have at least one block");
        assert!(config.max_passes > 0, "at least one pass must be allowed");
        assert!(config.pass.n_cars >= 1, "at least one car required");
        assert!(config.pass.speed_kmh > 0.0, "speed must be positive");
        assert!(config.pass.ap_rate_pps > 0.0, "rate must be positive");
        let invariants = PassInvariants::of(&config.pass);
        MultiApRun { config, invariants }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultiApConfig {
        &self.config
    }

    /// Folds the per-visit reports (in visit order) into per-car outcomes:
    /// the sequential accounting of which blocks the infrastructure can tick
    /// off after each visit. Reports past the visit where every car finished
    /// are ignored, which is what lets visits simulate in parallel waves.
    pub fn outcomes(&self, reports: &[RoundReport]) -> Vec<MultiApOutcome> {
        let cfg = &self.config;
        let n_cars = cfg.pass.n_cars;
        let mut blocks: Vec<u32> = vec![0; n_cars];
        let mut finished_at: Vec<Option<u32>> = vec![None; n_cars];
        let mut per_pass_gain: Vec<Vec<f64>> = vec![Vec::new(); n_cars];

        for (pass, report) in reports.iter().enumerate() {
            if finished_at.iter().all(Option::is_some) {
                break;
            }
            for (i, car) in report.result.cars().iter().enumerate() {
                if i >= n_cars || finished_at[i].is_some() {
                    continue;
                }
                let Some(flow) = report.result.flow_for(*car) else { continue };
                // Blocks the infrastructure can tick off after this visit:
                // whatever the car ended up holding (after cooperation if it
                // is enabled).
                let gained = flow.after_coop.received_count() as u32;
                per_pass_gain[i].push(f64::from(gained));
                blocks[i] = (blocks[i] + gained).min(cfg.file_blocks);
                if blocks[i] >= cfg.file_blocks {
                    finished_at[i] = Some(pass as u32 + 1);
                }
            }
        }

        (0..n_cars)
            .map(|i| MultiApOutcome {
                car: NodeId::new(i as u32 + 1),
                passes_needed: finished_at[i],
                blocks_obtained: blocks[i],
                mean_blocks_per_pass: mean(&per_pass_gain[i]),
            })
            .collect()
    }
}

impl ScenarioRun for MultiApRun {
    fn rounds(&self) -> u32 {
        self.config.max_passes
    }

    fn run_round(&self, round: u32, seed: u64) -> RoundReport {
        simulate_pass(&self.config.pass, &self.invariants, round, seed)
    }

    fn run_round_traced(&self, round: u32, seed: u64) -> (RoundReport, Vec<TraceRecord>) {
        simulate_pass_traced(&self.config.pass, &self.invariants, round, seed)
    }

    fn is_settled(&self, rounds_so_far: &[RoundReport]) -> bool {
        self.outcomes(rounds_so_far).iter().all(|o| o.passes_needed.is_some())
    }

    fn aggregate(&self, rounds: &[RoundReport]) -> PointSummary {
        let max_passes = self.config.max_passes;
        let outcomes = self.outcomes(rounds);
        // A car that never finishes counts as `max_passes + 1` visits — a
        // pessimistic lower bound that keeps the mean monotone across a
        // sweep axis instead of collapsing to 0 exactly where downloads
        // stop completing.
        let visits: Vec<f64> =
            outcomes.iter().map(|o| f64::from(o.passes_needed.unwrap_or(max_passes + 1))).collect();
        let unfinished = outcomes.iter().filter(|o| o.passes_needed.is_none()).count();
        let worst = visits.iter().copied().fold(0.0, f64::max);
        let blocks_per_pass: Vec<f64> = outcomes.iter().map(|o| o.mean_blocks_per_pass).collect();
        PointSummary {
            metrics: vec![
                ("passes_needed_mean", mean(&visits)),
                ("passes_needed_max", worst),
                ("unfinished_cars", unfinished as f64),
                ("blocks_per_pass_mean", mean(&blocks_per_pass)),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamValue;
    use crate::scenario::run_rounds;

    fn small_download(cooperation: bool) -> (MultiApRun, Vec<MultiApOutcome>) {
        let mut config = MultiApConfig::default_download().with_file_blocks(150);
        config.max_passes = 12;
        if !cooperation {
            config = config.without_cooperation();
        }
        let run = MultiApRun::new(config);
        let reports = run_rounds(&run, 0xd21e, 1);
        let outcomes = run.outcomes(&reports);
        (run, outcomes)
    }

    #[test]
    fn download_completes_within_the_pass_budget() {
        let (_, outcomes) = small_download(true);
        assert_eq!(outcomes.len(), 3);
        for outcome in &outcomes {
            assert!(outcome.passes_needed.is_some(), "car {} never finished", outcome.car);
            assert!(outcome.blocks_obtained >= 150);
            assert!(outcome.mean_blocks_per_pass > 0.0);
        }
    }

    #[test]
    fn cooperation_needs_no_more_passes_than_the_baseline() {
        let (_, with_coop) = small_download(true);
        let (_, without) = small_download(false);
        let total_with: u32 = with_coop.iter().filter_map(|o| o.passes_needed).sum();
        let total_without: u32 = without.iter().map(|o| o.passes_needed.unwrap_or(13)).sum();
        assert!(
            total_with <= total_without,
            "cooperation should not need more AP visits ({total_with} > {total_without})"
        );
    }

    #[test]
    fn early_exit_does_not_change_the_summary() {
        let mut config = MultiApConfig::default_download().with_file_blocks(150);
        config.max_passes = 12;
        let run = MultiApRun::new(config);
        let serial = run_rounds(&run, 7, 1);
        let wide = run_rounds(&run, 7, 8);
        // The wide execution may overshoot the settle point...
        assert!(wide.len() >= serial.len());
        // ...but folds to the identical summary.
        assert_eq!(run.aggregate(&serial), run.aggregate(&wide));
        // And it settles well before the full budget.
        assert!(serial.len() < 12, "download should finish early ({} passes)", serial.len());
    }

    #[test]
    fn unfinished_downloads_report_pessimistic_visit_counts() {
        let mut base = MultiApConfig::default_download();
        base.max_passes = 1; // one visit can never move ~10k blocks
        base.file_blocks = 10_000;
        let run = MultiApRun::new(base);
        let reports = run_rounds(&run, 5, 1);
        let summary = run.aggregate(&reports);
        assert_eq!(summary.get("unfinished_cars"), Some(3.0));
        // Unfinished cars count as max_passes + 1 visits, not 0.
        assert_eq!(summary.get("passes_needed_mean"), Some(2.0));
        assert_eq!(summary.get("passes_needed_max"), Some(2.0));
    }

    #[test]
    fn scenario_overrides_reach_pass_and_file() {
        let scenario = MultiApScenario::default_download();
        let cfg = scenario
            .config_for(&SweepPoint::new(vec![
                (Param::FileBlocks, ParamValue::Int(600)),
                (Param::SpeedKmh, ParamValue::Float(60.0)),
                (Param::Cooperation, ParamValue::Bool(false)),
                (Param::Strategy, ParamValue::Strategy(carq::RecoveryStrategyKind::OneHopListen)),
                (Param::Rounds, ParamValue::Int(8)),
            ]))
            .unwrap();
        assert_eq!(cfg.file_blocks, 600);
        assert_eq!(cfg.pass.speed_kmh, 60.0);
        assert!(!cfg.pass.cooperation_enabled);
        assert_eq!(cfg.pass.strategy, carq::RecoveryStrategyKind::OneHopListen);
        assert_eq!(cfg.max_passes, 8);
        // Urban-only strategy parameters are rejected by the schema.
        let err = scenario
            .config_for(&SweepPoint::new(vec![(
                Param::Request,
                ParamValue::Request(carq::RequestStrategy::Batched),
            )]))
            .unwrap_err();
        assert!(matches!(err, ParamError::Unknown { scenario: "multi-ap", .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_file_rejected() {
        let _ = MultiApRun::new(MultiApConfig::default_download().with_file_blocks(0));
    }
}
