//! Multi-AP file-download extension experiment.
//!
//! The paper's conclusions ask (§6): "how the presented loss reduction can
//! reduce the number of APs that a vehicular node needs to visit to download
//! a file". This experiment answers that question with the simulator: a
//! platoon repeatedly passes isolated APs (the Infostation model the paper
//! builds on); at each pass the infrastructure sends each car the blocks it
//! still misses, the cars run C-ARQ in the gap after the AP, and we count how
//! many AP visits each car needs before its file is complete.
//!
//! Each pass is one full drive-by simulation (the same machinery as the
//! highway experiment); between passes the infrastructure learns what each
//! car holds — the uplink acknowledgement a real deployment would send when
//! the car next associates.

use serde::{Deserialize, Serialize};

use crate::highway::{HighwayConfig, HighwayExperiment};
use vanet_mac::NodeId;

/// Configuration of the multi-AP download experiment.
#[derive(Debug, Clone)]
pub struct MultiApConfig {
    /// The file size each car must download, in blocks (one block = one
    /// packet of `pass.payload_bytes`).
    pub file_blocks: u32,
    /// The per-pass drive-by configuration (speed, rate, platoon size,
    /// cooperation on/off).
    pub pass: HighwayConfig,
    /// Safety bound on the number of AP visits simulated.
    pub max_passes: u32,
}

impl MultiApConfig {
    /// A 1500-block (≈ 1.5 MB) download by a three-car cooperative platoon on
    /// an arterial road (80 km/h, 5 pkt/s per car): each AP pass delivers a
    /// few hundred blocks, so several visits are needed and the effect of
    /// cooperation on the visit count is visible.
    pub fn default_download() -> Self {
        MultiApConfig {
            file_blocks: 1_500,
            pass: HighwayConfig::drive_thru_reference()
                .with_speed_kmh(80.0)
                .with_rate_pps(5.0)
                .with_cooperating_platoon(3)
                .with_passes(1),
            max_passes: 40,
        }
    }

    /// Disables cooperation for the baseline comparison.
    pub fn without_cooperation(mut self) -> Self {
        self.pass.cooperation_enabled = false;
        self
    }

    /// Overrides the file size in blocks.
    pub fn with_file_blocks(mut self, blocks: u32) -> Self {
        self.file_blocks = blocks;
        self
    }
}

/// The outcome of a multi-AP download for one car.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiApOutcome {
    /// The car.
    pub car: NodeId,
    /// Number of AP visits needed to complete the file, or `None` if the
    /// download did not finish within the configured pass budget.
    pub passes_needed: Option<u32>,
    /// Blocks obtained after the final simulated pass.
    pub blocks_obtained: u32,
    /// Total blocks delivered per pass on average (goodput per visit).
    pub mean_blocks_per_pass: f64,
}

/// The multi-AP download experiment runner.
#[derive(Debug, Clone)]
pub struct MultiApExperiment {
    config: MultiApConfig,
}

impl MultiApExperiment {
    /// Creates a runner.
    ///
    /// # Panics
    ///
    /// Panics if the file size or pass budget is zero.
    pub fn new(config: MultiApConfig) -> Self {
        assert!(config.file_blocks > 0, "file must have at least one block");
        assert!(config.max_passes > 0, "at least one pass must be allowed");
        MultiApExperiment { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultiApConfig {
        &self.config
    }

    /// Runs the download and reports the per-car outcome.
    pub fn run(&self) -> Vec<MultiApOutcome> {
        let cfg = &self.config;
        let n_cars = cfg.pass.n_cars;
        let mut blocks: Vec<u32> = vec![0; n_cars];
        let mut finished_at: Vec<Option<u32>> = vec![None; n_cars];
        let mut per_pass_gain: Vec<Vec<f64>> = vec![Vec::new(); n_cars];

        for pass in 0..cfg.max_passes {
            if finished_at.iter().all(Option::is_some) {
                break;
            }
            // Each AP visit is one drive-by simulation with a pass-specific
            // seed so the channel realisation differs per visit.
            let mut pass_cfg = cfg.pass.clone();
            pass_cfg.master_seed = cfg.pass.master_seed.wrapping_add(u64::from(pass) * 7919);
            let round = HighwayExperiment::new(pass_cfg).run_pass(pass);

            for (i, car) in round.cars().iter().enumerate() {
                if finished_at[i].is_some() {
                    continue;
                }
                let Some(flow) = round.flow_for(*car) else { continue };
                // Blocks the infrastructure can tick off after this visit:
                // whatever the car ended up holding (after cooperation if it
                // is enabled).
                let gained = flow.after_coop.received_count() as u32;
                per_pass_gain[i].push(f64::from(gained));
                blocks[i] = (blocks[i] + gained).min(cfg.file_blocks);
                if blocks[i] >= cfg.file_blocks {
                    finished_at[i] = Some(pass + 1);
                }
            }
        }

        (0..n_cars)
            .map(|i| MultiApOutcome {
                car: NodeId::new(i as u32 + 1),
                passes_needed: finished_at[i],
                blocks_obtained: blocks[i],
                mean_blocks_per_pass: vanet_stats::mean(&per_pass_gain[i]),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_download(cooperation: bool) -> Vec<MultiApOutcome> {
        let mut config = MultiApConfig::default_download().with_file_blocks(150);
        config.max_passes = 12;
        if !cooperation {
            config = config.without_cooperation();
        }
        MultiApExperiment::new(config).run()
    }

    #[test]
    fn download_completes_within_the_pass_budget() {
        let outcomes = small_download(true);
        assert_eq!(outcomes.len(), 3);
        for outcome in &outcomes {
            assert!(outcome.passes_needed.is_some(), "car {} never finished", outcome.car);
            assert!(outcome.blocks_obtained >= 150);
            assert!(outcome.mean_blocks_per_pass > 0.0);
        }
    }

    #[test]
    fn cooperation_needs_no_more_passes_than_the_baseline() {
        let with_coop = small_download(true);
        let without = small_download(false);
        let total_with: u32 = with_coop.iter().filter_map(|o| o.passes_needed).sum();
        let total_without: u32 = without.iter().map(|o| o.passes_needed.unwrap_or(13)).sum();
        assert!(
            total_with <= total_without,
            "cooperation should not need more AP visits ({total_with} > {total_without})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_file_rejected() {
        let _ = MultiApExperiment::new(MultiApConfig::default_download().with_file_blocks(0));
    }
}
