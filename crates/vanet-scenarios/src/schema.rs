//! Typed parameter schemas: which parameters a scenario consumes, with
//! documentation, defaults and ranges — and the validation that turns a
//! loose [`SweepPoint`] into a trustworthy configuration.

use std::fmt;

use crate::params::{Param, ParamValue, SweepPoint};

/// The type a parameter value must have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// A real number ([`ParamValue::Float`]; integers are accepted and
    /// widened).
    Float,
    /// An unsigned integer ([`ParamValue::Int`]).
    Int,
    /// An on/off value ([`ParamValue::Bool`]).
    Bool,
    /// A cooperator-selection strategy ([`ParamValue::Selection`]).
    Selection,
    /// A REQUEST strategy ([`ParamValue::Request`]).
    Request,
    /// A recovery strategy ([`ParamValue::Strategy`]).
    Strategy,
}

impl ParamKind {
    /// The kind name shown in schema listings and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            ParamKind::Float => "float",
            ParamKind::Int => "int",
            ParamKind::Bool => "bool",
            ParamKind::Selection => "selection",
            ParamKind::Request => "request",
            ParamKind::Strategy => "strategy",
        }
    }

    fn of(value: ParamValue) -> &'static str {
        match value {
            ParamValue::Float(_) => "float",
            ParamValue::Int(_) => "int",
            ParamValue::Bool(_) => "bool",
            ParamValue::Selection(_) => "selection",
            ParamValue::Request(_) => "request",
            ParamValue::Strategy(_) => "strategy",
        }
    }
}

/// One documented parameter of a scenario: its type, its default (taken from
/// the scenario's base configuration) and, for numeric kinds, the inclusive
/// range of accepted values.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// The parameter.
    pub param: Param,
    /// The type values must have.
    pub kind: ParamKind,
    /// One-line documentation shown by `carq-cli scenario describe`.
    pub doc: &'static str,
    /// The value used when a point does not assign the parameter.
    pub default: ParamValue,
    /// Inclusive numeric lower bound (`None` for non-numeric kinds).
    pub min: Option<f64>,
    /// Inclusive numeric upper bound (`None` for non-numeric kinds).
    pub max: Option<f64>,
    /// Whether the parameter is **round-neutral**: its value never
    /// influences the report of an individual round, only how many rounds
    /// run, when they settle early, or how they aggregate (see
    /// [`ParamSpec::round_neutral`]).
    pub round_neutral: bool,
    /// Whether the parameter is **default-transparent**: it is omitted from
    /// [`ParamSchema::canonical_config`] whenever its resolved value equals
    /// the spec default (see [`ParamSpec::default_transparent`]).
    pub default_transparent: bool,
}

impl ParamSpec {
    /// A float parameter accepted in `[min, max]`.
    pub fn float(param: Param, doc: &'static str, default: f64, min: f64, max: f64) -> Self {
        ParamSpec {
            param,
            kind: ParamKind::Float,
            doc,
            default: ParamValue::Float(default),
            min: Some(min),
            max: Some(max),
            round_neutral: false,
            default_transparent: false,
        }
    }

    /// An integer parameter accepted in `[min, max]`.
    pub fn int(param: Param, doc: &'static str, default: u64, min: u64, max: u64) -> Self {
        ParamSpec {
            param,
            kind: ParamKind::Int,
            doc,
            default: ParamValue::Int(default),
            min: Some(min as f64),
            max: Some(max as f64),
            round_neutral: false,
            default_transparent: false,
        }
    }

    /// A boolean parameter.
    pub fn bool(param: Param, doc: &'static str, default: bool) -> Self {
        ParamSpec {
            param,
            kind: ParamKind::Bool,
            doc,
            default: ParamValue::Bool(default),
            min: None,
            max: None,
            round_neutral: false,
            default_transparent: false,
        }
    }

    /// A cooperator-selection-strategy parameter.
    pub fn selection(param: Param, doc: &'static str, default: carq::SelectionStrategy) -> Self {
        ParamSpec {
            param,
            kind: ParamKind::Selection,
            doc,
            default: ParamValue::Selection(default),
            min: None,
            max: None,
            round_neutral: false,
            default_transparent: false,
        }
    }

    /// A REQUEST-strategy parameter.
    pub fn request(param: Param, doc: &'static str, default: carq::RequestStrategy) -> Self {
        ParamSpec {
            param,
            kind: ParamKind::Request,
            doc,
            default: ParamValue::Request(default),
            min: None,
            max: None,
            round_neutral: false,
            default_transparent: false,
        }
    }

    /// A recovery-strategy parameter.
    pub fn strategy(param: Param, doc: &'static str, default: carq::RecoveryStrategyKind) -> Self {
        ParamSpec {
            param,
            kind: ParamKind::Strategy,
            doc,
            default: ParamValue::Strategy(default),
            min: None,
            max: None,
            round_neutral: false,
            default_transparent: false,
        }
    }

    /// Marks the parameter as **round-neutral** (builder style): its value
    /// never influences what [`ScenarioRun::run_round`] returns for an
    /// individual round — only how many rounds run
    /// ([`ScenarioRun::rounds`]), when they settle early
    /// ([`ScenarioRun::is_settled`]), or how the reports aggregate.
    ///
    /// Round-neutral parameters are excluded from
    /// [`ParamSchema::canonical_config`], which is what lets a `--rounds 60`
    /// re-run reuse the cached rounds of a `--rounds 30` run, and lets the
    /// multi-AP download share per-visit reports across file sizes.
    ///
    /// Marking a parameter that *does* affect individual rounds is a
    /// scenario bug: cached reports would silently stand in for different
    /// physics.
    ///
    /// [`ScenarioRun::run_round`]: crate::ScenarioRun::run_round
    /// [`ScenarioRun::rounds`]: crate::ScenarioRun::rounds
    /// [`ScenarioRun::is_settled`]: crate::ScenarioRun::is_settled
    #[must_use]
    pub fn round_neutral(mut self) -> Self {
        self.round_neutral = true;
        self
    }

    /// Marks the parameter as **default-transparent** (builder style): when
    /// a point leaves it unassigned — or assigns exactly the spec default —
    /// it is omitted from [`ParamSchema::canonical_config`] altogether, as
    /// if the schema had never declared it.
    ///
    /// This is how a schema grows a new parameter without orphaning history:
    /// points at the default keep the canonical configuration (and therefore
    /// the derived seeds and golden exports) they had before the parameter
    /// existed, while any non-default assignment extends the canonical
    /// string and gets distinct seeds and cache keys automatically.
    ///
    /// Only parameters whose default reproduces the pre-parameter behaviour
    /// exactly may be marked; a default that changes the physics would make
    /// old canonical strings stand in for different results.
    #[must_use]
    pub fn default_transparent(mut self) -> Self {
        self.default_transparent = true;
        self
    }

    /// The `[min, max]` range rendered for listings, or `-` when the kind
    /// has no range.
    pub fn range_label(&self) -> String {
        match (self.min, self.max, self.kind) {
            (Some(min), Some(max), ParamKind::Int) => format!("{}..={}", min as u64, max as u64),
            (Some(min), Some(max), _) => format!("{min}..={max}"),
            _ => "-".to_string(),
        }
    }

    /// Checks one assigned value against this spec. `scenario` is the name
    /// of the scenario doing the checking; it is carried into the error so
    /// that CLI messages name the rejecting scenario, not just the
    /// parameter.
    pub fn check(&self, scenario: &'static str, value: ParamValue) -> Result<(), ParamError> {
        let kind_error = || ParamError::Type {
            scenario,
            param: self.param,
            expected: self.kind,
            got: ParamKind::of(value),
        };
        let numeric = match (self.kind, value) {
            (ParamKind::Float, ParamValue::Float(x)) => Some(x),
            // Integers widen to floats (a sweep axis `10,20` may be typed as
            // ints even where the scenario wants a float).
            (ParamKind::Float, ParamValue::Int(x)) => Some(x as f64),
            (ParamKind::Int, ParamValue::Int(x)) => Some(x as f64),
            (ParamKind::Bool, ParamValue::Bool(_))
            | (ParamKind::Selection, ParamValue::Selection(_))
            | (ParamKind::Request, ParamValue::Request(_))
            | (ParamKind::Strategy, ParamValue::Strategy(_)) => None,
            _ => return Err(kind_error()),
        };
        if let Some(x) = numeric {
            if !x.is_finite() {
                return Err(self.range_error(scenario, value));
            }
            if let Some(min) = self.min {
                if x < min {
                    return Err(self.range_error(scenario, value));
                }
            }
            if let Some(max) = self.max {
                if x > max {
                    return Err(self.range_error(scenario, value));
                }
            }
        }
        Ok(())
    }

    fn range_error(&self, scenario: &'static str, value: ParamValue) -> ParamError {
        ParamError::Range {
            scenario,
            param: self.param,
            value: value.to_string(),
            range: self.range_label(),
        }
    }
}

/// The typed parameter schema of one scenario: every parameter it consumes,
/// in the order they are documented and exported.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSchema {
    scenario: &'static str,
    params: Vec<ParamSpec>,
}

impl ParamSchema {
    /// Creates the schema of `scenario` from its parameter specs.
    ///
    /// # Panics
    ///
    /// Panics if a parameter is declared twice or a default violates its own
    /// spec (both programmer errors).
    pub fn new(scenario: &'static str, params: Vec<ParamSpec>) -> Self {
        for (i, spec) in params.iter().enumerate() {
            assert!(
                !params[..i].iter().any(|s| s.param == spec.param),
                "{scenario}: parameter {} declared twice",
                spec.param
            );
            if let Err(e) = spec.check(scenario, spec.default) {
                panic!("{scenario}: default for {} violates its own spec: {e}", spec.param);
            }
        }
        ParamSchema { scenario, params }
    }

    /// The scenario this schema belongs to.
    pub fn scenario(&self) -> &'static str {
        self.scenario
    }

    /// The parameter specs, in declaration order.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// The spec of `param`, if the scenario consumes it.
    pub fn spec(&self, param: Param) -> Option<&ParamSpec> {
        self.params.iter().find(|s| s.param == param)
    }

    /// Whether the scenario consumes `param`.
    pub fn contains(&self, param: Param) -> bool {
        self.spec(param).is_some()
    }

    /// The parameters `point` assigns that this schema does not declare.
    pub fn unknown_params(&self, point: &SweepPoint) -> Vec<Param> {
        point.assignments().iter().map(|(p, _)| *p).filter(|p| !self.contains(*p)).collect()
    }

    /// Validates `point` against this schema: every assigned parameter must
    /// be declared, of the right type and within range. Unknown parameters
    /// are an error — the silent-ignore behaviour of the old per-scenario
    /// adapters hid typos and unit mistakes; callers that really want to
    /// drive several scenarios from one spec strip the extras first with
    /// [`ParamSchema::strip_unknown`].
    pub fn validate(&self, point: &SweepPoint) -> Result<(), ParamError> {
        let unknown = self.unknown_params(point);
        if !unknown.is_empty() {
            return Err(ParamError::Unknown { scenario: self.scenario, params: unknown });
        }
        for (param, value) in point.assignments() {
            self.spec(*param).expect("declared above").check(self.scenario, *value)?;
        }
        Ok(())
    }

    /// A copy of `point` without the parameters this schema does not declare
    /// — the `--allow-unknown` escape hatch.
    pub fn strip_unknown(&self, point: &SweepPoint) -> SweepPoint {
        point.without(&self.unknown_params(point))
    }

    /// The **canonical configuration** `point` resolves to: every declared
    /// parameter with its assigned-or-default value in declaration order,
    /// rendered losslessly ([`ParamValue::canonical`]) — except
    /// [round-neutral](ParamSpec::round_neutral) parameters, which are
    /// skipped.
    ///
    /// Two points with the same canonical configuration run **identical
    /// physics** per round, however they were spelled: explicit defaults,
    /// omitted defaults, extra unknown parameters (not declared here) and
    /// differing round budgets all resolve to the same string. The sweep
    /// engine derives per-point seeds from this string and the round cache
    /// keys on it, so equal configurations share seeds, reports and cache
    /// entries across sweeps, grid positions and spec edits.
    pub fn canonical_config(&self, point: &SweepPoint) -> String {
        let mut out = String::from("scenario=");
        out.push_str(self.scenario);
        for spec in &self.params {
            if spec.round_neutral {
                continue;
            }
            let value = point.get(spec.param).unwrap_or(spec.default);
            if spec.default_transparent && value == spec.default {
                continue;
            }
            out.push(';');
            out.push_str(spec.param.key());
            out.push('=');
            out.push_str(&value.canonical());
        }
        out
    }

    /// A stable 64-bit fingerprint of the schema's *semantics*: the scenario
    /// name plus every parameter's key, kind, default, range and
    /// round-neutrality. Documentation strings are deliberately excluded —
    /// rewording a parameter's help must not invalidate cached results.
    ///
    /// The round cache stores this next to every entry, so a schema change
    /// (new parameter, changed default or range) reads as a cache miss
    /// instead of silently replaying results computed under different
    /// semantics.
    pub fn fingerprint(&self) -> u64 {
        let mut text = String::from(self.scenario);
        for spec in &self.params {
            text.push('\n');
            text.push_str(spec.param.key());
            text.push('|');
            text.push_str(spec.kind.name());
            if spec.round_neutral {
                // A round-neutral parameter's *value* never reaches a
                // round's physics, so its default and range are budgets,
                // not semantics: `--rounds 60` re-instantiates the scenario
                // with a different Rounds default and must keep hitting the
                // rounds cached under `--rounds 30`.
                text.push_str("|neutral");
                continue;
            }
            text.push('|');
            text.push_str(&spec.default.canonical());
            text.push('|');
            match (spec.min, spec.max) {
                (Some(min), Some(max)) => {
                    text.push_str(&format!("{:016x}..{:016x}", min.to_bits(), max.to_bits()));
                }
                _ => text.push('-'),
            }
            if spec.default_transparent {
                // Transparency changes which canonical strings exist, so
                // adding (or dropping) it must read as a schema change —
                // cached entries from before the flag are clean misses.
                text.push_str("|transparent");
            }
        }
        fnv1a64(text.as_bytes())
    }

    /// Renders the schema as the fixed-width table `carq-cli scenario
    /// describe` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:<10} {:<14} {:<14} description\n",
            "parameter", "type", "default", "range"
        ));
        for spec in &self.params {
            out.push_str(&format!(
                "{:<14} {:<10} {:<14} {:<14} {}\n",
                spec.param.key(),
                spec.kind.name(),
                spec.default.to_string(),
                spec.range_label(),
                spec.doc
            ));
        }
        out
    }
}

// The stable hash behind `ParamSchema::fingerprint`: its output is
// specified and never changes across releases, which an on-disk cache key
// requires.
use sim_core::fnv1a64;

/// Why a [`SweepPoint`] was rejected by a scenario's schema. Every variant
/// names the rejecting scenario, so a message bubbling out of a big sweep
/// pinpoints its origin without a stack trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// The point assigns parameters the scenario does not consume.
    Unknown {
        /// The rejecting scenario.
        scenario: &'static str,
        /// The unrecognized parameters, in assignment order.
        params: Vec<Param>,
    },
    /// A value has the wrong type.
    Type {
        /// The rejecting scenario.
        scenario: &'static str,
        /// The offending parameter.
        param: Param,
        /// The type the schema expects.
        expected: ParamKind,
        /// The type the point assigned.
        got: &'static str,
    },
    /// A numeric value is outside the accepted range (or not finite).
    Range {
        /// The rejecting scenario.
        scenario: &'static str,
        /// The offending parameter.
        param: Param,
        /// The rendered offending value.
        value: String,
        /// The rendered accepted range.
        range: String,
    },
}

impl ParamError {
    /// The scenario that rejected the point.
    pub fn scenario(&self) -> &'static str {
        match self {
            ParamError::Unknown { scenario, .. }
            | ParamError::Type { scenario, .. }
            | ParamError::Range { scenario, .. } => scenario,
        }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Unknown { scenario, params } => {
                let names: Vec<&str> = params.iter().map(Param::key).collect();
                write!(
                    f,
                    "scenario `{scenario}` does not consume parameter(s): {} \
                     (use --allow-unknown to ignore them)",
                    names.join(", ")
                )
            }
            ParamError::Type { scenario, param, expected, got } => {
                write!(
                    f,
                    "scenario `{scenario}`: parameter `{param}` expects a {} value, got {got}",
                    expected.name()
                )
            }
            ParamError::Range { scenario, param, value, range } => {
                write!(
                    f,
                    "scenario `{scenario}`: parameter `{param}`: value {value} is outside \
                     the range {range}"
                )
            }
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;
    use carq::SelectionStrategy;

    fn schema() -> ParamSchema {
        ParamSchema::new(
            "test",
            vec![
                ParamSpec::float(Param::SpeedKmh, "speed", 20.0, 1.0, 200.0),
                ParamSpec::int(Param::NCars, "cars", 3, 1, 32),
                ParamSpec::bool(Param::Cooperation, "coop", true),
                ParamSpec::selection(Param::Selection, "sel", SelectionStrategy::AllNeighbours),
            ],
        )
    }

    #[test]
    fn valid_points_pass() {
        let s = schema();
        let point = SweepPoint::new(vec![
            (Param::SpeedKmh, ParamValue::Float(30.0)),
            (Param::NCars, ParamValue::Int(5)),
            (Param::Cooperation, ParamValue::Bool(false)),
        ]);
        assert!(s.validate(&point).is_ok());
        assert!(s.validate(&SweepPoint::empty()).is_ok());
        // Ints widen into float parameters.
        let widened = SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Int(30))]);
        assert!(s.validate(&widened).is_ok());
    }

    #[test]
    fn unknown_parameters_are_listed() {
        let s = schema();
        let point = SweepPoint::new(vec![
            (Param::FileBlocks, ParamValue::Int(100)),
            (Param::Rounds, ParamValue::Int(2)),
        ]);
        let err = s.validate(&point).unwrap_err();
        assert_eq!(
            err,
            ParamError::Unknown {
                scenario: "test",
                params: vec![Param::FileBlocks, Param::Rounds]
            }
        );
        let message = err.to_string();
        assert!(message.contains("file_blocks"), "{message}");
        assert!(message.contains("rounds"), "{message}");
        assert!(message.contains("--allow-unknown"), "{message}");
        // The escape hatch strips exactly those parameters.
        let stripped = s.strip_unknown(&point);
        assert!(stripped.assignments().is_empty());
    }

    #[test]
    fn canonical_config_resolves_defaults_and_skips_round_neutral() {
        let s = ParamSchema::new(
            "canon",
            vec![
                ParamSpec::float(Param::SpeedKmh, "speed", 20.0, 1.0, 200.0),
                ParamSpec::int(Param::NCars, "cars", 3, 1, 32),
                ParamSpec::int(Param::Rounds, "rounds", 5, 1, 100).round_neutral(),
            ],
        );
        let explicit = SweepPoint::new(vec![
            (Param::NCars, ParamValue::Int(3)),
            (Param::SpeedKmh, ParamValue::Float(20.0)),
            (Param::Rounds, ParamValue::Int(50)),
        ]);
        // Omitted defaults, explicit defaults, assignment order and the
        // round budget all resolve to the same canonical configuration.
        assert_eq!(s.canonical_config(&SweepPoint::empty()), s.canonical_config(&explicit));
        let canon = s.canonical_config(&explicit);
        assert!(canon.starts_with("scenario=canon;speed_kmh=f"), "{canon}");
        assert!(canon.contains(";n_cars=i3"), "{canon}");
        assert!(!canon.contains("rounds"), "round-neutral params must be skipped: {canon}");
        // A genuinely different value changes it.
        let faster = SweepPoint::new(vec![(Param::SpeedKmh, ParamValue::Float(30.0))]);
        assert_ne!(s.canonical_config(&faster), canon);
        // Parameters outside the schema are ignored.
        let with_extra = SweepPoint::new(vec![(Param::FileBlocks, ParamValue::Int(9))]);
        assert_eq!(s.canonical_config(&with_extra), s.canonical_config(&SweepPoint::empty()));
    }

    #[test]
    fn default_transparent_params_vanish_from_canonical_at_their_default() {
        use carq::RecoveryStrategyKind;
        let with = ParamSchema::new(
            "canon",
            vec![
                ParamSpec::int(Param::NCars, "cars", 3, 1, 32),
                ParamSpec::strategy(Param::Strategy, "arq", RecoveryStrategyKind::CoopArq)
                    .default_transparent(),
            ],
        );
        let without =
            ParamSchema::new("canon", vec![ParamSpec::int(Param::NCars, "cars", 3, 1, 32)]);
        // At the default — unassigned or assigned explicitly — the canonical
        // configuration is the one the schema had before the parameter
        // existed, so historical seeds and goldens survive the schema growth.
        let explicit_default = SweepPoint::new(vec![(
            Param::Strategy,
            ParamValue::Strategy(RecoveryStrategyKind::CoopArq),
        )]);
        assert_eq!(
            with.canonical_config(&SweepPoint::empty()),
            without.canonical_config(&SweepPoint::empty())
        );
        assert_eq!(
            with.canonical_config(&explicit_default),
            without.canonical_config(&SweepPoint::empty())
        );
        // Any non-default value extends the canonical string — distinct
        // seeds and cache keys with zero cache-layer changes.
        let rival = SweepPoint::new(vec![(
            Param::Strategy,
            ParamValue::Strategy(RecoveryStrategyKind::NoCoop),
        )]);
        let canon = with.canonical_config(&rival);
        assert_ne!(canon, with.canonical_config(&SweepPoint::empty()));
        assert!(canon.ends_with(";strategy=no-coop"), "{canon}");
        // Each strategy gets its own canonical string.
        let mut canons: Vec<String> = RecoveryStrategyKind::ALL
            .iter()
            .map(|k| {
                with.canonical_config(&SweepPoint::new(vec![(
                    Param::Strategy,
                    ParamValue::Strategy(*k),
                )]))
            })
            .collect();
        canons.sort();
        canons.dedup();
        assert_eq!(canons.len(), RecoveryStrategyKind::ALL.len(), "one canonical per strategy");
    }

    #[test]
    fn fingerprint_tracks_semantics_not_docs() {
        let base = ParamSchema::new("fp", vec![ParamSpec::int(Param::NCars, "cars", 3, 1, 32)]);
        let reworded =
            ParamSchema::new("fp", vec![ParamSpec::int(Param::NCars, "platoon size", 3, 1, 32)]);
        assert_eq!(base.fingerprint(), reworded.fingerprint(), "doc rewording must not matter");
        let wider = ParamSchema::new("fp", vec![ParamSpec::int(Param::NCars, "cars", 3, 1, 64)]);
        assert_ne!(base.fingerprint(), wider.fingerprint(), "range change must matter");
        let neutral = ParamSchema::new(
            "fp",
            vec![ParamSpec::int(Param::NCars, "cars", 3, 1, 32).round_neutral()],
        );
        assert_ne!(base.fingerprint(), neutral.fingerprint(), "neutrality change must matter");
        let renamed = ParamSchema::new("fq", vec![ParamSpec::int(Param::NCars, "cars", 3, 1, 32)]);
        assert_ne!(base.fingerprint(), renamed.fingerprint(), "scenario name must matter");
        // Stable across calls (it keys an on-disk cache).
        assert_eq!(base.fingerprint(), base.fingerprint());
        // A round-neutral parameter's default is a budget, not semantics:
        // presets re-instantiate scenarios with the requested rounds as the
        // schema default, and `--rounds 60` must keep hitting the rounds
        // cached under `--rounds 30`.
        let budget_30 = ParamSchema::new(
            "fp",
            vec![ParamSpec::int(Param::Rounds, "rounds", 30, 1, 100).round_neutral()],
        );
        let budget_60 = ParamSchema::new(
            "fp",
            vec![ParamSpec::int(Param::Rounds, "rounds", 60, 1, 100).round_neutral()],
        );
        assert_eq!(budget_30.fingerprint(), budget_60.fingerprint());
        // Default-transparency changes which canonical strings a schema can
        // produce, so it must read as a schema change (clean cache misses).
        let transparent = ParamSchema::new(
            "fp",
            vec![ParamSpec::int(Param::NCars, "cars", 3, 1, 32).default_transparent()],
        );
        assert_ne!(base.fingerprint(), transparent.fingerprint(), "transparency must matter");
    }

    #[test]
    fn errors_name_the_rejecting_scenario() {
        let s = schema();
        let err =
            s.validate(&SweepPoint::new(vec![(Param::NCars, ParamValue::Float(2.5))])).unwrap_err();
        assert_eq!(err.scenario(), "test");
        assert!(err.to_string().contains("scenario `test`"), "{err}");
        let err =
            s.validate(&SweepPoint::new(vec![(Param::NCars, ParamValue::Int(0))])).unwrap_err();
        assert_eq!(err.scenario(), "test");
        assert!(err.to_string().contains("scenario `test`"), "{err}");
        let err =
            s.validate(&SweepPoint::new(vec![(Param::Rounds, ParamValue::Int(1))])).unwrap_err();
        assert_eq!(err.scenario(), "test");
    }

    #[test]
    fn type_mismatches_are_rejected() {
        let s = schema();
        let err =
            s.validate(&SweepPoint::new(vec![(Param::NCars, ParamValue::Float(2.5))])).unwrap_err();
        assert!(matches!(err, ParamError::Type { param: Param::NCars, .. }), "{err}");
        let err = s
            .validate(&SweepPoint::new(vec![(Param::Cooperation, ParamValue::Int(1))]))
            .unwrap_err();
        assert!(err.to_string().contains("expects a bool"), "{err}");
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        let s = schema();
        for bad in [ParamValue::Float(0.0), ParamValue::Float(500.0), ParamValue::Float(f64::NAN)] {
            let err = s.validate(&SweepPoint::new(vec![(Param::SpeedKmh, bad)])).unwrap_err();
            assert!(matches!(err, ParamError::Range { param: Param::SpeedKmh, .. }), "{err}");
        }
        let err =
            s.validate(&SweepPoint::new(vec![(Param::NCars, ParamValue::Int(0))])).unwrap_err();
        assert!(err.to_string().contains("1..=32"), "{err}");
    }

    #[test]
    fn specs_carry_defaults_and_lookups_work() {
        let s = schema();
        assert_eq!(s.spec(Param::SpeedKmh).unwrap().default, ParamValue::Float(20.0));
        assert_eq!(s.spec(Param::Cooperation).unwrap().default, ParamValue::Bool(true));
        assert!(s.contains(Param::NCars));
        assert!(!s.contains(Param::FileBlocks));
        assert_eq!(s.scenario(), "test");
    }

    #[test]
    fn render_lists_every_parameter() {
        let rendered = schema().render();
        for key in ["speed_kmh", "n_cars", "cooperation", "selection"] {
            assert!(rendered.contains(key), "missing {key} in:\n{rendered}");
        }
        assert!(rendered.contains("1..=32"), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_declarations_rejected() {
        let _ = ParamSchema::new(
            "dup",
            vec![
                ParamSpec::int(Param::NCars, "cars", 3, 1, 32),
                ParamSpec::int(Param::NCars, "cars", 3, 1, 32),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "violates its own spec")]
    fn invalid_default_rejected() {
        let _ = ParamSchema::new("bad", vec![ParamSpec::int(Param::NCars, "cars", 0, 1, 32)]);
    }
}
