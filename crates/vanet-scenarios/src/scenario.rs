//! The unified scenario API: one first-class interface every experiment
//! implements, one purity contract every round obeys.
//!
//! * [`Scenario`] — a named, documented experiment family: it declares the
//!   typed [`ParamSchema`] of the parameters it consumes and turns a
//!   validated [`SweepPoint`] into a runnable [`ScenarioRun`].
//! * [`ScenarioRun`] — one fully-configured experiment: a fixed number of
//!   rounds, a **pure** `run_round(round, seed)` (all randomness derives
//!   from `seed`; no interior mutability observable across rounds) and an
//!   `aggregate` that folds the per-round [`RoundReport`]s into the
//!   [`PointSummary`] metric row.
//! * [`run_rounds`] — the shared executor: derives per-round seeds with
//!   [`round_seed`] and runs rounds in parallel waves, producing results
//!   that are byte-identical at any thread count.
//!
//! The purity contract is what buys intra-point parallelism: because a
//! round is a function of `(configuration, round, seed)` alone, rounds can
//! execute shuffled, interleaved or on any number of threads without
//! changing a single exported byte.

use rand::RngCore as _;
use sim_core::StreamRng;
use vanet_stats::{PointSummary, RoundReport};
use vanet_trace::TraceRecord;

use crate::params::SweepPoint;
use crate::schema::{ParamError, ParamSchema};

/// An experiment family, discoverable by name through the
/// [`ScenarioRegistry`](crate::ScenarioRegistry).
pub trait Scenario: Send + Sync {
    /// Short name used in registries, exports and the CLI (e.g. `urban`).
    fn name(&self) -> &'static str;

    /// One-line description shown by `carq-cli scenario list`.
    fn description(&self) -> &'static str;

    /// The typed schema of the parameters this scenario consumes.
    fn schema(&self) -> &ParamSchema;

    /// Validates `point` against the schema and builds the runnable,
    /// fully-configured experiment.
    fn configure(&self, point: &SweepPoint) -> Result<Box<dyn ScenarioRun>, ParamError>;
}

/// One fully-configured experiment at one parameter point.
pub trait ScenarioRun: Send + Sync {
    /// The number of rounds this run executes (laps, passes or the AP-visit
    /// budget of a download).
    fn rounds(&self) -> u32;

    /// Runs round `round`, seeding **all** randomness from `seed`.
    ///
    /// This must be a pure function of `(self, round, seed)`: calling it
    /// twice with the same arguments returns identical reports, and calls
    /// for different rounds may happen in any order and on any thread.
    fn run_round(&self, round: u32, seed: u64) -> RoundReport;

    /// Folds the per-round reports (in round order) into the point's metric
    /// row. Implementations must ignore trailing reports past their own
    /// completion criterion, so that executors may overshoot
    /// [`ScenarioRun::is_settled`] without changing the summary.
    fn aggregate(&self, rounds: &[RoundReport]) -> PointSummary;

    /// Whether the reports collected so far already determine the outcome —
    /// an early-exit hint for open-ended runs (e.g. a download that
    /// finished well before its AP-visit budget). The default never settles.
    fn is_settled(&self, rounds_so_far: &[RoundReport]) -> bool {
        let _ = rounds_so_far;
        false
    }

    /// Runs round `round` with structured tracing enabled, returning the
    /// report together with the emitted [`TraceRecord`]s — the seam behind
    /// `carq-cli verify` and the trace tooling.
    ///
    /// Tracing must be observation-only: the report must equal what
    /// [`ScenarioRun::run_round`] returns for the same `(round, seed)` bit
    /// for bit, and the records must be a pure function of the same inputs.
    /// The default (for runs without an instrumented path) returns the
    /// untraced report and an empty trace.
    fn run_round_traced(&self, round: u32, seed: u64) -> (RoundReport, Vec<TraceRecord>) {
        (self.run_round(round, seed), Vec::new())
    }
}

/// Derives the seed of round `round` from a run's `base_seed`.
///
/// The derivation goes through a dedicated [`StreamRng`] stream
/// (`"scenario.round"`) and its per-round substream, so round seeds are a
/// pure function of `(base_seed, round)` — independent of execution order
/// and thread placement — and uncorrelated across rounds. Inside a sweep the
/// base seed is itself derived from `(master seed, point index)`, completing
/// the `(master seed, point index, round)` chain.
pub fn round_seed(base_seed: u64, round: u32) -> u64 {
    StreamRng::derive(base_seed, "scenario.round").substream(u64::from(round)).next_u64()
}

/// Runs a configured scenario's rounds — in parallel when `threads > 1` —
/// and returns their reports in round order. `threads == 0` means one
/// worker per available CPU, like `SweepEngine::new` in `vanet-sweep`.
///
/// Rounds execute in waves of `threads`; between waves the executor asks
/// [`ScenarioRun::is_settled`] whether the remaining rounds still matter.
/// Because every round seeds from [`round_seed`] alone and `aggregate`
/// ignores trailing reports, the resulting [`PointSummary`] — and any CSV
/// or JSON derived from it — is byte-identical at any thread count.
pub fn run_rounds(run: &dyn ScenarioRun, base_seed: u64, threads: usize) -> Vec<RoundReport> {
    let total = run.rounds();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    } else {
        threads
    } as u32;
    let mut reports: Vec<RoundReport> = Vec::with_capacity(total as usize);
    let mut next = 0u32;
    while next < total {
        if !reports.is_empty() && run.is_settled(&reports) {
            break;
        }
        let end = next.saturating_add(threads).min(total);
        if end - next == 1 {
            reports.push(run.run_round(next, round_seed(base_seed, next)));
        } else {
            let wave: Vec<RoundReport> = std::thread::scope(|scope| {
                let handles: Vec<_> = (next..end)
                    .map(|round| {
                        scope.spawn(move || run.run_round(round, round_seed(base_seed, round)))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("round worker panicked")).collect()
            });
            reports.extend(wave);
        }
        next = end;
    }
    reports
}

/// Convenience: configure `scenario` at `point`, run every round with
/// `threads` workers, and aggregate — the one-call path for examples, tests
/// and the CLI's single-point commands.
pub fn run_point(
    scenario: &dyn Scenario,
    point: &SweepPoint,
    seed: u64,
    threads: usize,
) -> Result<(Vec<RoundReport>, PointSummary), ParamError> {
    let run = scenario.configure(point)?;
    let reports = run_rounds(run.as_ref(), seed, threads);
    let summary = run.aggregate(&reports);
    Ok((reports, summary))
}

/// Per-flow loss percentages pooled over rounds — the shared aggregation of
/// the urban and highway scenarios, public so external scenario
/// implementations (notably `vanet-gen`'s generated scenarios) report the
/// same loss metrics as the built-ins.
#[derive(Debug, Default)]
pub struct LossSamples {
    window: Vec<f64>,
    before_pct: Vec<f64>,
    after_pct: Vec<f64>,
}

impl LossSamples {
    /// Folds one round's per-flow losses into the pooled samples. Flows
    /// whose AP window is empty (the car never entered coverage) are
    /// skipped rather than counted as lossless.
    pub fn absorb(&mut self, round: &vanet_stats::RoundResult) {
        for car in round.cars() {
            let Some(flow) = round.flow_for(car) else { continue };
            let tx = flow.tx_by_ap_in_window();
            if tx == 0 {
                continue;
            }
            self.window.push(tx as f64);
            self.before_pct.push(flow.lost_before_coop() as f64 / tx as f64 * 100.0);
            self.after_pct.push(flow.lost_after_coop() as f64 / tx as f64 * 100.0);
        }
    }

    /// The pooled metrics: mean window size, mean loss before/after
    /// cooperation, and the after-cooperation percentile spread.
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        let after = vanet_stats::Percentiles::of(&self.after_pct);
        vec![
            ("tx_window_mean", vanet_stats::mean(&self.window)),
            ("loss_before_pct_mean", vanet_stats::mean(&self.before_pct)),
            ("loss_after_pct_mean", vanet_stats::mean(&self.after_pct)),
            ("loss_after_pct_p50", after.p50),
            ("loss_after_pct_p90", after.p90),
            ("loss_after_pct_max", after.max),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A cheap pure run: metrics are functions of `(round, seed)` only.
    struct FakeRun {
        rounds: u32,
        settle_after: Option<u32>,
        calls: AtomicUsize,
    }

    impl FakeRun {
        fn new(rounds: u32) -> Self {
            FakeRun { rounds, settle_after: None, calls: AtomicUsize::new(0) }
        }
    }

    impl ScenarioRun for FakeRun {
        fn rounds(&self) -> u32 {
            self.rounds
        }

        fn run_round(&self, round: u32, seed: u64) -> RoundReport {
            self.calls.fetch_add(1, Ordering::Relaxed);
            RoundReport::new(round, seed, vanet_stats::RoundResult::default())
                .with_counter("value", (seed % 1_000) as f64)
        }

        fn aggregate(&self, rounds: &[RoundReport]) -> PointSummary {
            let cutoff = self.settle_after.unwrap_or(self.rounds) as usize;
            let total: f64 = rounds.iter().take(cutoff).filter_map(|r| r.counter("value")).sum();
            PointSummary { metrics: vec![("total", total)] }
        }

        fn is_settled(&self, rounds_so_far: &[RoundReport]) -> bool {
            self.settle_after.is_some_and(|n| rounds_so_far.len() >= n as usize)
        }
    }

    #[test]
    fn round_seeds_are_pure_and_distinct() {
        assert_eq!(round_seed(7, 0), round_seed(7, 0));
        let seeds: std::collections::BTreeSet<u64> = (0..64).map(|r| round_seed(7, r)).collect();
        assert_eq!(seeds.len(), 64, "round seeds must not collide in a small run");
        assert_ne!(round_seed(7, 0), round_seed(8, 0), "base seed must matter");
    }

    #[test]
    fn reports_come_back_in_round_order_at_any_thread_count() {
        let run = FakeRun::new(11);
        let serial = run_rounds(&run, 42, 1);
        assert_eq!(serial.len(), 11);
        for (i, report) in serial.iter().enumerate() {
            assert_eq!(report.round, i as u32);
            assert_eq!(report.seed, round_seed(42, i as u32));
        }
        for threads in [2, 4, 8, 16] {
            let parallel = run_rounds(&run, 42, threads);
            assert_eq!(serial, parallel, "thread count {threads} changed the reports");
        }
    }

    #[test]
    fn settled_runs_stop_early_but_aggregate_identically() {
        let serial = FakeRun { settle_after: Some(3), ..FakeRun::new(40) };
        let serial_reports = run_rounds(&serial, 9, 1);
        // Serial execution stops right after the settle point.
        assert_eq!(serial_reports.len(), 3);
        assert_eq!(serial.calls.load(Ordering::Relaxed), 3);

        let wide = FakeRun { settle_after: Some(3), ..FakeRun::new(40) };
        let wide_reports = run_rounds(&wide, 9, 8);
        // A wide wave may overshoot the settle point but never runs the
        // whole budget.
        let wide_calls = wide.calls.load(Ordering::Relaxed);
        assert!((3..=8).contains(&wide_calls), "ran {wide_calls} rounds");
        // ...and the aggregate ignores the overshoot.
        assert_eq!(serial.aggregate(&serial_reports), wide.aggregate(&wide_reports));
    }

    /// PIN: while *simulating*, `run_rounds` checks [`ScenarioRun::is_settled`]
    /// only between waves, so a settling run overshoots the settle point up
    /// to the next wave boundary — never further. This is deliberate:
    /// trimming mid-wave would need either speculative cancellation or a
    /// settle probe inside the wave, and both would make the executed round
    /// set depend on thread timing, breaking the byte-identical-at-any-
    /// thread-count contract. (The cached path in `vanet-sweep` replays
    /// round-by-round and already stops exactly at the settle point — see
    /// ROADMAP's settle caveat.) The aggregate ignores the overshoot, so
    /// only wasted work is at stake, bounded by one wave.
    #[test]
    fn simulating_settle_overshoot_stops_at_the_next_wave_boundary() {
        for (threads, expected) in [(1, 3), (2, 4), (3, 3), (4, 4), (5, 5), (8, 8), (64, 40)] {
            let run = FakeRun { settle_after: Some(3), ..FakeRun::new(40) };
            let reports = run_rounds(&run, 9, threads);
            let calls = run.calls.load(Ordering::Relaxed);
            assert_eq!(calls, expected, "threads {threads}: overshoot moved");
            assert_eq!(reports.len(), expected, "threads {threads}: reports mismatch calls");
            // The bound itself: never a full wave past the settle point.
            assert!(calls < 3 + threads.max(1), "threads {threads} ran {calls} rounds");
        }
    }

    #[test]
    fn run_point_validates_before_running() {
        use crate::params::{Param, ParamValue};
        let scenario = crate::urban::UrbanScenario::paper_testbed();
        let err = run_point(
            &scenario,
            &SweepPoint::new(vec![(Param::FileBlocks, ParamValue::Int(5))]),
            1,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, ParamError::Unknown { .. }));
    }
}
