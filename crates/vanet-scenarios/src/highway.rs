//! The highway drive-thru context experiment.
//!
//! The paper motivates Cooperative ARQ with the drive-thru-Internet
//! measurements of its reference \[1\]: a car passing a roadside AP on a
//! highway loses 50–60 % of the packets, depending on speed and nominal
//! sending rate. This experiment reproduces that context: a single car (or a
//! small platoon) passes one AP on a straight road at highway speed while the
//! AP sends at a configurable rate, and we report the per-pass loss
//! percentage with and without cooperation.
//!
//! Exposed through the unified [`Scenario`] API: one round of
//! [`HighwayScenario`] is one drive-by pass — the same per-pass simulation
//! the multi-AP download reuses for each AP visit.

use rand::Rng;
use sim_core::{SimDuration, SimTime, Simulation, StreamRng};
use vanet_dtn::{AccessPointApp, ApConfig};
use vanet_geo::{highway_segment, kmh_to_ms, DriverProfile, PlatoonMobility, RoadLayout};
use vanet_mac::{MediumConfig, NodeId};
use vanet_radio::DataRate;
use vanet_stats::{PointSummary, RoundReport};
use vanet_trace::{NoTrace, TraceRecord, TraceSink, VecSink};

use crate::model::{ModelConfig, VanetModel};
use crate::params::{Param, SweepPoint};
use crate::scenario::{LossSamples, Scenario, ScenarioRun};
use crate::schema::{ParamError, ParamSchema, ParamSpec};
use crate::urban::saturate_u32;
use carq::{CarqConfig, RecoveryStrategyKind};

/// Configuration of one highway drive-thru run.
#[derive(Debug, Clone)]
pub struct HighwayConfig {
    /// Vehicle speed in km/h.
    pub speed_kmh: f64,
    /// AP sending rate per car, packets per second.
    pub ap_rate_pps: f64,
    /// Payload per packet in bytes.
    pub payload_bytes: u32,
    /// Number of cars in the platoon (1 reproduces the reference
    /// measurements; more cars exercise cooperation at speed).
    pub n_cars: usize,
    /// Number of passes to average over.
    pub passes: u32,
    /// Length of the simulated road segment in metres (the AP sits at its
    /// centre).
    pub road_length_m: f64,
    /// PHY rate.
    pub data_rate: DataRate,
    /// Whether the cars run C-ARQ.
    pub cooperation_enabled: bool,
    /// The recovery strategy the cars run after leaving coverage.
    pub strategy: RecoveryStrategyKind,
}

impl HighwayConfig {
    /// The drive-thru reference setting: one car at 100 km/h, 5 pkt/s,
    /// 1000-byte payloads.
    pub fn drive_thru_reference() -> Self {
        HighwayConfig {
            speed_kmh: 100.0,
            ap_rate_pps: 5.0,
            payload_bytes: 1_000,
            n_cars: 1,
            passes: 10,
            road_length_m: 2_000.0,
            data_rate: DataRate::Mbps1,
            cooperation_enabled: false,
            strategy: RecoveryStrategyKind::CoopArq,
        }
    }

    /// Overrides the speed.
    pub fn with_speed_kmh(mut self, speed: f64) -> Self {
        self.speed_kmh = speed;
        self
    }

    /// Overrides the AP rate.
    pub fn with_rate_pps(mut self, rate: f64) -> Self {
        self.ap_rate_pps = rate;
        self
    }

    /// Uses a platoon of `n` cooperating cars.
    pub fn with_cooperating_platoon(mut self, n: usize) -> Self {
        self.n_cars = n;
        self.cooperation_enabled = true;
        self
    }

    /// Overrides the number of passes.
    pub fn with_passes(mut self, passes: u32) -> Self {
        self.passes = passes;
        self
    }

    /// Overrides the recovery strategy.
    pub fn with_strategy(mut self, strategy: RecoveryStrategyKind) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Per-run invariants of a drive-by pass, hoisted out of the per-round hot
/// path and shared by the highway scenario and the multi-AP download: the
/// road layout, the configuration templates and the platoon roster never
/// change between passes — only the per-pass seeds do.
#[derive(Debug, Clone)]
pub(crate) struct PassInvariants {
    layout: RoadLayout,
    medium_template: MediumConfig,
    carq: CarqConfig,
    drivers: Vec<DriverProfile>,
    car_ids: Vec<NodeId>,
    speed_ms: f64,
    horizon: SimTime,
}

impl PassInvariants {
    pub(crate) fn of(cfg: &HighwayConfig) -> Self {
        let layout = highway_segment(cfg.road_length_m, cfg.road_length_m);
        let speed_ms = kmh_to_ms(cfg.speed_kmh);
        // Simulate until the last car has cleared the road plus a margin for
        // the Cooperative-ARQ phase.
        let travel_secs = cfg.road_length_m / speed_ms + 20.0;
        PassInvariants {
            layout,
            medium_template: MediumConfig::highway(),
            carq: CarqConfig::paper_prototype()
                .with_ap_timeout(SimDuration::from_secs(3))
                .with_strategy(cfg.strategy),
            drivers: vec![DriverProfile::experienced(); cfg.n_cars],
            car_ids: (1..=cfg.n_cars as u32).map(NodeId::new).collect(),
            speed_ms,
            horizon: SimTime::from_secs_f64(travel_secs),
        }
    }
}

/// Simulates one drive-by pass of `cfg`, seeding all randomness from `seed`.
/// Shared by the highway scenario (one pass per round) and the multi-AP
/// download (one pass per AP visit). `inv` must be [`PassInvariants::of`]
/// the same `cfg`.
pub(crate) fn simulate_pass(
    cfg: &HighwayConfig,
    inv: &PassInvariants,
    round: u32,
    seed: u64,
) -> RoundReport {
    simulate_pass_sink(cfg, inv, round, seed, &mut NoTrace)
}

/// [`simulate_pass`] with tracing enabled, collecting the emitted records.
pub(crate) fn simulate_pass_traced(
    cfg: &HighwayConfig,
    inv: &PassInvariants,
    round: u32,
    seed: u64,
) -> (RoundReport, Vec<TraceRecord>) {
    let mut sink = VecSink::new();
    let report = simulate_pass_sink(cfg, inv, round, seed, &mut sink);
    (report, sink.into_records())
}

/// The pass body, generic over the trace sink so the traced and untraced
/// paths share one implementation (and cannot drift apart).
fn simulate_pass_sink<S: TraceSink>(
    cfg: &HighwayConfig,
    inv: &PassInvariants,
    round: u32,
    seed: u64,
    sink: &mut S,
) -> RoundReport {
    let pass_rng = StreamRng::derive(seed, "highway-pass");
    let mut mobility_rng = pass_rng.substream(1);
    let shadow_seed = pass_rng.substream(2).gen::<u64>();
    let model_seed = pass_rng.substream(3).gen::<u64>();

    let mut medium = inv.medium_template.clone();
    medium.ap_vehicle.shadowing_seed = shadow_seed;

    let model_config = ModelConfig {
        medium,
        data_rate: cfg.data_rate,
        carq: inv.carq.clone(),
        position_update_interval: SimDuration::from_millis(50),
        seed: model_seed,
        cooperation_enabled: cfg.cooperation_enabled,
    };
    let mut model = VanetModel::with_sink(model_config, sink);

    let ap_config = ApConfig {
        cars: inv.car_ids.clone(),
        packets_per_second_per_car: cfg.ap_rate_pps,
        payload_bytes: cfg.payload_bytes,
        policy: vanet_dtn::ApSchedulingPolicy::FreshDataOnly,
    };
    model.add_access_point(
        NodeId::new(0),
        inv.layout.access_points[0],
        AccessPointApp::new(ap_config),
    );

    let platoon = PlatoonMobility::new(
        inv.layout.path.clone(),
        inv.speed_ms,
        &inv.drivers,
        &mut mobility_rng,
    );
    for (i, id) in inv.car_ids.iter().enumerate() {
        model.add_car(*id, platoon.member(i).clone());
    }

    let mut sim = Simulation::new(model).with_horizon(inv.horizon).with_event_budget(5_000_000);
    for (t, ev) in sim.model().initial_events() {
        sim.schedule_at(t, ev);
    }
    sim.run();
    let events = sim.processed_events();
    let model = sim.into_model();

    let node_stats = model.node_stats();
    let sum = |f: fn(&carq::CarqNodeStats) -> u64| -> f64 {
        node_stats.iter().map(|s| f(&s.stats) as f64).sum()
    };
    RoundReport::new(round, seed, model.round_result())
        .with_counter("requests_sent", sum(|s| s.requests_sent))
        .with_counter("coop_data_sent", sum(|s| s.coop_data_sent))
        .with_counter("recovered_via_coop", sum(|s| s.recovered_via_coop))
        .with_counter("responses_suppressed", sum(|s| s.responses_suppressed))
        .with_counter("medium_frames_sent", model.medium_stats().frames_sent as f64)
        .with_counter("sim_events", events as f64)
        .with_counter("csma_deferrals", model.csma_deferrals() as f64)
        .with_counter(
            "arq_retransmissions",
            model.ap_retransmissions_queued() as f64 + sum(|s| s.coop_data_sent),
        )
        .with_counter("buffer_evictions", sum(|s| s.buffer_evictions))
        .with_counter("strategy_decisions", model.strategy_decisions() as f64)
}

/// The highway drive-thru as a registry-discoverable [`Scenario`].
#[derive(Debug)]
pub struct HighwayScenario {
    base: HighwayConfig,
    schema: ParamSchema,
}

impl HighwayScenario {
    /// A scenario sweeping around `base`.
    pub fn new(base: HighwayConfig) -> Self {
        let schema = ParamSchema::new(
            "highway",
            vec![
                ParamSpec::float(
                    Param::SpeedKmh,
                    "vehicle speed in km/h",
                    base.speed_kmh,
                    1.0,
                    250.0,
                ),
                ParamSpec::float(
                    Param::ApRatePps,
                    "AP sending rate per car (packets/s)",
                    base.ap_rate_pps,
                    0.1,
                    1_000.0,
                ),
                ParamSpec::int(
                    Param::NCars,
                    "number of cars in the platoon",
                    base.n_cars as u64,
                    1,
                    32,
                ),
                ParamSpec::int(
                    Param::PayloadBytes,
                    "payload per data packet in bytes",
                    u64::from(base.payload_bytes),
                    1,
                    65_535,
                ),
                // Default-transparent: at the default (the paper's C-ARQ)
                // points keep the canonical configuration this schema had
                // before the parameter existed, so historical seeds and
                // cache entries survive; rival strategies get distinct
                // canonicals (and cache keys) automatically.
                ParamSpec::strategy(
                    Param::Strategy,
                    "recovery strategy run after leaving coverage",
                    base.strategy,
                )
                .default_transparent(),
                ParamSpec::bool(
                    Param::Cooperation,
                    "whether the platoon runs C-ARQ",
                    base.cooperation_enabled,
                ),
                // Round-neutral: one drive-by is independent of how many
                // passes are averaged, so extending `--rounds` resumes from
                // the cached prefix.
                ParamSpec::int(
                    Param::Rounds,
                    "drive-by passes to average over",
                    u64::from(base.passes),
                    1,
                    10_000,
                )
                .round_neutral(),
            ],
        );
        HighwayScenario { base, schema }
    }

    /// The scenario at the drive-thru reference configuration.
    pub fn drive_thru() -> Self {
        HighwayScenario::new(HighwayConfig::drive_thru_reference())
    }

    /// The base configuration `configure` overrides.
    pub fn base(&self) -> &HighwayConfig {
        &self.base
    }

    /// The configuration a point runs.
    pub fn config_for(&self, point: &SweepPoint) -> Result<HighwayConfig, ParamError> {
        self.schema.validate(point)?;
        let mut cfg = self.base.clone();
        apply_pass_overrides(&mut cfg, point);
        if let Some(passes) = point.get(Param::Rounds).and_then(|v| v.as_u64()) {
            cfg.passes = saturate_u32(passes);
        }
        Ok(cfg)
    }
}

/// Applies the drive-by parameter overrides a point assigns to `cfg` —
/// the override set shared by the highway scenario and the multi-AP
/// download's per-visit pass configuration.
pub(crate) fn apply_pass_overrides(cfg: &mut HighwayConfig, point: &SweepPoint) {
    if let Some(speed) = point.get(Param::SpeedKmh).and_then(|v| v.as_f64()) {
        cfg.speed_kmh = speed;
    }
    if let Some(rate) = point.get(Param::ApRatePps).and_then(|v| v.as_f64()) {
        cfg.ap_rate_pps = rate;
    }
    if let Some(n) = point.get(Param::NCars).and_then(|v| v.as_u64()) {
        cfg.n_cars = n as usize;
    }
    if let Some(payload) = point.get(Param::PayloadBytes).and_then(|v| v.as_u64()) {
        cfg.payload_bytes = saturate_u32(payload);
    }
    if let Some(coop) = point.get(Param::Cooperation).and_then(|v| v.as_bool()) {
        cfg.cooperation_enabled = coop;
    }
    if let Some(strategy) = point.get(Param::Strategy).and_then(|v| v.as_strategy()) {
        cfg.strategy = strategy;
    }
}

impl Scenario for HighwayScenario {
    fn name(&self) -> &'static str {
        "highway"
    }

    fn description(&self) -> &'static str {
        "drive-thru-Internet context: loss rates of cars passing a roadside AP at highway speed"
    }

    fn schema(&self) -> &ParamSchema {
        &self.schema
    }

    fn configure(&self, point: &SweepPoint) -> Result<Box<dyn ScenarioRun>, ParamError> {
        Ok(Box::new(HighwayRun::new(self.config_for(point)?)))
    }
}

/// One configured highway experiment: [`ScenarioRun::run_round`] simulates
/// one drive-by pass.
#[derive(Debug, Clone)]
pub struct HighwayRun {
    config: HighwayConfig,
    invariants: PassInvariants,
}

impl HighwayRun {
    /// Creates a run.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (no cars, no passes,
    /// non-positive speed or rate). Configurations built through
    /// [`HighwayScenario::configure`] are schema-checked and cannot trip
    /// these.
    pub fn new(config: HighwayConfig) -> Self {
        assert!(config.n_cars >= 1, "at least one car required");
        assert!(config.passes >= 1, "at least one pass required");
        assert!(config.speed_kmh > 0.0, "speed must be positive");
        assert!(config.ap_rate_pps > 0.0, "rate must be positive");
        let invariants = PassInvariants::of(&config);
        HighwayRun { config, invariants }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HighwayConfig {
        &self.config
    }
}

impl ScenarioRun for HighwayRun {
    fn rounds(&self) -> u32 {
        self.config.passes
    }

    fn run_round(&self, round: u32, seed: u64) -> RoundReport {
        simulate_pass(&self.config, &self.invariants, round, seed)
    }

    fn run_round_traced(&self, round: u32, seed: u64) -> (RoundReport, Vec<TraceRecord>) {
        simulate_pass_traced(&self.config, &self.invariants, round, seed)
    }

    fn aggregate(&self, rounds: &[RoundReport]) -> PointSummary {
        let mut losses = LossSamples::default();
        for report in rounds {
            losses.absorb(&report.result);
        }
        PointSummary { metrics: losses.metrics() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamValue;
    use crate::scenario::run_rounds;

    fn summary_for(cfg: HighwayConfig, seed: u64) -> PointSummary {
        let run = HighwayRun::new(cfg);
        let reports = run_rounds(&run, seed, 1);
        run.aggregate(&reports)
    }

    #[test]
    fn single_pass_produces_a_window_with_losses() {
        let run = HighwayRun::new(HighwayConfig::drive_thru_reference().with_passes(1));
        let report = run.run_round(0, 3);
        let flow = report.result.flow_for(NodeId::new(1)).unwrap();
        assert!(flow.tx_by_ap_in_window() > 10, "window {}", flow.tx_by_ap_in_window());
        assert!(flow.lost_before_coop() > 0);
    }

    #[test]
    fn passes_are_pure_functions_of_the_seed() {
        let run = HighwayRun::new(HighwayConfig::drive_thru_reference().with_passes(2));
        assert_eq!(run.run_round(0, 11), run.run_round(0, 11));
        assert_ne!(run.run_round(0, 11).result, run.run_round(0, 12).result);
    }

    #[test]
    fn faster_cars_have_smaller_windows() {
        let slow = summary_for(
            HighwayConfig::drive_thru_reference().with_speed_kmh(60.0).with_passes(2),
            7,
        );
        let fast = summary_for(
            HighwayConfig::drive_thru_reference().with_speed_kmh(140.0).with_passes(2),
            7,
        );
        assert!(fast.get("tx_window_mean").unwrap() < slow.get("tx_window_mean").unwrap());
    }

    #[test]
    fn cooperating_platoon_reduces_losses_at_speed() {
        let solo = summary_for(HighwayConfig::drive_thru_reference().with_passes(3), 5);
        let platoon = summary_for(
            HighwayConfig::drive_thru_reference().with_cooperating_platoon(3).with_passes(3),
            5,
        );
        assert_eq!(
            solo.get("loss_before_pct_mean"),
            solo.get("loss_after_pct_mean"),
            "no cooperation possible alone"
        );
        assert!(
            platoon.get("loss_after_pct_mean").unwrap()
                < platoon.get("loss_before_pct_mean").unwrap()
        );
    }

    #[test]
    fn scenario_overrides_and_validation() {
        let scenario = HighwayScenario::drive_thru();
        let cfg = scenario
            .config_for(&SweepPoint::new(vec![
                (Param::SpeedKmh, ParamValue::Float(120.0)),
                (Param::ApRatePps, ParamValue::Float(10.0)),
                (Param::NCars, ParamValue::Int(3)),
                (Param::Cooperation, ParamValue::Bool(true)),
                (Param::Strategy, ParamValue::Strategy(RecoveryStrategyKind::NetCoded)),
                (Param::Rounds, ParamValue::Int(2)),
            ]))
            .unwrap();
        assert_eq!(cfg.speed_kmh, 120.0);
        assert_eq!(cfg.ap_rate_pps, 10.0);
        assert_eq!(cfg.n_cars, 3);
        assert!(cfg.cooperation_enabled);
        assert_eq!(cfg.strategy, RecoveryStrategyKind::NetCoded);
        assert_eq!(cfg.passes, 2);
        // The strategy reaches the per-pass protocol configuration.
        assert_eq!(
            PassInvariants::of(&cfg).carq.strategy,
            RecoveryStrategyKind::NetCoded,
            "strategy must reach the CarqConfig every pass runs"
        );
        // Selection is an urban-only parameter: the highway schema rejects it.
        let err = scenario
            .config_for(&SweepPoint::new(vec![(
                Param::Selection,
                ParamValue::Selection(carq::SelectionStrategy::AllNeighbours),
            )]))
            .unwrap_err();
        assert!(matches!(err, ParamError::Unknown { scenario: "highway", .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least one car")]
    fn zero_cars_rejected() {
        let mut cfg = HighwayConfig::drive_thru_reference();
        cfg.n_cars = 0;
        let _ = HighwayRun::new(cfg);
    }
}
