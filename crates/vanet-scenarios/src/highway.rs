//! The highway drive-thru context experiment.
//!
//! The paper motivates Cooperative ARQ with the drive-thru-Internet
//! measurements of its reference [1]: a car passing a roadside AP on a
//! highway loses 50–60 % of the packets, depending on speed and nominal
//! sending rate. This experiment reproduces that context: a single car (or a
//! small platoon) passes one AP on a straight road at highway speed while the
//! AP sends at a configurable rate, and we report the per-pass loss
//! percentage with and without cooperation.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime, Simulation, StreamRng};
use vanet_dtn::{AccessPointApp, ApConfig};
use vanet_geo::{highway_segment, kmh_to_ms, DriverProfile, PlatoonMobility};
use vanet_mac::{MediumConfig, NodeId};
use vanet_radio::DataRate;
use vanet_stats::RoundResult;

use crate::model::{ModelConfig, VanetModel};
use carq::CarqConfig;
use rand::Rng;

/// Configuration of one highway drive-thru run.
#[derive(Debug, Clone)]
pub struct HighwayConfig {
    /// Vehicle speed in km/h.
    pub speed_kmh: f64,
    /// AP sending rate per car, packets per second.
    pub ap_rate_pps: f64,
    /// Payload per packet in bytes.
    pub payload_bytes: u32,
    /// Number of cars in the platoon (1 reproduces the reference
    /// measurements; more cars exercise cooperation at speed).
    pub n_cars: usize,
    /// Number of passes to average over.
    pub passes: u32,
    /// Master seed.
    pub master_seed: u64,
    /// Length of the simulated road segment in metres (the AP sits at its
    /// centre).
    pub road_length_m: f64,
    /// PHY rate.
    pub data_rate: DataRate,
    /// Whether the cars run C-ARQ.
    pub cooperation_enabled: bool,
}

impl HighwayConfig {
    /// The drive-thru reference setting: one car at 100 km/h, 5 pkt/s,
    /// 1000-byte payloads.
    pub fn drive_thru_reference() -> Self {
        HighwayConfig {
            speed_kmh: 100.0,
            ap_rate_pps: 5.0,
            payload_bytes: 1_000,
            n_cars: 1,
            passes: 10,
            master_seed: 0xd21e,
            road_length_m: 2_000.0,
            data_rate: DataRate::Mbps1,
            cooperation_enabled: false,
        }
    }

    /// Overrides the speed.
    pub fn with_speed_kmh(mut self, speed: f64) -> Self {
        self.speed_kmh = speed;
        self
    }

    /// Overrides the AP rate.
    pub fn with_rate_pps(mut self, rate: f64) -> Self {
        self.ap_rate_pps = rate;
        self
    }

    /// Uses a platoon of `n` cooperating cars.
    pub fn with_cooperating_platoon(mut self, n: usize) -> Self {
        self.n_cars = n;
        self.cooperation_enabled = true;
        self
    }

    /// Overrides the number of passes.
    pub fn with_passes(mut self, passes: u32) -> Self {
        self.passes = passes;
        self
    }
}

/// Aggregate outcome of a highway experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HighwayObservation {
    /// Vehicle speed in km/h.
    pub speed_kmh: f64,
    /// AP sending rate per car (packets per second).
    pub ap_rate_pps: f64,
    /// Mean packets transmitted to a car within its reception window.
    pub mean_window_packets: f64,
    /// Mean loss percentage before cooperation.
    pub loss_pct_before: f64,
    /// Mean loss percentage after cooperation (equals `loss_pct_before`
    /// when cooperation is disabled or the platoon has a single car).
    pub loss_pct_after: f64,
}

/// The highway experiment runner.
#[derive(Debug, Clone)]
pub struct HighwayExperiment {
    config: HighwayConfig,
}

impl HighwayExperiment {
    /// Creates a runner.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (no cars, no passes,
    /// non-positive speed or rate).
    pub fn new(config: HighwayConfig) -> Self {
        assert!(config.n_cars >= 1, "at least one car required");
        assert!(config.passes >= 1, "at least one pass required");
        assert!(config.speed_kmh > 0.0, "speed must be positive");
        assert!(config.ap_rate_pps > 0.0, "rate must be positive");
        HighwayExperiment { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HighwayConfig {
        &self.config
    }

    /// Runs a single pass and returns its raw observations.
    pub fn run_pass(&self, pass: u32) -> RoundResult {
        let cfg = &self.config;
        let layout = highway_segment(cfg.road_length_m, cfg.road_length_m);
        let speed = kmh_to_ms(cfg.speed_kmh);

        let pass_rng =
            StreamRng::derive(cfg.master_seed, "highway-pass").substream(u64::from(pass));
        let mut mobility_rng = pass_rng.substream(1);
        let shadow_seed = pass_rng.substream(2).gen::<u64>();
        let model_seed = pass_rng.substream(3).gen::<u64>();

        let mut medium = MediumConfig::highway();
        medium.ap_vehicle = medium.ap_vehicle.clone().with_shadowing_seed(shadow_seed);

        let model_config = ModelConfig {
            medium,
            data_rate: cfg.data_rate,
            carq: CarqConfig::paper_prototype().with_ap_timeout(SimDuration::from_secs(3)),
            position_update_interval: SimDuration::from_millis(50),
            seed: model_seed,
            cooperation_enabled: cfg.cooperation_enabled,
        };
        let mut model = VanetModel::new(model_config);

        let car_ids: Vec<NodeId> = (1..=cfg.n_cars as u32).map(NodeId::new).collect();
        let ap_config = ApConfig {
            cars: car_ids.clone(),
            packets_per_second_per_car: cfg.ap_rate_pps,
            payload_bytes: cfg.payload_bytes,
            policy: vanet_dtn::ApSchedulingPolicy::FreshDataOnly,
        };
        model.add_access_point(
            NodeId::new(0),
            layout.access_points[0],
            AccessPointApp::new(ap_config),
        );

        let drivers = vec![DriverProfile::experienced(); cfg.n_cars];
        let platoon = PlatoonMobility::new(layout.path.clone(), speed, &drivers, &mut mobility_rng);
        for (i, id) in car_ids.iter().enumerate() {
            model.add_car(*id, platoon.member(i).clone());
        }

        // Simulate until the last car has cleared the road plus a margin for
        // the Cooperative-ARQ phase.
        let travel_secs = cfg.road_length_m / speed + 20.0;
        let mut sim = Simulation::new(model)
            .with_horizon(SimTime::from_secs_f64(travel_secs))
            .with_event_budget(5_000_000);
        for (t, ev) in sim.model().initial_events() {
            sim.schedule_at(t, ev);
        }
        sim.run();
        sim.into_model().round_result()
    }

    /// Runs all passes and aggregates loss percentages.
    pub fn run(&self) -> HighwayObservation {
        let mut window = Vec::new();
        let mut before = Vec::new();
        let mut after = Vec::new();
        for pass in 0..self.config.passes {
            let round = self.run_pass(pass);
            for car in round.cars() {
                let flow = round.flow_for(car).expect("flow exists");
                let tx = flow.tx_by_ap_in_window();
                if tx == 0 {
                    continue;
                }
                window.push(tx as f64);
                before.push(flow.lost_before_coop() as f64 / tx as f64 * 100.0);
                after.push(flow.lost_after_coop() as f64 / tx as f64 * 100.0);
            }
        }
        HighwayObservation {
            speed_kmh: self.config.speed_kmh,
            ap_rate_pps: self.config.ap_rate_pps,
            mean_window_packets: vanet_stats::mean(&window),
            loss_pct_before: vanet_stats::mean(&before),
            loss_pct_after: vanet_stats::mean(&after),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pass_produces_a_window_with_losses() {
        let experiment =
            HighwayExperiment::new(HighwayConfig::drive_thru_reference().with_passes(1));
        let round = experiment.run_pass(0);
        let flow = round.flow_for(NodeId::new(1)).unwrap();
        assert!(flow.tx_by_ap_in_window() > 10, "window {}", flow.tx_by_ap_in_window());
        assert!(flow.lost_before_coop() > 0);
    }

    #[test]
    fn faster_cars_have_smaller_windows() {
        let slow = HighwayExperiment::new(
            HighwayConfig::drive_thru_reference().with_speed_kmh(60.0).with_passes(2),
        )
        .run();
        let fast = HighwayExperiment::new(
            HighwayConfig::drive_thru_reference().with_speed_kmh(140.0).with_passes(2),
        )
        .run();
        assert!(fast.mean_window_packets < slow.mean_window_packets);
    }

    #[test]
    fn cooperating_platoon_reduces_losses_at_speed() {
        let solo =
            HighwayExperiment::new(HighwayConfig::drive_thru_reference().with_passes(3)).run();
        let platoon = HighwayExperiment::new(
            HighwayConfig::drive_thru_reference().with_cooperating_platoon(3).with_passes(3),
        )
        .run();
        assert_eq!(solo.loss_pct_before, solo.loss_pct_after, "no cooperation possible alone");
        assert!(platoon.loss_pct_after < platoon.loss_pct_before);
    }

    #[test]
    #[should_panic(expected = "at least one car")]
    fn zero_cars_rejected() {
        let mut cfg = HighwayConfig::drive_thru_reference();
        cfg.n_cars = 0;
        let _ = HighwayExperiment::new(cfg);
    }
}
