//! The paper's urban testbed (Figure 2), reproduced in simulation.
//!
//! Three cars drive a city-block loop at about 20 km/h past an access point
//! whose antenna sits on a first-floor office window. The AP continuously
//! transmits numbered 1000-byte packets to each car at 5 packets per second
//! per car, everything at 1 Mbps. Each of the 30 rounds is one lap: the
//! platoon enters coverage, crosses it, leaves it, and performs the
//! Cooperative-ARQ phase in the dark part of the loop.
//!
//! The experiment is exposed through the unified [`Scenario`] API:
//! [`UrbanScenario`] declares the typed parameter schema, and the
//! [`ScenarioRun`] it configures runs one lap per round — a pure function
//! of `(round, seed)`.

use rand::Rng;
use sim_core::{RunOutcome, SimTime, Simulation, StreamRng};
use vanet_dtn::{AccessPointApp, ApConfig, ApSchedulingPolicy};
use vanet_geo::{
    kmh_to_ms, urban_testbed_block, urban_testbed_loop, DriverProfile, PathMobility,
    PlatoonMobility, RoadLayout,
};
use vanet_mac::{MediumConfig, NodeId};
use vanet_radio::{Building, DataRate, ObstacleMap};
use vanet_stats::{mean, PointSummary, RoundReport};
use vanet_trace::{NoTrace, TraceRecord, TraceSink, VecSink};

use crate::model::{ModelConfig, VanetModel};
use crate::params::{Param, ParamValue, SweepPoint};
use crate::scenario::{LossSamples, Scenario, ScenarioRun};
use crate::schema::{ParamError, ParamSchema, ParamSpec};

use carq::CarqConfig;
use sim_core::SimDuration;

/// Configuration of the urban experiment. This is the *base* configuration;
/// per-point overrides arrive through [`UrbanScenario::configure`] and all
/// randomness derives from the per-round seed.
#[derive(Debug, Clone)]
pub struct UrbanConfig {
    /// Number of experiment rounds (laps); the paper uses 30.
    pub rounds: u32,
    /// Number of cars in the platoon; the paper uses 3.
    pub n_cars: usize,
    /// Platoon cruise speed in km/h; the paper reports "about 20 Km/h".
    pub speed_kmh: f64,
    /// Driver profiles, leader first. Defaults model the paper's description
    /// (the car-2 driver was the least experienced).
    pub drivers: Vec<DriverProfile>,
    /// Protocol configuration run by every car.
    pub carq: CarqConfig,
    /// Wireless medium configuration.
    pub medium: MediumConfig,
    /// AP sending rate per car in packets per second (5 in the paper).
    pub ap_rate_pps: f64,
    /// Data payload per packet in bytes (1000 in the paper).
    pub payload_bytes: u32,
    /// PHY rate (1 Mbps in the paper).
    pub data_rate: DataRate,
    /// AP scheduling policy (fresh data only in the paper).
    pub ap_policy: ApSchedulingPolicy,
    /// Whether cars cooperate. Disable for the no-cooperation baseline.
    pub cooperation_enabled: bool,
    /// Fraction of a lap to simulate per round. The C-ARQ phase completes
    /// shortly after the platoon leaves coverage, so simulating the full dark
    /// part of the lap is unnecessary; 0.7 leaves ample margin.
    pub lap_fraction: f64,
}

impl UrbanConfig {
    /// The paper's testbed configuration.
    pub fn paper_testbed() -> Self {
        UrbanConfig {
            rounds: 30,
            n_cars: 3,
            speed_kmh: 20.0,
            drivers: vec![
                DriverProfile::experienced(),
                DriverProfile::inexperienced(),
                DriverProfile::default(),
            ],
            carq: CarqConfig::paper_prototype(),
            medium: MediumConfig::urban_testbed(),
            ap_rate_pps: 5.0,
            payload_bytes: 1_000,
            data_rate: DataRate::Mbps1,
            ap_policy: ApSchedulingPolicy::FreshDataOnly,
            cooperation_enabled: true,
            lap_fraction: 0.7,
        }
    }

    /// Disables cooperation (no-coop baseline).
    pub fn without_cooperation(mut self) -> Self {
        self.cooperation_enabled = false;
        self
    }

    /// Overrides the number of rounds.
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// Overrides the protocol configuration.
    pub fn with_carq(mut self, carq: CarqConfig) -> Self {
        self.carq = carq;
        self
    }

    /// Overrides the platoon size, reusing default driver profiles for the
    /// extra cars.
    pub fn with_platoon_size(mut self, n_cars: usize) -> Self {
        self.n_cars = n_cars;
        while self.drivers.len() < n_cars {
            self.drivers.push(DriverProfile::default());
        }
        self.drivers.truncate(n_cars.max(1));
        self
    }
}

/// Narrows a sweep value to the `u32` the configs use, saturating rather
/// than wrapping.
pub(crate) fn saturate_u32(value: u64) -> u32 {
    u32::try_from(value).unwrap_or(u32::MAX)
}

/// The urban testbed as a registry-discoverable [`Scenario`].
#[derive(Debug)]
pub struct UrbanScenario {
    base: UrbanConfig,
    schema: ParamSchema,
}

impl UrbanScenario {
    /// A scenario sweeping around `base`.
    pub fn new(base: UrbanConfig) -> Self {
        let schema = ParamSchema::new(
            "urban",
            vec![
                ParamSpec::float(
                    Param::SpeedKmh,
                    "platoon cruise speed in km/h",
                    base.speed_kmh,
                    1.0,
                    200.0,
                ),
                ParamSpec::int(
                    Param::NCars,
                    "number of cars in the platoon",
                    base.n_cars as u64,
                    1,
                    32,
                ),
                ParamSpec::float(
                    Param::ApRatePps,
                    "AP sending rate per car (packets/s)",
                    base.ap_rate_pps,
                    0.1,
                    1_000.0,
                ),
                ParamSpec::int(
                    Param::PayloadBytes,
                    "payload per data packet in bytes",
                    u64::from(base.payload_bytes),
                    1,
                    65_535,
                ),
                ParamSpec::selection(
                    Param::Selection,
                    "cooperator-selection strategy",
                    base.carq.selection,
                ),
                ParamSpec::request(
                    Param::Request,
                    "REQUEST strategy (per-packet or batched)",
                    base.carq.request_strategy,
                ),
                // Default-transparent: at the default (the paper's C-ARQ)
                // the canonical configuration is the one this schema had
                // before the parameter existed, so historical seeds, cache
                // entries and golden exports survive; rival strategies get
                // distinct canonicals (and cache keys) automatically.
                ParamSpec::strategy(
                    Param::Strategy,
                    "recovery strategy run after leaving coverage",
                    base.carq.strategy,
                )
                .default_transparent(),
                ParamSpec::bool(
                    Param::Cooperation,
                    "whether the platoon runs C-ARQ",
                    base.cooperation_enabled,
                ),
                // Round-neutral: a lap's physics never depends on how
                // many laps the experiment runs, so extending `--rounds`
                // resumes from the cached prefix.
                ParamSpec::int(
                    Param::Rounds,
                    "experiment rounds (laps); the paper uses 30",
                    u64::from(base.rounds),
                    1,
                    10_000,
                )
                .round_neutral(),
            ],
        );
        UrbanScenario { base, schema }
    }

    /// The scenario at the paper's testbed configuration.
    pub fn paper_testbed() -> Self {
        UrbanScenario::new(UrbanConfig::paper_testbed())
    }

    /// The base configuration `configure` overrides.
    pub fn base(&self) -> &UrbanConfig {
        &self.base
    }

    /// The configuration a point runs: the base with the point's overrides.
    /// Callers outside `configure` (tests, benches) can inspect it.
    pub fn config_for(&self, point: &SweepPoint) -> Result<UrbanConfig, ParamError> {
        self.schema.validate(point)?;
        let mut cfg = self.base.clone();
        if let Some(speed) = point.get(Param::SpeedKmh).and_then(|v| v.as_f64()) {
            cfg.speed_kmh = speed;
        }
        if let Some(n) = point.get(Param::NCars).and_then(|v| v.as_u64()) {
            cfg = cfg.with_platoon_size(n as usize);
        }
        if let Some(rate) = point.get(Param::ApRatePps).and_then(|v| v.as_f64()) {
            cfg.ap_rate_pps = rate;
        }
        if let Some(payload) = point.get(Param::PayloadBytes).and_then(|v| v.as_u64()) {
            cfg.payload_bytes = saturate_u32(payload);
            cfg.carq.expected_payload_bytes = saturate_u32(payload);
        }
        if let Some(ParamValue::Selection(selection)) = point.get(Param::Selection) {
            cfg.carq.selection = selection;
        }
        if let Some(ParamValue::Request(request)) = point.get(Param::Request) {
            cfg.carq.request_strategy = request;
        }
        if let Some(strategy) = point.get(Param::Strategy).and_then(|v| v.as_strategy()) {
            cfg.carq.strategy = strategy;
        }
        if let Some(coop) = point.get(Param::Cooperation).and_then(|v| v.as_bool()) {
            cfg.cooperation_enabled = coop;
        }
        if let Some(rounds) = point.get(Param::Rounds).and_then(|v| v.as_u64()) {
            cfg.rounds = saturate_u32(rounds);
        }
        Ok(cfg)
    }
}

impl Scenario for UrbanScenario {
    fn name(&self) -> &'static str {
        "urban"
    }

    fn description(&self) -> &'static str {
        "the paper's urban testbed: a platoon lapping past an office-window AP (Table 1, Figs 3-8)"
    }

    fn schema(&self) -> &ParamSchema {
        &self.schema
    }

    fn configure(&self, point: &SweepPoint) -> Result<Box<dyn ScenarioRun>, ParamError> {
        Ok(Box::new(UrbanRun::new(self.config_for(point)?)))
    }
}

/// Per-run invariants hoisted out of the per-round hot path: the testbed
/// layout, the obstacle map and the medium configuration template never vary
/// between rounds — only the per-round shadowing seeds do — so they are
/// built once per configured run instead of once per lap.
#[derive(Debug, Clone)]
struct UrbanInvariants {
    layout: RoadLayout,
    /// The configured medium with the city-block obstacle map already
    /// applied to both channels; rounds only stamp their shadowing seeds.
    medium_template: vanet_mac::MediumConfig,
    car_ids: Vec<NodeId>,
    speed_ms: f64,
    horizon: SimTime,
}

impl UrbanInvariants {
    fn of(config: &UrbanConfig) -> Self {
        let layout = urban_testbed_loop();
        let speed_ms = kmh_to_ms(config.speed_kmh);
        // The city block enclosed by the loop heavily shadows every link that
        // has to cross it, confining AP coverage to the southern street.
        let (block_min, block_max) = urban_testbed_block();
        let obstacles =
            ObstacleMap::from_buildings(vec![Building::new(block_min, block_max, 30.0)]);
        let mut medium_template = config.medium.clone();
        medium_template.ap_vehicle.obstacles = obstacles.clone();
        medium_template.vehicle_vehicle.obstacles = obstacles;
        let lap_seconds = layout.lap_length() / speed_ms;
        UrbanInvariants {
            layout,
            medium_template,
            car_ids: (1..=config.n_cars as u32).map(NodeId::new).collect(),
            speed_ms,
            horizon: SimTime::from_secs_f64(lap_seconds * config.lap_fraction),
        }
    }
}

/// One configured urban experiment: [`ScenarioRun::run_round`] simulates one
/// lap.
#[derive(Debug, Clone)]
pub struct UrbanRun {
    config: UrbanConfig,
    invariants: UrbanInvariants,
}

impl UrbanRun {
    /// Creates a run for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (no cars, no
    /// drivers, non-positive speed, or an invalid protocol configuration).
    /// Configurations built through [`UrbanScenario::configure`] are
    /// schema-checked and cannot trip these.
    pub fn new(config: UrbanConfig) -> Self {
        assert!(config.n_cars >= 1, "the experiment needs at least one car");
        assert!(!config.drivers.is_empty(), "at least one driver profile is required");
        assert!(config.speed_kmh > 0.0, "speed must be positive");
        assert!(config.rounds >= 1, "at least one round is required");
        assert!((0.1..=1.0).contains(&config.lap_fraction), "lap_fraction must be in (0.1, 1.0]");
        if let Err(msg) = config.carq.validate() {
            panic!("invalid protocol configuration: {msg}");
        }
        let invariants = UrbanInvariants::of(&config);
        UrbanRun { config, invariants }
    }

    /// The configuration in use.
    pub fn config(&self) -> &UrbanConfig {
        &self.config
    }

    /// The round body, generic over the trace sink: `run_round` instantiates
    /// it with [`NoTrace`] (compiling the tracing away), `run_round_traced`
    /// with a recording sink. One body, so the traced and untraced paths
    /// cannot drift apart.
    fn run_round_sink<S: TraceSink>(&self, round: u32, seed: u64, sink: &mut S) -> RoundReport {
        let cfg = &self.config;
        let inv = &self.invariants;

        let round_rng = StreamRng::derive(seed, "urban-round");
        let mut mobility_rng = round_rng.substream(1);
        let shadow_seed_a = round_rng.substream(2).gen::<u64>();
        let shadow_seed_b = round_rng.substream(3).gen::<u64>();
        let model_seed = round_rng.substream(4).gen::<u64>();

        // The layout, obstacle map and channel parameters are invariant
        // across rounds (see `UrbanInvariants`); only the shadowing
        // landscape is re-seeded per lap.
        let mut medium = inv.medium_template.clone();
        medium.ap_vehicle.shadowing_seed = shadow_seed_a;
        medium.vehicle_vehicle.shadowing_seed = shadow_seed_b;

        let model_config = ModelConfig {
            medium,
            data_rate: cfg.data_rate,
            carq: cfg.carq.clone(),
            position_update_interval: SimDuration::from_millis(100),
            seed: model_seed,
            cooperation_enabled: cfg.cooperation_enabled,
        };
        let mut model = VanetModel::with_sink(model_config, sink);

        // Cars are numbered 1..=n, the AP is node 0, matching the paper's
        // car 1 / car 2 / car 3 naming.
        let ap_config = ApConfig {
            cars: inv.car_ids.clone(),
            packets_per_second_per_car: cfg.ap_rate_pps,
            payload_bytes: cfg.payload_bytes,
            policy: cfg.ap_policy,
        };
        model.add_access_point(
            NodeId::new(0),
            inv.layout.access_points[0],
            AccessPointApp::new(ap_config),
        );

        let platoon = PlatoonMobility::new(
            inv.layout.path.clone(),
            inv.speed_ms,
            &cfg.drivers[..cfg.n_cars],
            &mut mobility_rng,
        );
        for (i, id) in inv.car_ids.iter().enumerate() {
            let mobility: PathMobility = platoon.member(i).clone();
            model.add_car(*id, mobility);
        }

        let mut sim = Simulation::new(model).with_horizon(inv.horizon).with_event_budget(5_000_000);
        for (t, ev) in sim.model().initial_events() {
            sim.schedule_at(t, ev);
        }
        let outcome = sim.run();
        debug_assert_ne!(outcome, RunOutcome::EventBudgetExhausted, "runaway event loop");
        let events = sim.processed_events();
        let model = sim.into_model();

        let node_stats = model.node_stats();
        let sum = |f: fn(&carq::CarqNodeStats) -> u64| -> f64 {
            node_stats.iter().map(|s| f(&s.stats) as f64).sum()
        };
        RoundReport::new(round, seed, model.round_result())
            .with_counter("requests_sent", sum(|s| s.requests_sent))
            .with_counter("coop_data_sent", sum(|s| s.coop_data_sent))
            .with_counter("recovered_via_coop", sum(|s| s.recovered_via_coop))
            .with_counter("responses_suppressed", sum(|s| s.responses_suppressed))
            .with_counter("medium_frames_sent", model.medium_stats().frames_sent as f64)
            .with_counter("sim_events", events as f64)
            .with_counter("csma_deferrals", model.csma_deferrals() as f64)
            .with_counter(
                "arq_retransmissions",
                model.ap_retransmissions_queued() as f64 + sum(|s| s.coop_data_sent),
            )
            .with_counter("buffer_evictions", sum(|s| s.buffer_evictions))
            .with_counter("strategy_decisions", model.strategy_decisions() as f64)
    }
}

impl ScenarioRun for UrbanRun {
    fn rounds(&self) -> u32 {
        self.config.rounds
    }

    /// Runs a single round (lap). All randomness — mobility realisation,
    /// shadowing landscape, every sampling stream — derives from `seed`.
    fn run_round(&self, round: u32, seed: u64) -> RoundReport {
        self.run_round_sink(round, seed, &mut NoTrace)
    }

    fn run_round_traced(&self, round: u32, seed: u64) -> (RoundReport, Vec<TraceRecord>) {
        let mut sink = VecSink::new();
        let report = self.run_round_sink(round, seed, &mut sink);
        (report, sink.into_records())
    }

    fn aggregate(&self, rounds: &[RoundReport]) -> PointSummary {
        let mut losses = LossSamples::default();
        let mut efficiency = Vec::new();
        for report in rounds {
            losses.absorb(&report.result);
            for car in report.result.cars() {
                if let Some(flow) = report.result.flow_for(car) {
                    efficiency.push(flow.recovery_efficiency());
                }
            }
        }
        let mut metrics = losses.metrics();
        metrics.push(("recovery_efficiency_mean", mean(&efficiency)));
        metrics.push(("requests_sent", vanet_stats::counter_total(rounds, "requests_sent")));
        metrics.push(("coop_data_sent", vanet_stats::counter_total(rounds, "coop_data_sent")));
        PointSummary { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{round_seed, run_rounds};

    fn quick_run(rounds: u32) -> UrbanRun {
        UrbanRun::new(UrbanConfig::paper_testbed().with_rounds(rounds))
    }

    #[test]
    fn single_round_produces_observations_for_every_car() {
        let run = quick_run(1);
        let report = run.run_round(0, 99);
        assert_eq!(report.result.cars(), vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        assert!(
            report.counter("medium_frames_sent").unwrap() > 500.0,
            "AP alone sends ~15 frames/s"
        );
        for car in report.result.cars() {
            let flow = report.result.flow_for(car).unwrap();
            assert!(
                flow.tx_by_ap_in_window() > 40,
                "car {car} saw only {} packets in its window",
                flow.tx_by_ap_in_window()
            );
            assert!(flow.lost_before_coop() > 0, "urban channel should lose packets");
        }
    }

    #[test]
    fn cooperation_reduces_losses_in_a_round() {
        let run = quick_run(2);
        let report = run.run_round(1, round_seed(99, 1));
        let mut total_before = 0usize;
        let mut total_after = 0usize;
        for car in report.result.cars() {
            let flow = report.result.flow_for(car).unwrap();
            total_before += flow.lost_before_coop();
            total_after += flow.lost_after_coop();
        }
        assert!(
            total_after < total_before,
            "cooperation must recover packets ({total_after} !< {total_before})"
        );
        assert!(report.counter("recovered_via_coop").unwrap() > 0.0);
    }

    #[test]
    fn rounds_are_pure_functions_of_round_and_seed() {
        let run = quick_run(2);
        assert_eq!(run.run_round(0, 7), run.run_round(0, 7));
        assert_ne!(run.run_round(0, 7).result, run.run_round(0, 8).result);
        // The round index alone does not re-randomise: the seed carries all
        // the entropy.
        assert_eq!(run.run_round(0, 7).result, run.run_round(1, 7).result);
    }

    #[test]
    fn run_rounds_aggregates_all_rounds() {
        let run = quick_run(2);
        let reports = run_rounds(&run, 99, 1);
        assert_eq!(reports.len(), 2);
        let summary = run.aggregate(&reports);
        assert!(summary.get("requests_sent").unwrap() > 0.0);
        assert!(summary.get("coop_data_sent").unwrap() > 0.0);
        let before = summary.get("loss_before_pct_mean").unwrap();
        let after = summary.get("loss_after_pct_mean").unwrap();
        assert!(after <= before, "cooperation must not increase losses ({after} > {before})");
    }

    #[test]
    fn no_cooperation_baseline_sends_no_protocol_traffic() {
        let run = UrbanRun::new(UrbanConfig::paper_testbed().without_cooperation().with_rounds(1));
        let reports = run_rounds(&run, 5, 1);
        let summary = run.aggregate(&reports);
        assert_eq!(summary.get("requests_sent"), Some(0.0));
        assert_eq!(summary.get("coop_data_sent"), Some(0.0));
        // Losses before and after coincide in the baseline.
        for car in reports[0].result.cars() {
            let flow = reports[0].result.flow_for(car).unwrap();
            assert_eq!(flow.lost_before_coop(), flow.lost_after_coop());
        }
    }

    #[test]
    fn scenario_overrides_reach_the_config() {
        use carq::{RecoveryStrategyKind, RequestStrategy, SelectionStrategy};
        let scenario = UrbanScenario::paper_testbed();
        let cfg = scenario
            .config_for(&SweepPoint::new(vec![
                (Param::SpeedKmh, ParamValue::Float(35.0)),
                (Param::NCars, ParamValue::Int(5)),
                (Param::ApRatePps, ParamValue::Float(8.0)),
                (Param::PayloadBytes, ParamValue::Int(500)),
                (Param::Selection, ParamValue::Selection(SelectionStrategy::FirstHeard { k: 2 })),
                (Param::Request, ParamValue::Request(RequestStrategy::Batched)),
                (Param::Strategy, ParamValue::Strategy(RecoveryStrategyKind::OneHopListen)),
                (Param::Cooperation, ParamValue::Bool(false)),
                (Param::Rounds, ParamValue::Int(4)),
            ]))
            .unwrap();
        assert_eq!(cfg.speed_kmh, 35.0);
        assert_eq!(cfg.n_cars, 5);
        assert_eq!(cfg.drivers.len(), 5);
        assert_eq!(cfg.ap_rate_pps, 8.0);
        assert_eq!(cfg.payload_bytes, 500);
        assert_eq!(cfg.carq.expected_payload_bytes, 500);
        assert_eq!(cfg.carq.selection, SelectionStrategy::FirstHeard { k: 2 });
        assert_eq!(cfg.carq.request_strategy, RequestStrategy::Batched);
        assert_eq!(cfg.carq.strategy, RecoveryStrategyKind::OneHopListen);
        assert!(!cfg.cooperation_enabled);
        assert_eq!(cfg.rounds, 4);
    }

    #[test]
    fn unassigned_parameters_keep_base_values() {
        let scenario = UrbanScenario::paper_testbed();
        let cfg = scenario
            .config_for(&SweepPoint::new(vec![(Param::NCars, ParamValue::Int(4))]))
            .unwrap();
        let base = UrbanConfig::paper_testbed();
        assert_eq!(cfg.speed_kmh, base.speed_kmh);
        assert_eq!(cfg.ap_rate_pps, base.ap_rate_pps);
        assert_eq!(cfg.rounds, base.rounds);
        assert_eq!(cfg.n_cars, 4);
    }

    #[test]
    fn unknown_and_out_of_range_parameters_are_rejected() {
        let scenario = UrbanScenario::paper_testbed();
        let err = scenario
            .configure(&SweepPoint::new(vec![(Param::FileBlocks, ParamValue::Int(100))]))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ParamError::Unknown { scenario: "urban", .. }), "{err}");
        let err = scenario
            .configure(&SweepPoint::new(vec![(Param::NCars, ParamValue::Int(0))]))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ParamError::Range { param: Param::NCars, .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least one car")]
    fn zero_cars_rejected() {
        let mut cfg = UrbanConfig::paper_testbed();
        cfg.n_cars = 0;
        let _ = UrbanRun::new(cfg);
    }
}
