//! The paper's urban testbed (Figure 2), reproduced in simulation.
//!
//! Three cars drive a city-block loop at about 20 km/h past an access point
//! whose antenna sits on a first-floor office window. The AP continuously
//! transmits numbered 1000-byte packets to each car at 5 packets per second
//! per car, everything at 1 Mbps. Each of the 30 rounds is one lap: the
//! platoon enters coverage, crosses it, leaves it, and performs the
//! Cooperative-ARQ phase in the dark part of the loop.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sim_core::{RunOutcome, SimTime, Simulation, StreamRng};
use vanet_dtn::{AccessPointApp, ApConfig, ApSchedulingPolicy};
use vanet_geo::{
    kmh_to_ms, urban_testbed_block, urban_testbed_loop, DriverProfile, PathMobility,
    PlatoonMobility,
};
use vanet_mac::{medium::MediumStats, MediumConfig, NodeId};
use vanet_radio::{Building, DataRate, ObstacleMap};
use vanet_stats::RoundResult;

use crate::model::{ModelConfig, NodeStatsSnapshot, VanetModel};

use carq::CarqConfig;
use sim_core::SimDuration;

/// Configuration of the urban experiment.
#[derive(Debug, Clone)]
pub struct UrbanConfig {
    /// Number of experiment rounds (laps); the paper uses 30.
    pub rounds: u32,
    /// Master seed; every round derives its own sub-seed.
    pub master_seed: u64,
    /// Number of cars in the platoon; the paper uses 3.
    pub n_cars: usize,
    /// Platoon cruise speed in km/h; the paper reports "about 20 Km/h".
    pub speed_kmh: f64,
    /// Driver profiles, leader first. Defaults model the paper's description
    /// (the car-2 driver was the least experienced).
    pub drivers: Vec<DriverProfile>,
    /// Protocol configuration run by every car.
    pub carq: CarqConfig,
    /// Wireless medium configuration.
    pub medium: MediumConfig,
    /// AP sending rate per car in packets per second (5 in the paper).
    pub ap_rate_pps: f64,
    /// Data payload per packet in bytes (1000 in the paper).
    pub payload_bytes: u32,
    /// PHY rate (1 Mbps in the paper).
    pub data_rate: DataRate,
    /// AP scheduling policy (fresh data only in the paper).
    pub ap_policy: ApSchedulingPolicy,
    /// Whether cars cooperate. Disable for the no-cooperation baseline.
    pub cooperation_enabled: bool,
    /// Fraction of a lap to simulate per round. The C-ARQ phase completes
    /// shortly after the platoon leaves coverage, so simulating the full dark
    /// part of the lap is unnecessary; 0.7 leaves ample margin.
    pub lap_fraction: f64,
}

impl UrbanConfig {
    /// The paper's testbed configuration.
    pub fn paper_testbed() -> Self {
        UrbanConfig {
            rounds: 30,
            master_seed: 0x2008_1cdc,
            n_cars: 3,
            speed_kmh: 20.0,
            drivers: vec![
                DriverProfile::experienced(),
                DriverProfile::inexperienced(),
                DriverProfile::default(),
            ],
            carq: CarqConfig::paper_prototype(),
            medium: MediumConfig::urban_testbed(),
            ap_rate_pps: 5.0,
            payload_bytes: 1_000,
            data_rate: DataRate::Mbps1,
            ap_policy: ApSchedulingPolicy::FreshDataOnly,
            cooperation_enabled: true,
            lap_fraction: 0.7,
        }
    }

    /// Disables cooperation (no-coop baseline).
    pub fn without_cooperation(mut self) -> Self {
        self.cooperation_enabled = false;
        self
    }

    /// Overrides the number of rounds.
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Overrides the protocol configuration.
    pub fn with_carq(mut self, carq: CarqConfig) -> Self {
        self.carq = carq;
        self
    }

    /// Overrides the platoon size, reusing default driver profiles for the
    /// extra cars.
    pub fn with_platoon_size(mut self, n_cars: usize) -> Self {
        self.n_cars = n_cars;
        while self.drivers.len() < n_cars {
            self.drivers.push(DriverProfile::default());
        }
        self.drivers.truncate(n_cars.max(1));
        self
    }
}

/// The aggregated outcome of an urban experiment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExperimentResult {
    rounds: Vec<RoundResult>,
    /// Per-round, per-car protocol statistics.
    #[serde(skip)]
    node_stats: Vec<Vec<NodeStatsSnapshot>>,
    /// Per-round medium statistics.
    medium_stats: Vec<MediumStats>,
}

impl ExperimentResult {
    /// The per-round observations, in round order.
    pub fn rounds(&self) -> &[RoundResult] {
        &self.rounds
    }

    /// Per-round, per-car protocol statistics.
    pub fn node_stats(&self) -> &[Vec<NodeStatsSnapshot>] {
        &self.node_stats
    }

    /// Per-round medium statistics.
    pub fn medium_stats(&self) -> &[MediumStats] {
        &self.medium_stats
    }

    /// The car ids observed (from the first round).
    pub fn cars(&self) -> Vec<NodeId> {
        self.rounds.first().map(RoundResult::cars).unwrap_or_default()
    }

    /// Total number of REQUEST frames sent over all rounds and cars.
    pub fn total_requests_sent(&self) -> u64 {
        self.node_stats
            .iter()
            .flat_map(|round| round.iter())
            .map(|snapshot| snapshot.stats.requests_sent)
            .sum()
    }

    /// Total number of cooperative retransmissions over all rounds and cars.
    pub fn total_coop_data_sent(&self) -> u64 {
        self.node_stats
            .iter()
            .flat_map(|round| round.iter())
            .map(|snapshot| snapshot.stats.coop_data_sent)
            .sum()
    }
}

/// The urban experiment runner.
#[derive(Debug, Clone)]
pub struct UrbanExperiment {
    config: UrbanConfig,
}

impl UrbanExperiment {
    /// Creates a runner for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (no cars, no
    /// drivers, non-positive speed, or an invalid protocol configuration).
    pub fn new(config: UrbanConfig) -> Self {
        assert!(config.n_cars >= 1, "the experiment needs at least one car");
        assert!(!config.drivers.is_empty(), "at least one driver profile is required");
        assert!(config.speed_kmh > 0.0, "speed must be positive");
        assert!(config.rounds >= 1, "at least one round is required");
        assert!((0.1..=1.0).contains(&config.lap_fraction), "lap_fraction must be in (0.1, 1.0]");
        if let Err(msg) = config.carq.validate() {
            panic!("invalid protocol configuration: {msg}");
        }
        UrbanExperiment { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &UrbanConfig {
        &self.config
    }

    /// Runs all rounds and aggregates the results.
    pub fn run(&self) -> ExperimentResult {
        let mut result = ExperimentResult::default();
        for round in 0..self.config.rounds {
            let (round_result, node_stats, medium_stats) = self.run_round(round);
            result.rounds.push(round_result);
            result.node_stats.push(node_stats);
            result.medium_stats.push(medium_stats);
        }
        result
    }

    /// Runs a single round (lap) and returns its observations.
    pub fn run_round(&self, round: u32) -> (RoundResult, Vec<NodeStatsSnapshot>, MediumStats) {
        let cfg = &self.config;
        let layout = urban_testbed_loop();
        let speed = kmh_to_ms(cfg.speed_kmh);

        // Derive per-round randomness: mobility realisation, channel
        // shadowing landscape and every sampling stream.
        let round_rng =
            StreamRng::derive(cfg.master_seed, "urban-round").substream(u64::from(round));
        let mut mobility_rng = round_rng.substream(1);
        let shadow_seed_a = round_rng.substream(2).gen::<u64>();
        let shadow_seed_b = round_rng.substream(3).gen::<u64>();
        let model_seed = round_rng.substream(4).gen::<u64>();

        // The city block enclosed by the loop heavily shadows every link that
        // has to cross it, confining AP coverage to the southern street.
        let (block_min, block_max) = urban_testbed_block();
        let obstacles =
            ObstacleMap::from_buildings(vec![Building::new(block_min, block_max, 30.0)]);

        let mut medium = cfg.medium.clone();
        medium.ap_vehicle = medium
            .ap_vehicle
            .clone()
            .with_shadowing_seed(shadow_seed_a)
            .with_obstacles(obstacles.clone());
        medium.vehicle_vehicle = medium
            .vehicle_vehicle
            .clone()
            .with_shadowing_seed(shadow_seed_b)
            .with_obstacles(obstacles);

        let model_config = ModelConfig {
            medium,
            data_rate: cfg.data_rate,
            carq: cfg.carq.clone(),
            position_update_interval: SimDuration::from_millis(100),
            seed: model_seed,
            cooperation_enabled: cfg.cooperation_enabled,
        };
        let mut model = VanetModel::new(model_config);

        // Cars are numbered 1..=n, the AP is node 0, matching the paper's
        // car 1 / car 2 / car 3 naming.
        let car_ids: Vec<NodeId> = (1..=cfg.n_cars as u32).map(NodeId::new).collect();
        let ap_config = ApConfig {
            cars: car_ids.clone(),
            packets_per_second_per_car: cfg.ap_rate_pps,
            payload_bytes: cfg.payload_bytes,
            policy: cfg.ap_policy,
        };
        model.add_access_point(
            NodeId::new(0),
            layout.access_points[0],
            AccessPointApp::new(ap_config),
        );

        let platoon = PlatoonMobility::new(
            layout.path.clone(),
            speed,
            &cfg.drivers[..cfg.n_cars],
            &mut mobility_rng,
        );
        for (i, id) in car_ids.iter().enumerate() {
            let mobility: PathMobility = platoon.member(i).clone();
            model.add_car(*id, mobility);
        }

        let lap_seconds = layout.lap_length() / speed;
        let horizon = SimTime::from_secs_f64(lap_seconds * cfg.lap_fraction);
        let mut sim = Simulation::new(model).with_horizon(horizon).with_event_budget(5_000_000);
        for (t, ev) in sim.model().initial_events() {
            sim.schedule_at(t, ev);
        }
        let outcome = sim.run();
        debug_assert_ne!(outcome, RunOutcome::EventBudgetExhausted, "runaway event loop");
        let model = sim.into_model();
        (model.round_result(), model.node_stats(), model.medium_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> UrbanConfig {
        UrbanConfig::paper_testbed().with_rounds(2).with_seed(99)
    }

    #[test]
    fn single_round_produces_observations_for_every_car() {
        let experiment = UrbanExperiment::new(quick_config());
        let (round, node_stats, medium_stats) = experiment.run_round(0);
        assert_eq!(round.cars(), vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        assert_eq!(node_stats.len(), 3);
        assert!(medium_stats.frames_sent > 500, "AP alone sends ~15 frames/s");
        for car in round.cars() {
            let flow = round.flow_for(car).unwrap();
            assert!(
                flow.tx_by_ap_in_window() > 40,
                "car {car} saw only {} packets in its window",
                flow.tx_by_ap_in_window()
            );
            assert!(flow.lost_before_coop() > 0, "urban channel should lose packets");
        }
    }

    #[test]
    fn cooperation_reduces_losses_in_a_round() {
        let experiment = UrbanExperiment::new(quick_config());
        let (round, node_stats, _) = experiment.run_round(1);
        let mut total_before = 0usize;
        let mut total_after = 0usize;
        for car in round.cars() {
            let flow = round.flow_for(car).unwrap();
            total_before += flow.lost_before_coop();
            total_after += flow.lost_after_coop();
        }
        assert!(
            total_after < total_before,
            "cooperation must recover packets ({total_after} !< {total_before})"
        );
        let recovered: u64 = node_stats.iter().map(|s| s.stats.recovered_via_coop).sum();
        assert!(recovered > 0);
    }

    #[test]
    fn rounds_are_reproducible_for_a_fixed_seed() {
        let experiment = UrbanExperiment::new(quick_config());
        let (a, _, _) = experiment.run_round(0);
        let (b, _, _) = experiment.run_round(0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_rounds_differ() {
        let experiment = UrbanExperiment::new(quick_config());
        let (a, _, _) = experiment.run_round(0);
        let (b, _, _) = experiment.run_round(1);
        assert_ne!(a, b);
    }

    #[test]
    fn run_aggregates_all_rounds() {
        let experiment = UrbanExperiment::new(quick_config());
        let result = experiment.run();
        assert_eq!(result.rounds().len(), 2);
        assert_eq!(result.node_stats().len(), 2);
        assert_eq!(result.medium_stats().len(), 2);
        assert_eq!(result.cars().len(), 3);
        assert!(result.total_requests_sent() > 0);
        assert!(result.total_coop_data_sent() > 0);
    }

    #[test]
    fn no_cooperation_baseline_sends_no_protocol_traffic() {
        let experiment = UrbanExperiment::new(quick_config().without_cooperation().with_rounds(1));
        let result = experiment.run();
        assert_eq!(result.total_requests_sent(), 0);
        assert_eq!(result.total_coop_data_sent(), 0);
        // Losses before and after coincide in the baseline.
        let round = &result.rounds()[0];
        for car in round.cars() {
            let flow = round.flow_for(car).unwrap();
            assert_eq!(flow.lost_before_coop(), flow.lost_after_coop());
        }
    }

    #[test]
    #[should_panic(expected = "at least one car")]
    fn zero_cars_rejected() {
        let mut cfg = quick_config();
        cfg.n_cars = 0;
        let _ = UrbanExperiment::new(cfg);
    }
}
