//! The discrete-event model that wires the protocol stack together.
//!
//! One [`VanetModel`] instance simulates one experiment round: a set of
//! static access points running [`AccessPointApp`] traffic sources, a platoon
//! of vehicles each running a [`CarqNode`], a shared [`Medium`], and the
//! vehicles' mobility. The model translates [`carq::Action`]s into medium
//! transmissions (with CSMA deferral) and timer events, and records the
//! promiscuous per-flow receptions that the evaluation needs (what the
//! testbed captured with tcpdump on every laptop).

use std::collections::BTreeMap;
use std::rc::Rc;

use carq::{Action, CarqConfig, CarqMessage, CarqNode, CarqNodeStats, TimerKind};
use sim_core::{Model, Scheduler, SimDuration, SimTime, StreamRng};
use vanet_dtn::{AccessPointApp, ApSchedulingPolicy, ReceptionMap};
use vanet_geo::{MobilityModel, PathMobility, Point};
use vanet_mac::{
    CsmaBackoff, Delivery, Destination, Frame, Medium, MediumConfig, NodeId, RadioClass,
};
use vanet_radio::DataRate;
use vanet_stats::{FlowObservation, RoundResult};
use vanet_trace::{NoTrace, TraceRecord, TraceSink};

/// Static configuration of one simulated round.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// The wireless medium configuration (channels, timing).
    pub medium: MediumConfig,
    /// PHY rate used for every transmission (1 Mbps in the testbed).
    pub data_rate: DataRate,
    /// The protocol configuration run by every car.
    pub carq: CarqConfig,
    /// How often vehicle positions are pushed to the medium.
    pub position_update_interval: SimDuration,
    /// Master seed for the round's random streams.
    pub seed: u64,
    /// Whether cars run the Cooperative-ARQ protocol. When `false` the cars
    /// still receive (so "before cooperation" statistics exist) but never
    /// beacon, buffer or recover — the no-cooperation baseline.
    pub cooperation_enabled: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            medium: MediumConfig::urban_testbed(),
            data_rate: DataRate::Mbps1,
            carq: CarqConfig::paper_prototype(),
            position_update_interval: SimDuration::from_millis(100),
            seed: 1,
            cooperation_enabled: true,
        }
    }
}

/// Events driving the model.
#[derive(Debug, Clone)]
pub enum VanetEvent {
    /// Start a car's protocol instance.
    CarStart {
        /// The car to start.
        node: NodeId,
    },
    /// Push fresh vehicle positions into the medium.
    PositionUpdate,
    /// The AP with the given index transmits its next scheduled packet.
    ApTransmit {
        /// Index into the model's AP list.
        ap_index: usize,
    },
    /// A car puts a protocol frame on the air (after CSMA deferral).
    CarTransmit {
        /// The transmitting car.
        node: NodeId,
        /// The message to send.
        message: CarqMessage,
        /// The logical destination.
        dst: Destination,
    },
    /// A frame reaches a receiver. The frame is shared (one transmission
    /// reaches every receiver with the same bits), so fanning one broadcast
    /// out to N receivers clones an `Rc`, not the payload.
    FrameDelivery {
        /// The receiving node.
        to: NodeId,
        /// The received frame, shared between all receivers of the
        /// transmission.
        frame: Rc<Frame<CarqMessage>>,
        /// Realised SNR of the reception in dB.
        snr_db: f64,
    },
    /// A protocol timer fires at a car.
    CarqTimer {
        /// The car whose timer fires.
        node: NodeId,
        /// Which timer.
        kind: TimerKind,
    },
}

/// A car in the model: protocol instance plus trajectory.
#[derive(Debug)]
struct Car {
    id: NodeId,
    protocol: CarqNode,
    mobility: PathMobility,
}

/// An access point in the model: traffic source plus fixed position.
#[derive(Debug)]
struct AccessPoint {
    id: NodeId,
    app: AccessPointApp,
    position: Point,
}

/// Per-node statistics captured at the end of a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStatsSnapshot {
    /// The car.
    pub node: NodeId,
    /// Its protocol counters.
    pub stats: CarqNodeStats,
}

/// The complete simulation model for one round.
///
/// Generic over its [`TraceSink`]: the default [`NoTrace`] monomorphizes
/// every emission site away (the benchmarked hot path), while
/// [`VanetModel::with_sink`] instruments the same model — same RNG draws,
/// same results — with structured records for `carq-cli verify` and the
/// trace tooling.
#[derive(Debug)]
pub struct VanetModel<S: TraceSink = NoTrace> {
    config: ModelConfig,
    medium: Medium,
    aps: Vec<AccessPoint>,
    cars: Vec<Car>,
    rng: StreamRng,
    csma: CsmaBackoff,
    sink: S,
    /// Promiscuous reception record: which observer received which sequence
    /// numbers of which flow. `(flow destination, observer) → receptions`.
    promiscuous: BTreeMap<(NodeId, NodeId), ReceptionMap>,
    /// Reusable per-transmission delivery buffer: the medium writes every
    /// transmission's verdicts into this one allocation.
    delivery_scratch: Vec<Delivery>,
    /// Transmissions deferred by carrier sensing (always counted; surfaced
    /// as the `csma_deferrals` round counter).
    csma_deferrals: u64,
    /// AP-side retransmissions queued after idealised loss feedback (always
    /// counted; part of the `arq_retransmissions` round counter).
    ap_retransmissions_queued: u64,
    /// Loss decisions made by the cars' recovery strategies (always counted;
    /// surfaced as the `strategy_decisions` round counter and cross-checked
    /// against `strategy_decision` trace records).
    strategy_decisions: u64,
}

impl VanetModel<NoTrace> {
    /// Creates an empty model (no nodes yet) with tracing disabled.
    pub fn new(config: ModelConfig) -> Self {
        VanetModel::with_sink(config, NoTrace)
    }
}

impl<S: TraceSink> VanetModel<S> {
    /// Creates an empty model emitting trace records into `sink`. Pass
    /// `&mut VecSink` (or any other sink by mutable borrow) to keep
    /// ownership of the collected records.
    pub fn with_sink(config: ModelConfig, sink: S) -> Self {
        let medium = Medium::new(config.medium.clone());
        let rng = StreamRng::derive(config.seed, "vanet-model");
        VanetModel {
            config,
            medium,
            aps: Vec::new(),
            cars: Vec::new(),
            rng,
            csma: CsmaBackoff::default(),
            sink,
            promiscuous: BTreeMap::new(),
            delivery_scratch: Vec::new(),
            csma_deferrals: 0,
            ap_retransmissions_queued: 0,
            strategy_decisions: 0,
        }
    }

    /// Adds an access point at a fixed position with the given traffic
    /// source.
    pub fn add_access_point(&mut self, id: NodeId, position: Point, app: AccessPointApp) {
        self.medium.register_node(id, RadioClass::AccessPoint);
        self.medium.update_position(id, position);
        self.aps.push(AccessPoint { id, app, position });
    }

    /// Adds a vehicle with the given trajectory running the configured
    /// protocol.
    pub fn add_car(&mut self, id: NodeId, mobility: PathMobility) {
        self.medium.register_node(id, RadioClass::Vehicle);
        self.medium.update_position(id, mobility.position_at(SimTime::ZERO));
        let protocol = CarqNode::new(id, self.config.carq.clone());
        self.cars.push(Car { id, protocol, mobility });
    }

    /// The car ids, in the order they were added (platoon order).
    pub fn car_ids(&self) -> Vec<NodeId> {
        self.cars.iter().map(|c| c.id).collect()
    }

    /// Schedules the initial events of a round on `schedule`: car start-up,
    /// position updates and the first transmission of every AP.
    pub fn initial_events(&self) -> Vec<(SimTime, VanetEvent)> {
        let mut events = vec![(SimTime::ZERO, VanetEvent::PositionUpdate)];
        for car in &self.cars {
            events.push((SimTime::ZERO, VanetEvent::CarStart { node: car.id }));
        }
        for (i, _) in self.aps.iter().enumerate() {
            // Small per-AP stagger so co-located APs do not start in lockstep.
            events
                .push((SimTime::from_millis(i as u64 * 7), VanetEvent::ApTransmit { ap_index: i }));
        }
        events
    }

    /// Reference to a car's protocol instance.
    ///
    /// # Panics
    ///
    /// Panics if the node is unknown.
    pub fn car_protocol(&self, id: NodeId) -> &CarqNode {
        &self.cars.iter().find(|c| c.id == id).expect("unknown car").protocol
    }

    /// Aggregate medium statistics.
    pub fn medium_stats(&self) -> vanet_mac::medium::MediumStats {
        self.medium.stats()
    }

    /// Per-car protocol statistics.
    pub fn node_stats(&self) -> Vec<NodeStatsSnapshot> {
        self.cars
            .iter()
            .map(|c| NodeStatsSnapshot { node: c.id, stats: c.protocol.stats() })
            .collect()
    }

    /// How many transmissions carrier sensing deferred this round.
    pub fn csma_deferrals(&self) -> u64 {
        self.csma_deferrals
    }

    /// How many AP-side retransmissions were queued after loss feedback.
    pub fn ap_retransmissions_queued(&self) -> u64 {
        self.ap_retransmissions_queued
    }

    /// How many strategy loss decisions the cars made this round.
    pub fn strategy_decisions(&self) -> u64 {
        self.strategy_decisions
    }

    /// Builds the per-flow observations of the finished round.
    pub fn round_result(&self) -> RoundResult {
        let flows = self
            .cars
            .iter()
            .map(|car| {
                let mut received_by = BTreeMap::new();
                for observer in &self.cars {
                    let map =
                        self.promiscuous.get(&(car.id, observer.id)).cloned().unwrap_or_default();
                    received_by.insert(observer.id, map);
                }
                let sent = self
                    .aps
                    .iter()
                    .flat_map(|ap| ap.app.sent_to(car.id).iter().map(|(seq, _)| *seq))
                    .collect();
                // With cooperation disabled the protocol machine never runs,
                // so the baseline's "after" state is simply what the car
                // received directly.
                let after_coop = if self.config.cooperation_enabled {
                    car.protocol.after_coop_map()
                } else {
                    received_by.get(&car.id).cloned().unwrap_or_default()
                };
                FlowObservation { destination: car.id, sent, received_by, after_coop }
            })
            .collect();
        RoundResult::new(flows)
    }

    fn car_index(&self, id: NodeId) -> Option<usize> {
        self.cars.iter().position(|c| c.id == id)
    }

    fn is_car(&self, id: NodeId) -> bool {
        self.car_index(id).is_some()
    }

    fn process_actions(
        &mut self,
        now: SimTime,
        node: NodeId,
        actions: Vec<Action>,
        scheduler: &mut Scheduler<VanetEvent>,
    ) {
        for action in actions {
            match action {
                Action::Send { message, dst } => {
                    scheduler.schedule_now(VanetEvent::CarTransmit { node, message, dst });
                }
                Action::SetTimer { kind, after } => {
                    scheduler.schedule_in(after, VanetEvent::CarqTimer { node, kind });
                }
                Action::DecideRecovery { missing } => {
                    // Purely observational: nothing is scheduled, so the
                    // decision record can never perturb the simulation.
                    self.strategy_decisions += 1;
                    if S::ENABLED {
                        self.sink.record(TraceRecord::StrategyDecision {
                            at: now,
                            node: node.as_u32(),
                            strategy: self.config.carq.strategy.tag(),
                            missing,
                        });
                    }
                }
            }
        }
    }

    /// Schedules the received entries of the delivery scratch buffer,
    /// sharing `frame` between all of them.
    fn deliver_scratch(
        &mut self,
        frame: &Rc<Frame<CarqMessage>>,
        scheduler: &mut Scheduler<VanetEvent>,
    ) {
        for delivery in &self.delivery_scratch {
            if !delivery.outcome.is_received() {
                continue;
            }
            scheduler.schedule_at(
                delivery.at,
                VanetEvent::FrameDelivery {
                    to: delivery.node,
                    frame: Rc::clone(frame),
                    snr_db: delivery.snr_db,
                },
            );
        }
    }

    fn handle_ap_transmit(
        &mut self,
        now: SimTime,
        ap_index: usize,
        scheduler: &mut Scheduler<VanetEvent>,
    ) {
        let interval = self.aps[ap_index].app.transmission_interval();
        let scheduled = self.aps[ap_index].app.next_transmission(now);
        let ap_id = self.aps[ap_index].id;
        let packet = scheduled.packet;
        let frame = Frame::new(
            ap_id,
            Destination::Unicast(packet.destination),
            packet.payload_bytes,
            CarqMessage::Data(packet),
        );
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        self.medium.transmit_into_traced(
            now,
            &frame,
            self.config.data_rate,
            &mut self.rng,
            &mut deliveries,
            &mut self.sink,
        );
        self.delivery_scratch = deliveries;
        // Idealised loss feedback for the AP-side retransmission baseline: the
        // AP learns about a loss if the destination was close enough to have
        // NACKed it (median SNR above the carrier-sense floor).
        if matches!(
            self.aps[ap_index].app.config().policy,
            ApSchedulingPolicy::RetransmitUnacked { .. }
        ) {
            if let Some(delivery) =
                self.delivery_scratch.iter().find(|d| d.node == packet.destination)
            {
                if !delivery.outcome.is_received() && delivery.snr_db > -5.0 {
                    self.aps[ap_index].app.report_missing(packet.destination, packet.seq);
                    self.ap_retransmissions_queued += 1;
                    if S::ENABLED {
                        self.sink.record(TraceRecord::ApRetransmitQueued {
                            at: now,
                            ap: ap_id.as_u32(),
                            destination: packet.destination.as_u32(),
                            seq: packet.seq.value(),
                        });
                    }
                }
            }
        }
        self.deliver_scratch(&Rc::new(frame), scheduler);
        scheduler.schedule_in(interval, VanetEvent::ApTransmit { ap_index });
    }

    fn handle_car_transmit(
        &mut self,
        now: SimTime,
        node: NodeId,
        message: CarqMessage,
        dst: Destination,
        scheduler: &mut Scheduler<VanetEvent>,
    ) {
        // CSMA: defer while the medium is sensed busy.
        let busy_until = self.medium.busy_until(now);
        if busy_until > now {
            let timing = *self.medium.timing();
            let retry_at = self.csma.next_opportunity(now, busy_until, &timing, &mut self.rng);
            self.csma_deferrals += 1;
            // Emitted *after* the backoff draw, so tracing never reorders it.
            if S::ENABLED {
                self.sink.record(TraceRecord::CsmaDeferred {
                    at: now,
                    node: node.as_u32(),
                    until: retry_at,
                });
            }
            scheduler.schedule_at(retry_at, VanetEvent::CarTransmit { node, message, dst });
            return;
        }
        // The ARQ decision records are emitted at actual transmission time
        // (after carrier sensing cleared), so REQUESTs always precede the
        // COOP-DATA they trigger in the trace.
        if S::ENABLED {
            match &message {
                CarqMessage::Request(request) => self.sink.record(TraceRecord::ArqRequest {
                    at: now,
                    node: node.as_u32(),
                    seqs: u32::try_from(request.seqs.len()).unwrap_or(u32::MAX),
                    cooperators: request.cooperator_count,
                }),
                CarqMessage::CoopData(_) => self.sink.record(TraceRecord::CoopRetransmit {
                    at: now,
                    node: node.as_u32(),
                    seqs: 1,
                }),
                CarqMessage::CodedData(_) => self.sink.record(TraceRecord::CoopRetransmit {
                    at: now,
                    node: node.as_u32(),
                    seqs: 2,
                }),
                CarqMessage::Data(_) | CarqMessage::Hello(_) => {}
            }
        }
        let payload_bytes = message.encoded_bytes();
        let frame = Frame::new(node, dst, payload_bytes, message);
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        self.medium.transmit_into_traced(
            now,
            &frame,
            self.config.data_rate,
            &mut self.rng,
            &mut deliveries,
            &mut self.sink,
        );
        self.delivery_scratch = deliveries;
        self.deliver_scratch(&Rc::new(frame), scheduler);
    }

    fn handle_frame_delivery(
        &mut self,
        now: SimTime,
        to: NodeId,
        frame: &Frame<CarqMessage>,
        snr_db: f64,
        scheduler: &mut Scheduler<VanetEvent>,
    ) {
        // Record promiscuous data receptions for the evaluation (every laptop
        // captured every frame it could decode, whoever it was addressed to).
        if let CarqMessage::Data(packet) = &frame.payload {
            if self.is_car(to) {
                self.promiscuous
                    .entry((packet.destination, to))
                    .or_default()
                    .mark_received(packet.seq);
            }
        }
        let Some(idx) = self.car_index(to) else {
            return; // APs are traffic sources only in this model.
        };
        if !self.config.cooperation_enabled {
            // Baseline: data still counts as received (recorded above), but
            // the protocol machine is never driven, so no HELLOs, no
            // buffering, no recovery.
            if !matches!(frame.payload, CarqMessage::Data(_)) {
                return;
            }
            // Even the destination's own protocol instance is bypassed; the
            // promiscuous record above is the ground truth for the baseline.
            return;
        }
        if S::ENABLED {
            // Cooperation-buffer activity is observed as a counter delta
            // around the protocol handler — no protocol code path changes.
            let before = self.cars[idx].protocol.stats();
            let actions = self.cars[idx].protocol.handle_frame(now, frame, snr_db);
            let after = self.cars[idx].protocol.stats();
            let stored = after.packets_buffered_for_peers - before.packets_buffered_for_peers;
            let evicted = after.buffer_evictions - before.buffer_evictions;
            if stored > 0 || evicted > 0 {
                self.sink.record(TraceRecord::BufferStore {
                    at: now,
                    node: to.as_u32(),
                    stored: u32::try_from(stored).unwrap_or(u32::MAX),
                    evicted: u32::try_from(evicted).unwrap_or(u32::MAX),
                });
            }
            self.process_actions(now, to, actions, scheduler);
        } else {
            let actions = self.cars[idx].protocol.handle_frame(now, frame, snr_db);
            self.process_actions(now, to, actions, scheduler);
        }
    }

    fn handle_position_update(&mut self, now: SimTime, scheduler: &mut Scheduler<VanetEvent>) {
        for car in &self.cars {
            self.medium.update_position(car.id, car.mobility.position_at(now));
        }
        for ap in &self.aps {
            self.medium.update_position(ap.id, ap.position);
        }
        scheduler.schedule_in(self.config.position_update_interval, VanetEvent::PositionUpdate);
    }
}

impl<S: TraceSink> Model for VanetModel<S> {
    type Event = VanetEvent;

    fn on_dispatch(&mut self, now: SimTime, queue_depth: usize) {
        if S::ENABLED {
            self.sink.record(TraceRecord::EventDispatched {
                at: now,
                queue_depth: u32::try_from(queue_depth).unwrap_or(u32::MAX),
            });
        }
    }

    fn handle(&mut self, now: SimTime, event: VanetEvent, scheduler: &mut Scheduler<VanetEvent>) {
        match event {
            VanetEvent::CarStart { node } => {
                if !self.config.cooperation_enabled {
                    return;
                }
                if let Some(idx) = self.car_index(node) {
                    let actions = self.cars[idx].protocol.start(now);
                    self.process_actions(now, node, actions, scheduler);
                }
            }
            VanetEvent::PositionUpdate => self.handle_position_update(now, scheduler),
            VanetEvent::ApTransmit { ap_index } => {
                self.handle_ap_transmit(now, ap_index, scheduler)
            }
            VanetEvent::CarTransmit { node, message, dst } => {
                self.handle_car_transmit(now, node, message, dst, scheduler)
            }
            VanetEvent::FrameDelivery { to, frame, snr_db } => {
                self.handle_frame_delivery(now, to, &frame, snr_db, scheduler)
            }
            VanetEvent::CarqTimer { node, kind } => {
                if !self.config.cooperation_enabled {
                    return;
                }
                if let Some(idx) = self.car_index(node) {
                    let actions = self.cars[idx].protocol.handle_timer(now, kind);
                    self.process_actions(now, node, actions, scheduler);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Simulation;
    use vanet_dtn::ApConfig;
    use vanet_geo::{Point, Polyline};

    /// Builds a tiny scenario: an ideal medium, one AP at the origin, two cars
    /// driving slowly past it on a long straight road.
    fn tiny_model(cooperation: bool, seed: u64) -> VanetModel {
        let mut config = ModelConfig {
            medium: MediumConfig::ideal(),
            cooperation_enabled: cooperation,
            seed,
            ..ModelConfig::default()
        };
        config.carq = config.carq.clone().with_ap_timeout(SimDuration::from_secs(2));
        let mut model = VanetModel::new(config);
        let cars = vec![NodeId::new(1), NodeId::new(2)];
        let app = AccessPointApp::new(ApConfig::paper_testbed(cars.clone()).with_rate(10.0));
        model.add_access_point(NodeId::new(0), Point::new(0.0, 10.0), app);
        let road = Polyline::open(vec![Point::new(-50.0, 0.0), Point::new(500.0, 0.0)]);
        for (i, id) in cars.iter().enumerate() {
            let mobility =
                PathMobility::new(road.clone(), 10.0).with_start_offset(-(i as f64) * 20.0);
            model.add_car(*id, mobility);
        }
        model
    }

    fn run(model: VanetModel, horizon_secs: u64) -> VanetModel {
        let mut sim = Simulation::new(model).with_horizon(SimTime::from_secs(horizon_secs));
        for (t, ev) in sim.model().initial_events() {
            sim.schedule_at(t, ev);
        }
        sim.run();
        sim.into_model()
    }

    #[test]
    fn cars_receive_data_on_an_ideal_medium() {
        let model = run(tiny_model(true, 3), 10);
        let round = model.round_result();
        assert_eq!(round.cars(), vec![NodeId::new(1), NodeId::new(2)]);
        for car in [NodeId::new(1), NodeId::new(2)] {
            let flow = round.flow_for(car).expect("flow exists");
            assert!(flow.tx_by_ap_in_window() > 20, "car {car} window too small");
            assert_eq!(flow.lost_before_coop(), 0, "ideal medium loses nothing");
        }
        assert!(model.medium_stats().frames_sent > 100);
    }

    #[test]
    fn hello_exchange_builds_cooperator_relations() {
        let model = run(tiny_model(true, 4), 10);
        let car1 = model.car_protocol(NodeId::new(1));
        let car2 = model.car_protocol(NodeId::new(2));
        assert!(car1.cooperators().contains(NodeId::new(2)));
        assert!(car2.cooperators().contains(NodeId::new(1)));
        assert!(car1.cooperatees().cooperates_for(NodeId::new(2)));
        assert!(car2.cooperatees().cooperates_for(NodeId::new(1)));
        assert!(car1.stats().hellos_sent > 3);
        assert!(car1.stats().hellos_received > 3);
    }

    #[test]
    fn disabling_cooperation_suppresses_all_protocol_traffic() {
        let model = run(tiny_model(false, 5), 10);
        for car in [NodeId::new(1), NodeId::new(2)] {
            let stats = model.car_protocol(car).stats();
            assert_eq!(stats.hellos_sent, 0);
            assert_eq!(stats.requests_sent, 0);
            assert_eq!(stats.recovered_via_coop, 0);
        }
        // Data still flows and is recorded for the baseline statistics.
        let round = model.round_result();
        assert!(round.flow_for(NodeId::new(1)).unwrap().tx_by_ap_in_window() > 0);
    }

    #[test]
    fn node_stats_snapshot_lists_every_car() {
        let model = run(tiny_model(true, 6), 5);
        let stats = model.node_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].node, NodeId::new(1));
        assert_eq!(stats[1].node, NodeId::new(2));
    }

    #[test]
    fn initial_events_cover_all_nodes() {
        let model = tiny_model(true, 7);
        let events = model.initial_events();
        // 1 position update + 2 car starts + 1 AP.
        assert_eq!(events.len(), 4);
    }
}
