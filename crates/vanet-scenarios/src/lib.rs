//! # vanet-scenarios — end-to-end experiments of the C-ARQ reproduction
//!
//! This crate assembles the full simulation stack — event engine, mobility,
//! radio channel, MAC medium, AP traffic source and the Cooperative-ARQ
//! protocol — into runnable experiments:
//!
//! * [`model`] — the discrete-event [`model::VanetModel`]: one access-point
//!   set, one platoon of C-ARQ vehicles, a shared wireless medium, and the
//!   event plumbing between them.
//! * [`urban`] — the paper's testbed (Figure 2): three cars looping past an
//!   office-window AP at ~20 km/h for 30 rounds, 5 × 1000-byte packets per
//!   second per car at 1 Mbps. Regenerates Table 1 and Figures 3–8.
//! * [`highway`] — the drive-thru-Internet context experiment (reference [1]
//!   of the paper): loss rates of a car passing a roadside AP at highway
//!   speeds and different sending rates.
//! * [`multi_ap`] — the future-work extension quantified: how many AP passes
//!   a platoon needs to complete a file download with and without C-ARQ.
//!
//! ## Example
//!
//! ```rust,no_run
//! use vanet_scenarios::urban::{UrbanConfig, UrbanExperiment};
//!
//! let mut config = UrbanConfig::paper_testbed();
//! config.rounds = 3; // quick look; the paper uses 30
//! let result = UrbanExperiment::new(config).run();
//! let table = vanet_stats::table1(result.rounds());
//! println!("{}", vanet_stats::render_table1(&table));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod highway;
pub mod model;
pub mod multi_ap;
pub mod urban;

pub use highway::{HighwayConfig, HighwayExperiment, HighwayObservation};
pub use model::{ModelConfig, NodeStatsSnapshot, VanetModel};
pub use multi_ap::{MultiApConfig, MultiApExperiment, MultiApOutcome};
pub use urban::{ExperimentResult, UrbanConfig, UrbanExperiment};
