//! # vanet-scenarios — end-to-end experiments of the C-ARQ reproduction
//!
//! This crate assembles the full simulation stack — event engine, mobility,
//! radio channel, MAC medium, AP traffic source and the Cooperative-ARQ
//! protocol — into runnable experiments behind **one first-class API**:
//!
//! * [`Scenario`] — a named experiment family with a typed [`ParamSchema`]
//!   (documented parameters, defaults, ranges) and a `configure` step that
//!   validates a [`SweepPoint`] into a runnable [`ScenarioRun`];
//! * [`ScenarioRun`] — a configured experiment whose `run_round(round,
//!   seed)` is a **pure** function (all randomness derives from the seed),
//!   which is what lets rounds execute in any order and on any number of
//!   threads, plus an `aggregate` folding the per-round
//!   [`vanet_stats::RoundReport`]s into a [`vanet_stats::PointSummary`];
//! * [`ScenarioRegistry`] — scenarios discoverable by name, the hook the
//!   CLI's `scenario list / describe / run` subcommands and the sweep
//!   presets hang off.
//!
//! The built-in scenarios:
//!
//! * [`urban`] — the paper's testbed (Figure 2): three cars looping past an
//!   office-window AP at ~20 km/h for 30 rounds, 5 × 1000-byte packets per
//!   second per car at 1 Mbps. Regenerates Table 1 and Figures 3–8.
//! * [`highway`] — the drive-thru-Internet context experiment (reference \[1\]
//!   of the paper): loss rates of a car passing a roadside AP at highway
//!   speeds and different sending rates.
//! * [`multi_ap`] — the future-work extension quantified: how many AP passes
//!   a platoon needs to complete a file download with and without C-ARQ.
//!
//! ## Example
//!
//! ```rust,no_run
//! use vanet_scenarios::{run_rounds, ScenarioRegistry, SweepPoint};
//! use vanet_scenarios::{Param, ParamValue};
//!
//! let registry = ScenarioRegistry::builtin();
//! let urban = registry.get("urban").expect("built-in scenario");
//! println!("{}", urban.schema().render()); // typed, documented parameters
//!
//! // Configure a quick 3-round look (the paper uses 30 rounds).
//! let point = SweepPoint::new(vec![(Param::Rounds, ParamValue::Int(3))]);
//! let run = urban.configure(&point).expect("schema-valid point");
//! let reports = run_rounds(run.as_ref(), 0x2008_1cdc, 4); // 4 worker threads
//! let summary = run.aggregate(&reports);
//! println!("loss after cooperation: {:.1}%", summary.get("loss_after_pct_mean").unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod highway;
pub mod model;
pub mod multi_ap;
pub mod params;
pub mod registry;
pub mod scenario;
pub mod schema;
pub mod urban;

pub use highway::{HighwayConfig, HighwayRun, HighwayScenario};
pub use model::{ModelConfig, NodeStatsSnapshot, VanetModel};
pub use multi_ap::{MultiApConfig, MultiApOutcome, MultiApRun, MultiApScenario};
pub use params::{Param, ParamValue, SweepPoint};
pub use registry::ScenarioRegistry;
pub use scenario::{round_seed, run_point, run_rounds, LossSamples, Scenario, ScenarioRun};
pub use schema::{ParamError, ParamKind, ParamSchema, ParamSpec};
pub use urban::{UrbanConfig, UrbanRun, UrbanScenario};
