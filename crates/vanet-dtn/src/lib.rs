//! # vanet-dtn — delay-tolerant networking substrate
//!
//! The Cooperative ARQ protocol sits on top of a small DTN substrate that
//! this crate provides:
//!
//! * [`packet`] — numbered data packets ([`packet::SeqNo`],
//!   [`packet::DataPacket`]) addressed to individual cars, mirroring the
//!   AP's "numbered packets addressed to each car" traffic of the testbed.
//! * [`buffer`] — per-destination [`buffer::ReceptionMap`]s (which sequence
//!   numbers a node holds, which are missing between the first and last
//!   received) and the capacity-limited [`buffer::CoopBuffer`] in which a
//!   car keeps packets overheard on behalf of its cooperators.
//! * [`ap`] — the access-point traffic source: periodic numbered packets to
//!   each car in the experiment, with pluggable scheduling policies
//!   (fresh-data-only as in the paper, or an AP-side retransmission ARQ used
//!   as an ablation baseline).
//! * [`oracle`] — the joint-reception oracle ("virtual car"): the best any
//!   cooperative scheme could do given the per-car receptions, used for
//!   Figures 6–8 of the paper.
//! * [`epidemic`] — a summary-vector anti-entropy exchange in the style of
//!   epidemic routing, used as an overhead baseline against which the
//!   REQUEST-based recovery of C-ARQ is compared.
//!
//! ## Example
//!
//! The bookkeeping at the heart of the protocol: what a car holds, what it
//! is missing, and the best any cooperative scheme could recover (the
//! joint-reception "virtual car"):
//!
//! ```rust
//! use vanet_dtn::{JointReceptionOracle, ReceptionMap, SeqNo};
//! use vanet_mac::NodeId;
//!
//! // Car 1 heard packets 2,3,7 of its own flow; car 2 overheard 5 and 6.
//! let own: ReceptionMap = [2u32, 3, 7].into_iter().map(SeqNo::new).collect();
//! assert_eq!(own.missing(), vec![SeqNo::new(4), SeqNo::new(5), SeqNo::new(6)]);
//!
//! let mut oracle = JointReceptionOracle::new();
//! oracle.observe_map(NodeId::new(1), &own);
//! let overheard: ReceptionMap = [5u32, 6].into_iter().map(SeqNo::new).collect();
//! oracle.observe_map(NodeId::new(2), &overheard);
//! // Cooperation can recover 5 and 6, but nobody ever received 4.
//! let joint = oracle.union();
//! assert!(joint.contains(SeqNo::new(5)) && joint.contains(SeqNo::new(6)));
//! assert!(!joint.contains(SeqNo::new(4)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ap;
pub mod buffer;
pub mod epidemic;
pub mod oracle;
pub mod packet;

pub use ap::{AccessPointApp, ApConfig, ApSchedulingPolicy, ScheduledPacket};
pub use buffer::{CoopBuffer, ReceptionMap, StoreOutcome};
pub use epidemic::{AntiEntropySession, ExchangePlan, SummaryVector};
pub use oracle::JointReceptionOracle;
pub use packet::{DataPacket, SeqNo};
