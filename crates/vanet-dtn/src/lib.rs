//! # vanet-dtn — delay-tolerant networking substrate
//!
//! The Cooperative ARQ protocol sits on top of a small DTN substrate that
//! this crate provides:
//!
//! * [`packet`] — numbered data packets ([`packet::SeqNo`],
//!   [`packet::DataPacket`]) addressed to individual cars, mirroring the
//!   AP's "numbered packets addressed to each car" traffic of the testbed.
//! * [`buffer`] — per-destination [`buffer::ReceptionMap`]s (which sequence
//!   numbers a node holds, which are missing between the first and last
//!   received) and the capacity-limited [`buffer::CoopBuffer`] in which a
//!   car keeps packets overheard on behalf of its cooperators.
//! * [`ap`] — the access-point traffic source: periodic numbered packets to
//!   each car in the experiment, with pluggable scheduling policies
//!   (fresh-data-only as in the paper, or an AP-side retransmission ARQ used
//!   as an ablation baseline).
//! * [`oracle`] — the joint-reception oracle ("virtual car"): the best any
//!   cooperative scheme could do given the per-car receptions, used for
//!   Figures 6–8 of the paper.
//! * [`epidemic`] — a summary-vector anti-entropy exchange in the style of
//!   epidemic routing, used as an overhead baseline against which the
//!   REQUEST-based recovery of C-ARQ is compared.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ap;
pub mod buffer;
pub mod epidemic;
pub mod oracle;
pub mod packet;

pub use ap::{AccessPointApp, ApConfig, ApSchedulingPolicy, ScheduledPacket};
pub use buffer::{CoopBuffer, ReceptionMap};
pub use epidemic::{AntiEntropySession, ExchangePlan, SummaryVector};
pub use oracle::JointReceptionOracle;
pub use packet::{DataPacket, SeqNo};
