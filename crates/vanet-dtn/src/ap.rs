//! The access-point traffic source.
//!
//! The testbed's AP "transmitted three different data flows addressed to each
//! car on the experiment consisting of 5 ICMP Echo Request messages per
//! second with an ICMP payload of 1000 bytes". [`AccessPointApp`] generates
//! exactly that schedule: every `1/rate` seconds it emits one packet for the
//! next car in round-robin order, each flow carrying its own sequence
//! numbers.
//!
//! For the retransmission ablation (§3.2 of the paper argues retransmissions
//! waste coverage time; we quantify that), the AP can instead run an
//! [`ApSchedulingPolicy::RetransmitUnacked`] policy which interleaves
//! retransmissions of packets reported missing by the cars.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};
use vanet_mac::NodeId;

use crate::packet::{DataPacket, SeqNo};

/// How the AP chooses what to send in each transmission slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ApSchedulingPolicy {
    /// Always send fresh (never-sent) data — the paper's configuration:
    /// "no retransmissions are used […] the channel can be used by the AP to
    /// transmit as much new data addressed to the cars as possible".
    FreshDataOnly,
    /// Retransmit packets that cars have reported missing (via out-of-band
    /// feedback assumed perfect), interleaving `retransmit_ratio` of the
    /// slots for retransmissions. This is the AP-side ARQ baseline.
    RetransmitUnacked {
        /// Fraction of transmission slots devoted to retransmissions when
        /// there is pending feedback (0.0–1.0).
        retransmit_ratio: f64,
    },
}

/// Configuration of the AP traffic source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApConfig {
    /// The cars served by this AP, in round-robin order.
    pub cars: Vec<NodeId>,
    /// Packets per second *per car*.
    pub packets_per_second_per_car: f64,
    /// Payload size in bytes (the paper uses 1000-byte ICMP payloads).
    pub payload_bytes: u32,
    /// Scheduling policy.
    pub policy: ApSchedulingPolicy,
}

impl ApConfig {
    /// The paper's configuration for a given set of cars: 5 packets/s per
    /// car, 1000-byte payloads, fresh data only.
    pub fn paper_testbed(cars: Vec<NodeId>) -> Self {
        ApConfig {
            cars,
            packets_per_second_per_car: 5.0,
            payload_bytes: 1_000,
            policy: ApSchedulingPolicy::FreshDataOnly,
        }
    }

    /// Switches to the AP-side retransmission baseline.
    pub fn with_retransmissions(mut self, retransmit_ratio: f64) -> Self {
        self.policy = ApSchedulingPolicy::RetransmitUnacked {
            retransmit_ratio: retransmit_ratio.clamp(0.0, 1.0),
        };
        self
    }

    /// Overrides the per-car packet rate.
    pub fn with_rate(mut self, packets_per_second_per_car: f64) -> Self {
        self.packets_per_second_per_car = packets_per_second_per_car;
        self
    }

    /// The interval between consecutive AP transmissions (across all flows).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no cars or a non-positive rate.
    pub fn transmission_interval(&self) -> SimDuration {
        assert!(!self.cars.is_empty(), "AP must serve at least one car");
        assert!(self.packets_per_second_per_car > 0.0, "rate must be positive");
        SimDuration::from_secs_f64(1.0 / (self.packets_per_second_per_car * self.cars.len() as f64))
    }
}

/// One packet the AP has decided to transmit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledPacket {
    /// The packet to put on the air.
    pub packet: DataPacket,
    /// Whether this is a retransmission of a previously sent packet.
    pub is_retransmission: bool,
}

/// The access-point application state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessPointApp {
    config: ApConfig,
    next_seq: BTreeMap<NodeId, SeqNo>,
    next_car_index: usize,
    sent_log: BTreeMap<NodeId, Vec<(SeqNo, SimTime)>>,
    retransmit_queue: VecDeque<(NodeId, SeqNo)>,
    slots_since_retransmit: u32,
}

impl AccessPointApp {
    /// Creates an AP application.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no cars or a non-positive rate.
    pub fn new(config: ApConfig) -> Self {
        assert!(!config.cars.is_empty(), "AP must serve at least one car");
        assert!(config.packets_per_second_per_car > 0.0, "rate must be positive");
        let next_seq = config.cars.iter().map(|c| (*c, SeqNo::FIRST)).collect();
        let sent_log = config.cars.iter().map(|c| (*c, Vec::new())).collect();
        AccessPointApp {
            config,
            next_seq,
            next_car_index: 0,
            sent_log,
            retransmit_queue: VecDeque::new(),
            slots_since_retransmit: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ApConfig {
        &self.config
    }

    /// The interval between consecutive AP transmissions.
    pub fn transmission_interval(&self) -> SimDuration {
        self.config.transmission_interval()
    }

    /// Decides the packet to transmit in the slot at `now` and records it in
    /// the sent log.
    pub fn next_transmission(&mut self, now: SimTime) -> ScheduledPacket {
        if let Some(scheduled) = self.maybe_retransmission(now) {
            return scheduled;
        }
        let car = self.config.cars[self.next_car_index];
        self.next_car_index = (self.next_car_index + 1) % self.config.cars.len();
        let seq = self.next_seq[&car];
        self.next_seq.insert(car, seq.next());
        self.sent_log.get_mut(&car).expect("car registered at construction").push((seq, now));
        ScheduledPacket {
            packet: DataPacket::new(car, seq, self.config.payload_bytes, now),
            is_retransmission: false,
        }
    }

    fn maybe_retransmission(&mut self, now: SimTime) -> Option<ScheduledPacket> {
        let ApSchedulingPolicy::RetransmitUnacked { retransmit_ratio } = self.config.policy else {
            return None;
        };
        if self.retransmit_queue.is_empty() {
            return None;
        }
        // Interleave: allow a retransmission once every ceil(1/ratio) slots.
        let period = if retransmit_ratio >= 1.0 {
            1
        } else {
            (1.0 / retransmit_ratio.max(1e-6)).ceil() as u32
        };
        self.slots_since_retransmit += 1;
        if self.slots_since_retransmit < period {
            return None;
        }
        self.slots_since_retransmit = 0;
        let (car, seq) = self.retransmit_queue.pop_front().expect("checked non-empty");
        Some(ScheduledPacket {
            packet: DataPacket::new(car, seq, self.config.payload_bytes, now),
            is_retransmission: true,
        })
    }

    /// Reports feedback that `car` is missing `seq` (only meaningful under
    /// [`ApSchedulingPolicy::RetransmitUnacked`]). Duplicate reports are
    /// ignored.
    pub fn report_missing(&mut self, car: NodeId, seq: SeqNo) {
        if matches!(self.config.policy, ApSchedulingPolicy::FreshDataOnly) {
            return;
        }
        if !self.retransmit_queue.contains(&(car, seq)) {
            self.retransmit_queue.push_back((car, seq));
        }
    }

    /// Number of queued retransmissions.
    pub fn pending_retransmissions(&self) -> usize {
        self.retransmit_queue.len()
    }

    /// Sequence numbers (fresh transmissions only) sent to `car` so far,
    /// with their transmission times.
    pub fn sent_to(&self, car: NodeId) -> &[(SeqNo, SimTime)] {
        self.sent_log.get(&car).map_or(&[], Vec::as_slice)
    }

    /// Sequence numbers sent to `car` within the inclusive time window
    /// `[from, to]` — used to compute the paper's "Tx by the AP" column.
    pub fn sent_to_in_window(&self, car: NodeId, from: SimTime, to: SimTime) -> Vec<SeqNo> {
        self.sent_to(car).iter().filter(|(_, t)| *t >= from && *t <= to).map(|(s, _)| *s).collect()
    }

    /// Total number of fresh packets sent to `car`.
    pub fn total_sent_to(&self, car: NodeId) -> usize {
        self.sent_to(car).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cars() -> Vec<NodeId> {
        vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]
    }

    #[test]
    fn paper_config_interval_is_one_fifteenth_second() {
        let cfg = ApConfig::paper_testbed(cars());
        let interval = cfg.transmission_interval();
        assert!((interval.as_secs_f64() - 1.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn round_robin_assigns_independent_sequence_numbers() {
        let mut ap = AccessPointApp::new(ApConfig::paper_testbed(cars()));
        let mut seen = Vec::new();
        for i in 0..6 {
            let tx = ap.next_transmission(SimTime::from_millis(i * 67));
            assert!(!tx.is_retransmission);
            seen.push((tx.packet.destination.as_u32(), tx.packet.seq.value()));
        }
        assert_eq!(seen, vec![(1, 0), (2, 0), (3, 0), (1, 1), (2, 1), (3, 1)]);
        assert_eq!(ap.total_sent_to(NodeId::new(1)), 2);
        assert_eq!(ap.sent_to(NodeId::new(2)).len(), 2);
    }

    #[test]
    fn sent_window_query() {
        let mut ap = AccessPointApp::new(ApConfig::paper_testbed(cars()));
        for i in 0..30u64 {
            let _ = ap.next_transmission(SimTime::from_millis(i * 67));
        }
        let window = ap.sent_to_in_window(
            NodeId::new(1),
            SimTime::from_millis(200),
            SimTime::from_millis(1_200),
        );
        assert!(!window.is_empty());
        assert!(window.len() < ap.total_sent_to(NodeId::new(1)));
    }

    #[test]
    fn fresh_data_policy_ignores_missing_reports() {
        let mut ap = AccessPointApp::new(ApConfig::paper_testbed(cars()));
        ap.report_missing(NodeId::new(1), SeqNo::new(0));
        assert_eq!(ap.pending_retransmissions(), 0);
    }

    #[test]
    fn retransmission_policy_interleaves_retransmissions() {
        let cfg = ApConfig::paper_testbed(cars()).with_retransmissions(0.5);
        let mut ap = AccessPointApp::new(cfg);
        // Send a few fresh packets, then report two losses.
        for i in 0..3 {
            let _ = ap.next_transmission(SimTime::from_millis(i * 67));
        }
        ap.report_missing(NodeId::new(1), SeqNo::new(0));
        ap.report_missing(NodeId::new(2), SeqNo::new(0));
        ap.report_missing(NodeId::new(2), SeqNo::new(0)); // duplicate ignored
        assert_eq!(ap.pending_retransmissions(), 2);
        let mut retransmissions = 0;
        for i in 3..13 {
            let tx = ap.next_transmission(SimTime::from_millis(i * 67));
            if tx.is_retransmission {
                retransmissions += 1;
            }
        }
        assert_eq!(retransmissions, 2, "both queued retransmissions must eventually go out");
        assert_eq!(ap.pending_retransmissions(), 0);
    }

    #[test]
    fn retransmissions_do_not_consume_fresh_sequence_numbers() {
        let cfg = ApConfig::paper_testbed(vec![NodeId::new(1)]).with_retransmissions(1.0);
        let mut ap = AccessPointApp::new(cfg);
        let first = ap.next_transmission(SimTime::ZERO);
        assert_eq!(first.packet.seq, SeqNo::new(0));
        ap.report_missing(NodeId::new(1), SeqNo::new(0));
        let second = ap.next_transmission(SimTime::from_millis(200));
        assert!(second.is_retransmission);
        assert_eq!(second.packet.seq, SeqNo::new(0));
        let third = ap.next_transmission(SimTime::from_millis(400));
        assert!(!third.is_retransmission);
        assert_eq!(third.packet.seq, SeqNo::new(1));
        // The fresh-data log only contains fresh transmissions.
        assert_eq!(ap.total_sent_to(NodeId::new(1)), 2);
    }

    #[test]
    #[should_panic(expected = "at least one car")]
    fn empty_car_list_rejected() {
        let _ = AccessPointApp::new(ApConfig::paper_testbed(vec![]));
    }

    #[test]
    fn config_builders() {
        let cfg = ApConfig::paper_testbed(cars()).with_rate(10.0);
        assert_eq!(cfg.packets_per_second_per_car, 10.0);
        let cfg = cfg.with_retransmissions(2.0);
        assert_eq!(cfg.policy, ApSchedulingPolicy::RetransmitUnacked { retransmit_ratio: 1.0 });
    }
}
