//! Numbered data packets.
//!
//! The AP of the testbed "is continually transmitting numbered packets
//! addressed to each car"; a car is associated from the moment it receives
//! the first such packet. Sequence numbers are therefore per-destination:
//! each car has its own numbered flow.

use std::fmt;

use serde::{Deserialize, Serialize};
use sim_core::SimTime;
use vanet_mac::NodeId;

/// A per-flow sequence number (the "packet number" axis of the paper's
/// Figures 3–8).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SeqNo(u32);

impl SeqNo {
    /// The first sequence number of a flow.
    pub const FIRST: SeqNo = SeqNo(0);

    /// Creates a sequence number from its raw value.
    pub const fn new(value: u32) -> Self {
        SeqNo(value)
    }

    /// The raw value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The next sequence number.
    pub const fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }

    /// Iterates over the inclusive range `self..=last`.
    pub fn range_to_inclusive(self, last: SeqNo) -> impl Iterator<Item = SeqNo> {
        (self.0..=last.0).map(SeqNo)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for SeqNo {
    fn from(v: u32) -> Self {
        SeqNo(v)
    }
}

impl From<SeqNo> for u32 {
    fn from(v: SeqNo) -> Self {
        v.0
    }
}

/// A data packet transmitted by an access point to one car.
///
/// The testbed used ICMP echo requests with a 1000-byte payload; the payload
/// contents are irrelevant to the protocol, so only the size is carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataPacket {
    /// The car this packet is addressed to.
    pub destination: NodeId,
    /// Sequence number within that car's flow.
    pub seq: SeqNo,
    /// Payload size in bytes.
    pub payload_bytes: u32,
    /// When the AP first transmitted this packet.
    pub sent_at: SimTime,
}

impl DataPacket {
    /// Creates a data packet.
    pub fn new(destination: NodeId, seq: SeqNo, payload_bytes: u32, sent_at: SimTime) -> Self {
        DataPacket { destination, seq, payload_bytes, sent_at }
    }

    /// The `(destination, seq)` pair that uniquely identifies the packet.
    pub fn key(&self) -> (NodeId, SeqNo) {
        (self.destination, self.seq)
    }
}

impl fmt::Display for DataPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{} ({} B)", self.seq, self.destination, self.payload_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqno_ordering_and_arithmetic() {
        let a = SeqNo::new(3);
        assert_eq!(a.value(), 3);
        assert_eq!(a.next(), SeqNo::new(4));
        assert!(SeqNo::FIRST < a);
        assert_eq!(u32::from(a), 3);
        assert_eq!(SeqNo::from(3u32), a);
        assert_eq!(a.to_string(), "#3");
    }

    #[test]
    fn seqno_ranges() {
        let seqs: Vec<u32> =
            SeqNo::new(2).range_to_inclusive(SeqNo::new(5)).map(SeqNo::value).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
        assert_eq!(SeqNo::new(5).range_to_inclusive(SeqNo::new(2)).count(), 0);
    }

    #[test]
    fn packet_key_and_display() {
        let p = DataPacket::new(NodeId::new(2), SeqNo::new(7), 1_000, SimTime::from_secs(1));
        assert_eq!(p.key(), (NodeId::new(2), SeqNo::new(7)));
        assert!(p.to_string().contains("#7"));
        assert!(p.to_string().contains("n2"));
    }
}
