//! Reception maps and cooperation buffers.
//!
//! Two bookkeeping structures drive the Cooperative-ARQ phase:
//!
//! * every car keeps, for its *own* flow, a [`ReceptionMap`]: which sequence
//!   numbers it has received from the AP and which are missing "from the
//!   first to the last received" (the paper's recovery target);
//! * every car keeps a [`CoopBuffer`] with the packets it has overheard that
//!   are addressed to the cars that listed it as a cooperator.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use vanet_mac::NodeId;

use crate::packet::{DataPacket, SeqNo};

/// Tracks which sequence numbers of one flow have been received.
///
/// # Examples
///
/// ```
/// use vanet_dtn::{ReceptionMap, SeqNo};
///
/// let mut map = ReceptionMap::new();
/// map.mark_received(SeqNo::new(3));
/// map.mark_received(SeqNo::new(6));
/// assert_eq!(map.missing(), vec![SeqNo::new(4), SeqNo::new(5)]);
/// assert_eq!(map.received_count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceptionMap {
    received: BTreeSet<SeqNo>,
}

impl ReceptionMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        ReceptionMap::default()
    }

    /// Marks `seq` as received. Returns `true` if it was not already present.
    pub fn mark_received(&mut self, seq: SeqNo) -> bool {
        self.received.insert(seq)
    }

    /// Whether `seq` has been received.
    pub fn contains(&self, seq: SeqNo) -> bool {
        self.received.contains(&seq)
    }

    /// Number of distinct sequence numbers received.
    pub fn received_count(&self) -> usize {
        self.received.len()
    }

    /// Whether nothing has been received yet.
    pub fn is_empty(&self) -> bool {
        self.received.is_empty()
    }

    /// The lowest sequence number received, if any.
    pub fn first(&self) -> Option<SeqNo> {
        self.received.iter().next().copied()
    }

    /// The highest sequence number received, if any.
    pub fn last(&self) -> Option<SeqNo> {
        self.received.iter().next_back().copied()
    }

    /// The sequence numbers missing between the first and the last received —
    /// the recovery target of the Cooperative-ARQ phase ("recover all packets
    /// from the first to the last received from the AP").
    pub fn missing(&self) -> Vec<SeqNo> {
        match (self.first(), self.last()) {
            (Some(first), Some(last)) => {
                first.range_to_inclusive(last).filter(|s| !self.received.contains(s)).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Number of missing sequence numbers between first and last received.
    pub fn missing_count(&self) -> usize {
        match (self.first(), self.last()) {
            (Some(first), Some(last)) => {
                (last.value() - first.value() + 1) as usize - self.received.len()
            }
            _ => 0,
        }
    }

    /// The span (first..=last) length, i.e. how many packets the AP sent to
    /// this flow while the node could observe them. Zero when nothing was
    /// received.
    pub fn span_len(&self) -> usize {
        match (self.first(), self.last()) {
            (Some(first), Some(last)) => (last.value() - first.value() + 1) as usize,
            _ => 0,
        }
    }

    /// Iterates over the received sequence numbers in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = SeqNo> + '_ {
        self.received.iter().copied()
    }

    /// Removes everything (e.g. when a new AP session starts).
    pub fn clear(&mut self) {
        self.received.clear();
    }
}

impl FromIterator<SeqNo> for ReceptionMap {
    fn from_iter<I: IntoIterator<Item = SeqNo>>(iter: I) -> Self {
        ReceptionMap { received: iter.into_iter().collect() }
    }
}

impl Extend<SeqNo> for ReceptionMap {
    fn extend<I: IntoIterator<Item = SeqNo>>(&mut self, iter: I) {
        self.received.extend(iter);
    }
}

/// What one [`CoopBuffer::store_with_eviction`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOutcome {
    /// Whether the packet was newly inserted (not already buffered).
    pub stored: bool,
    /// The sequence number evicted to make room, if the peer's flow was at
    /// capacity.
    pub evicted: Option<SeqNo>,
}

/// The packets a node buffers on behalf of other cars (its "cooperatees").
///
/// Capacity is bounded per peer; when full, the oldest buffered packet for
/// that peer is evicted first (the protocol requests packets in ascending
/// order, so older packets are the most likely to have been recovered
/// already).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoopBuffer {
    capacity_per_peer: usize,
    buffered: BTreeMap<NodeId, BTreeMap<SeqNo, DataPacket>>,
}

impl CoopBuffer {
    /// Creates a buffer that keeps at most `capacity_per_peer` packets per
    /// peer flow.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_per_peer: usize) -> Self {
        assert!(capacity_per_peer > 0, "capacity must be positive");
        CoopBuffer { capacity_per_peer, buffered: BTreeMap::new() }
    }

    /// Stores a packet overheard for `packet.destination`. Returns `true` if
    /// the packet was newly inserted (not already buffered).
    pub fn store(&mut self, packet: DataPacket) -> bool {
        self.store_with_eviction(packet).stored
    }

    /// [`CoopBuffer::store`] reporting what happened, so callers can count
    /// buffer drops: whether the packet was newly inserted and which
    /// sequence number (if any) was evicted to make room.
    pub fn store_with_eviction(&mut self, packet: DataPacket) -> StoreOutcome {
        let per_peer = self.buffered.entry(packet.destination).or_default();
        if per_peer.contains_key(&packet.seq) {
            return StoreOutcome { stored: false, evicted: None };
        }
        let mut evicted = None;
        if per_peer.len() >= self.capacity_per_peer {
            // Evict the oldest (lowest) sequence number.
            let oldest = *per_peer.keys().next().expect("non-empty by len check");
            per_peer.remove(&oldest);
            evicted = Some(oldest);
        }
        per_peer.insert(packet.seq, packet);
        StoreOutcome { stored: true, evicted }
    }

    /// Looks up a buffered packet for `peer` with sequence number `seq`.
    pub fn get(&self, peer: NodeId, seq: SeqNo) -> Option<&DataPacket> {
        self.buffered.get(&peer).and_then(|m| m.get(&seq))
    }

    /// Whether a packet for `peer`/`seq` is buffered.
    pub fn holds(&self, peer: NodeId, seq: SeqNo) -> bool {
        self.get(peer, seq).is_some()
    }

    /// Number of packets buffered for `peer`.
    pub fn buffered_for(&self, peer: NodeId) -> usize {
        self.buffered.get(&peer).map_or(0, BTreeMap::len)
    }

    /// Total number of buffered packets across all peers.
    pub fn len(&self) -> usize {
        self.buffered.values().map(BTreeMap::len).sum()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sequence numbers buffered for `peer`, ascending.
    pub fn seqs_for(&self, peer: NodeId) -> Vec<SeqNo> {
        self.buffered.get(&peer).map_or_else(Vec::new, |m| m.keys().copied().collect())
    }

    /// Drops everything buffered for `peer` (e.g. when the peer leaves the
    /// platoon or has recovered everything).
    pub fn drop_peer(&mut self, peer: NodeId) {
        self.buffered.remove(&peer);
    }

    /// Drops all buffered packets.
    pub fn clear(&mut self) {
        self.buffered.clear();
    }

    /// The per-peer capacity this buffer was created with.
    pub fn capacity_per_peer(&self) -> usize {
        self.capacity_per_peer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert, prop_assert_eq, proptest};
    use sim_core::SimTime;

    fn pkt(dst: u32, seq: u32) -> DataPacket {
        DataPacket::new(NodeId::new(dst), SeqNo::new(seq), 1_000, SimTime::ZERO)
    }

    #[test]
    fn reception_map_tracks_missing_between_first_and_last() {
        let mut map = ReceptionMap::new();
        assert!(map.is_empty());
        assert_eq!(map.missing(), Vec::<SeqNo>::new());
        assert_eq!(map.span_len(), 0);
        for s in [2u32, 3, 6, 9] {
            assert!(map.mark_received(SeqNo::new(s)));
        }
        assert!(!map.mark_received(SeqNo::new(3)), "duplicate reception");
        assert_eq!(map.first(), Some(SeqNo::new(2)));
        assert_eq!(map.last(), Some(SeqNo::new(9)));
        assert_eq!(map.span_len(), 8);
        assert_eq!(map.received_count(), 4);
        assert_eq!(map.missing_count(), 4);
        let missing: Vec<u32> = map.missing().into_iter().map(SeqNo::value).collect();
        assert_eq!(missing, vec![4, 5, 7, 8]);
        assert!(map.contains(SeqNo::new(6)));
        assert!(!map.contains(SeqNo::new(7)));
        map.clear();
        assert!(map.is_empty());
    }

    #[test]
    fn reception_map_collects_from_iterator() {
        let map: ReceptionMap = (0..5u32).map(SeqNo::new).collect();
        assert_eq!(map.received_count(), 5);
        assert_eq!(map.missing_count(), 0);
        let mut extended = map.clone();
        extended.extend([SeqNo::new(7)]);
        assert_eq!(extended.missing(), vec![SeqNo::new(5), SeqNo::new(6)]);
        assert_eq!(map.iter().count(), 5);
    }

    #[test]
    fn coop_buffer_stores_and_looks_up() {
        let mut buf = CoopBuffer::new(10);
        assert!(buf.is_empty());
        assert!(buf.store(pkt(1, 5)));
        assert!(!buf.store(pkt(1, 5)), "duplicate store");
        assert!(buf.store(pkt(2, 5)));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.buffered_for(NodeId::new(1)), 1);
        assert!(buf.holds(NodeId::new(1), SeqNo::new(5)));
        assert!(!buf.holds(NodeId::new(1), SeqNo::new(6)));
        assert_eq!(buf.get(NodeId::new(2), SeqNo::new(5)).unwrap().destination, NodeId::new(2));
        assert_eq!(buf.seqs_for(NodeId::new(1)), vec![SeqNo::new(5)]);
        buf.drop_peer(NodeId::new(1));
        assert_eq!(buf.buffered_for(NodeId::new(1)), 0);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity_per_peer(), 10);
    }

    #[test]
    fn coop_buffer_evicts_oldest_when_full() {
        let mut buf = CoopBuffer::new(3);
        for s in 0..5u32 {
            buf.store(pkt(1, s));
        }
        assert_eq!(buf.buffered_for(NodeId::new(1)), 3);
        let seqs: Vec<u32> = buf.seqs_for(NodeId::new(1)).into_iter().map(SeqNo::value).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest packets evicted first");
    }

    #[test]
    fn store_with_eviction_reports_what_happened() {
        let mut buf = CoopBuffer::new(2);
        assert_eq!(
            buf.store_with_eviction(pkt(1, 3)),
            StoreOutcome { stored: true, evicted: None }
        );
        assert_eq!(
            buf.store_with_eviction(pkt(1, 3)),
            StoreOutcome { stored: false, evicted: None },
            "duplicates are rejected without evicting"
        );
        assert_eq!(
            buf.store_with_eviction(pkt(1, 4)),
            StoreOutcome { stored: true, evicted: None }
        );
        assert_eq!(
            buf.store_with_eviction(pkt(1, 5)),
            StoreOutcome { stored: true, evicted: Some(SeqNo::new(3)) },
            "the oldest packet makes room"
        );
        // Another peer's flow has its own capacity.
        assert_eq!(
            buf.store_with_eviction(pkt(2, 9)),
            StoreOutcome { stored: true, evicted: None }
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = CoopBuffer::new(0);
    }

    proptest! {
        /// received + missing always equals the span between first and last.
        #[test]
        fn prop_reception_map_partition(seqs in proptest::collection::btree_set(0u32..500, 0..100)) {
            let map: ReceptionMap = seqs.iter().copied().map(SeqNo::new).collect();
            prop_assert_eq!(map.received_count() + map.missing_count(), map.span_len());
            for m in map.missing() {
                prop_assert!(!map.contains(m));
            }
        }

        /// The buffer never exceeds its per-peer capacity, only ever holds
        /// packets that were actually stored, and when packets arrive in
        /// ascending order it retains the newest ones.
        #[test]
        fn prop_buffer_capacity_respected(seqs in proptest::collection::vec(0u32..200, 1..80), cap in 1usize..20) {
            let mut buf = CoopBuffer::new(cap);
            for s in &seqs {
                buf.store(pkt(1, *s));
            }
            prop_assert!(buf.buffered_for(NodeId::new(1)) <= cap);
            for held in buf.seqs_for(NodeId::new(1)) {
                prop_assert!(seqs.contains(&held.value()));
            }

            // Ascending arrival (the AP's actual pattern): the newest `cap`
            // distinct packets must be retained.
            let mut sorted: Vec<u32> = seqs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let mut ordered = CoopBuffer::new(cap);
            for s in &sorted {
                ordered.store(pkt(1, *s));
            }
            let expect_newest: Vec<u32> = sorted.iter().rev().take(cap).rev().copied().collect();
            let held: Vec<u32> = ordered.seqs_for(NodeId::new(1)).into_iter().map(SeqNo::value).collect();
            prop_assert_eq!(held, expect_newest);
        }
    }
}
