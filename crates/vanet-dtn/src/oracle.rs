//! The joint-reception oracle ("virtual car").
//!
//! Figures 6–8 of the paper compare the post-cooperation reception of each
//! car against "the joint probability of reception of the different packets
//! in car 1, 2 or 3": if *any* car in the platoon received a packet, a
//! perfect cooperation scheme would deliver it to its destination. The paper
//! concludes the protocol is "almost optimal" because the two curves nearly
//! coincide. This module computes that bound from the per-car reception
//! observations so that every experiment can report how close the protocol
//! came to it.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vanet_mac::NodeId;

use crate::buffer::ReceptionMap;
use crate::packet::SeqNo;

/// Joint-reception oracle over a set of observers.
///
/// For a given destination flow, the oracle records which sequence numbers
/// each observer (the destination itself or any other car) received, and can
/// answer "could a perfect cooperation scheme have delivered seq `s`?".
///
/// # Examples
///
/// ```
/// use vanet_dtn::{JointReceptionOracle, SeqNo};
/// use vanet_mac::NodeId;
///
/// let mut oracle = JointReceptionOracle::new();
/// oracle.observe(NodeId::new(1), SeqNo::new(4));
/// oracle.observe(NodeId::new(3), SeqNo::new(9));
/// assert!(oracle.jointly_received(SeqNo::new(9)));
/// assert!(!oracle.jointly_received(SeqNo::new(5)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointReceptionOracle {
    per_observer: BTreeMap<NodeId, ReceptionMap>,
}

impl JointReceptionOracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        JointReceptionOracle::default()
    }

    /// Records that `observer` received sequence number `seq` of the flow
    /// under study.
    pub fn observe(&mut self, observer: NodeId, seq: SeqNo) {
        self.per_observer.entry(observer).or_default().mark_received(seq);
    }

    /// Merges a whole reception map for an observer (overwrites nothing,
    /// only adds).
    pub fn observe_map(&mut self, observer: NodeId, map: &ReceptionMap) {
        self.per_observer.entry(observer).or_default().extend(map.iter());
    }

    /// Whether at least one observer received `seq`.
    pub fn jointly_received(&self, seq: SeqNo) -> bool {
        self.per_observer.values().any(|m| m.contains(seq))
    }

    /// Whether a specific observer received `seq`.
    pub fn received_by(&self, observer: NodeId, seq: SeqNo) -> bool {
        self.per_observer.get(&observer).is_some_and(|m| m.contains(seq))
    }

    /// The union reception map across all observers.
    pub fn union(&self) -> ReceptionMap {
        self.per_observer.values().flat_map(ReceptionMap::iter).collect()
    }

    /// The set of observers that have reported at least one reception.
    pub fn observers(&self) -> Vec<NodeId> {
        self.per_observer.keys().copied().collect()
    }

    /// Of the sequence numbers in `targets`, how many were received by at
    /// least one observer. This is the denominator for the paper's
    /// "the destination recovers all packets *provided that the platoon has
    /// them*" optimality statement.
    pub fn recoverable_count(&self, targets: &[SeqNo]) -> usize {
        targets.iter().filter(|s| self.jointly_received(**s)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert, prop_assert_eq, proptest};

    #[test]
    fn union_and_joint_queries() {
        let mut oracle = JointReceptionOracle::new();
        oracle.observe(NodeId::new(1), SeqNo::new(0));
        oracle.observe(NodeId::new(2), SeqNo::new(1));
        oracle.observe(NodeId::new(3), SeqNo::new(1));
        assert!(oracle.jointly_received(SeqNo::new(0)));
        assert!(oracle.jointly_received(SeqNo::new(1)));
        assert!(!oracle.jointly_received(SeqNo::new(2)));
        assert!(oracle.received_by(NodeId::new(2), SeqNo::new(1)));
        assert!(!oracle.received_by(NodeId::new(2), SeqNo::new(0)));
        assert_eq!(oracle.union().received_count(), 2);
        assert_eq!(oracle.observers(), vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    fn observe_map_merges() {
        let mut oracle = JointReceptionOracle::new();
        let map: ReceptionMap = [2u32, 4, 6].into_iter().map(SeqNo::new).collect();
        oracle.observe_map(NodeId::new(1), &map);
        oracle.observe(NodeId::new(1), SeqNo::new(8));
        assert_eq!(oracle.union().received_count(), 4);
    }

    #[test]
    fn recoverable_count_counts_only_targets_someone_has() {
        let mut oracle = JointReceptionOracle::new();
        oracle.observe(NodeId::new(2), SeqNo::new(5));
        oracle.observe(NodeId::new(3), SeqNo::new(7));
        let targets = vec![SeqNo::new(5), SeqNo::new(6), SeqNo::new(7)];
        assert_eq!(oracle.recoverable_count(&targets), 2);
        assert_eq!(oracle.recoverable_count(&[]), 0);
    }

    proptest! {
        /// The union contains a sequence number iff some observer saw it.
        #[test]
        fn prop_union_is_or_of_observers(
            a in proptest::collection::btree_set(0u32..100, 0..40),
            b in proptest::collection::btree_set(0u32..100, 0..40),
        ) {
            let mut oracle = JointReceptionOracle::new();
            for s in &a { oracle.observe(NodeId::new(1), SeqNo::new(*s)); }
            for s in &b { oracle.observe(NodeId::new(2), SeqNo::new(*s)); }
            let union = oracle.union();
            for s in 0u32..100 {
                let expected = a.contains(&s) || b.contains(&s);
                prop_assert_eq!(union.contains(SeqNo::new(s)), expected);
                prop_assert_eq!(oracle.jointly_received(SeqNo::new(s)), expected);
            }
            prop_assert!(union.received_count() <= a.len() + b.len());
        }
    }
}
