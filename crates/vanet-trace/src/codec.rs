//! The compact binary trace format (`CARQTRC1`) and the JSONL export.
//!
//! Layout of an encoded trace:
//!
//! ```text
//! magic   8 bytes   "CARQTRC1"
//! count   u32 LE    number of records
//! record  repeated  u32 LE payload length, then the payload:
//!                   1 tag byte + the variant's fields, little-endian
//!                   (SimTime as u64 nanoseconds, f64 as IEEE-754 bits)
//! ```
//!
//! The length prefix lets tooling skip records it does not understand and
//! makes truncation detectable; encoding is fully deterministic (a fixed
//! seed produces byte-identical trace files, which the trace-determinism
//! tests assert). [`to_jsonl`] renders the same records as one JSON object
//! per line for external tooling.

use std::fmt;

use sim_core::SimTime;

use crate::record::TraceRecord;

/// The 8-byte magic prefix of a binary trace.
pub const TRACE_MAGIC: &[u8; 8] = b"CARQTRC1";

/// The 8-byte magic prefix of a multi-round framed trace.
pub const TRACE_FRAMED_MAGIC: &[u8; 8] = b"CARQTRM1";

/// Why a binary trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceCodecError {
    /// The input does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The input ended mid-structure.
    Truncated,
    /// A record carried an unknown tag byte.
    UnknownTag(u8),
    /// A record's payload length does not match its tag's layout.
    BadLength {
        /// The offending tag byte.
        tag: u8,
        /// The length the record declared.
        declared: u32,
        /// The length the tag's layout requires.
        expected: u32,
    },
    /// Bytes remain after the declared record count.
    TrailingBytes,
}

impl fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceCodecError::BadMagic => write!(f, "not a CARQTRC1 trace (bad magic)"),
            TraceCodecError::Truncated => write!(f, "trace ends mid-record (truncated)"),
            TraceCodecError::UnknownTag(tag) => write!(f, "unknown trace record tag {tag}"),
            TraceCodecError::BadLength { tag, declared, expected } => write!(
                f,
                "record tag {tag} declares {declared} payload byte(s), layout needs {expected}"
            ),
            TraceCodecError::TrailingBytes => {
                write!(f, "trailing bytes after the declared record count")
            }
        }
    }
}

impl std::error::Error for TraceCodecError {}

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn time(&mut self, t: SimTime) {
        self.u64(t.as_nanos());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceCodecError> {
        if self.bytes.len() < n {
            return Err(TraceCodecError::Truncated);
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, TraceCodecError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, TraceCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, TraceCodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn time(&mut self) -> Result<SimTime, TraceCodecError> {
        Ok(SimTime::from_nanos(self.u64()?))
    }
    fn f64(&mut self) -> Result<f64, TraceCodecError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, TraceCodecError> {
        Ok(self.u8()? != 0)
    }
}

/// `(tag, payload length excluding the tag byte)` per variant.
fn layout(record: &TraceRecord) -> (u8, u32) {
    match record {
        TraceRecord::EventDispatched { .. } => (0, 12),
        TraceRecord::TxStart { .. } => (1, 24),
        TraceRecord::Delivery { .. } => (2, 26),
        TraceRecord::CacheAudit { .. } => (3, 17),
        TraceRecord::CsmaDeferred { .. } => (4, 20),
        TraceRecord::ArqRequest { .. } => (5, 20),
        TraceRecord::CoopRetransmit { .. } => (6, 16),
        TraceRecord::ApRetransmitQueued { .. } => (7, 20),
        TraceRecord::BufferStore { .. } => (8, 20),
        TraceRecord::StrategyDecision { .. } => (9, 20),
    }
}

/// Encodes `records` into the `CARQTRC1` binary format.
pub fn encode(records: &[TraceRecord]) -> Vec<u8> {
    let mut w = Writer { out: Vec::with_capacity(16 + records.len() * 24) };
    w.out.extend_from_slice(TRACE_MAGIC);
    w.u32(u32::try_from(records.len()).expect("record count fits u32"));
    for record in records {
        let (tag, len) = layout(record);
        w.u32(len + 1);
        w.u8(tag);
        match *record {
            TraceRecord::EventDispatched { at, queue_depth } => {
                w.time(at);
                w.u32(queue_depth);
            }
            TraceRecord::TxStart { at, until, node, bits } => {
                w.time(at);
                w.time(until);
                w.u32(node);
                w.u32(bits);
            }
            TraceRecord::Delivery { at, tx, rx, received, cached, snr_db } => {
                w.time(at);
                w.u32(tx);
                w.u32(rx);
                w.bool(received);
                w.bool(cached);
                w.f64(snr_db);
            }
            TraceRecord::CacheAudit { at, tx, rx, ok } => {
                w.time(at);
                w.u32(tx);
                w.u32(rx);
                w.bool(ok);
            }
            TraceRecord::CsmaDeferred { at, node, until } => {
                w.time(at);
                w.u32(node);
                w.time(until);
            }
            TraceRecord::ArqRequest { at, node, seqs, cooperators } => {
                w.time(at);
                w.u32(node);
                w.u32(seqs);
                w.u32(cooperators);
            }
            TraceRecord::CoopRetransmit { at, node, seqs } => {
                w.time(at);
                w.u32(node);
                w.u32(seqs);
            }
            TraceRecord::ApRetransmitQueued { at, ap, destination, seq } => {
                w.time(at);
                w.u32(ap);
                w.u32(destination);
                w.u32(seq);
            }
            TraceRecord::BufferStore { at, node, stored, evicted } => {
                w.time(at);
                w.u32(node);
                w.u32(stored);
                w.u32(evicted);
            }
            TraceRecord::StrategyDecision { at, node, strategy, missing } => {
                w.time(at);
                w.u32(node);
                w.u32(strategy);
                w.u32(missing);
            }
        }
    }
    w.out
}

/// Decodes a `CARQTRC1` binary trace back into records.
///
/// # Errors
///
/// Any structural problem: wrong magic, truncation, unknown tags,
/// length/layout mismatches or trailing bytes.
pub fn decode(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceCodecError> {
    let mut r = Reader { bytes };
    if r.take(TRACE_MAGIC.len()).map_err(|_| TraceCodecError::BadMagic)? != TRACE_MAGIC {
        return Err(TraceCodecError::BadMagic);
    }
    let count = r.u32()?;
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let declared = r.u32()?;
        if declared == 0 {
            return Err(TraceCodecError::Truncated);
        }
        let tag = r.u8()?;
        let record = match tag {
            0 => TraceRecord::EventDispatched { at: r.time()?, queue_depth: r.u32()? },
            1 => TraceRecord::TxStart {
                at: r.time()?,
                until: r.time()?,
                node: r.u32()?,
                bits: r.u32()?,
            },
            2 => TraceRecord::Delivery {
                at: r.time()?,
                tx: r.u32()?,
                rx: r.u32()?,
                received: r.bool()?,
                cached: r.bool()?,
                snr_db: r.f64()?,
            },
            3 => {
                TraceRecord::CacheAudit { at: r.time()?, tx: r.u32()?, rx: r.u32()?, ok: r.bool()? }
            }
            4 => TraceRecord::CsmaDeferred { at: r.time()?, node: r.u32()?, until: r.time()? },
            5 => TraceRecord::ArqRequest {
                at: r.time()?,
                node: r.u32()?,
                seqs: r.u32()?,
                cooperators: r.u32()?,
            },
            6 => TraceRecord::CoopRetransmit { at: r.time()?, node: r.u32()?, seqs: r.u32()? },
            7 => TraceRecord::ApRetransmitQueued {
                at: r.time()?,
                ap: r.u32()?,
                destination: r.u32()?,
                seq: r.u32()?,
            },
            8 => TraceRecord::BufferStore {
                at: r.time()?,
                node: r.u32()?,
                stored: r.u32()?,
                evicted: r.u32()?,
            },
            9 => TraceRecord::StrategyDecision {
                at: r.time()?,
                node: r.u32()?,
                strategy: r.u32()?,
                missing: r.u32()?,
            },
            other => return Err(TraceCodecError::UnknownTag(other)),
        };
        let (tag_back, expected) = layout(&record);
        debug_assert_eq!(tag_back, tag);
        if declared != expected + 1 {
            return Err(TraceCodecError::BadLength { tag, declared, expected: expected + 1 });
        }
        records.push(record);
    }
    if !r.bytes.is_empty() {
        return Err(TraceCodecError::TrailingBytes);
    }
    Ok(records)
}

/// One round's record stream inside a multi-round framed trace, tagged with
/// the round index and the round seed that produced it — everything a
/// downstream analyzer needs to label (and re-derive) the round.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFrame {
    /// The 0-based round index.
    pub round: u32,
    /// The round seed `run_round_traced` was called with.
    pub seed: u64,
    /// The round's records, in emission order.
    pub records: Vec<TraceRecord>,
}

/// Encodes multiple rounds into the framed `CARQTRM1` format: the magic, a
/// u32 frame count, then per frame a `(round u32, seed u64, length u32)`
/// header followed by that round's complete [`encode`]d `CARQTRC1` blob —
/// the single-round codec, reused verbatim, so any frame can be sliced out
/// and decoded (or skipped) on its own.
pub fn encode_frames(frames: &[TraceFrame]) -> Vec<u8> {
    let mut w = Writer { out: Vec::new() };
    w.out.extend_from_slice(TRACE_FRAMED_MAGIC);
    w.u32(u32::try_from(frames.len()).expect("frame count fits u32"));
    for frame in frames {
        let blob = encode(&frame.records);
        w.u32(frame.round);
        w.u64(frame.seed);
        w.u32(u32::try_from(blob.len()).expect("frame length fits u32"));
        w.out.extend_from_slice(&blob);
    }
    w.out
}

/// Decodes a framed `CARQTRM1` trace back into per-round frames.
///
/// # Errors
///
/// Any structural problem in the framing or in an embedded `CARQTRC1` blob.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<TraceFrame>, TraceCodecError> {
    let mut r = Reader { bytes };
    if r.take(TRACE_FRAMED_MAGIC.len()).map_err(|_| TraceCodecError::BadMagic)?
        != TRACE_FRAMED_MAGIC
    {
        return Err(TraceCodecError::BadMagic);
    }
    let count = r.u32()?;
    let mut frames = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let round = r.u32()?;
        let seed = r.u64()?;
        let len = r.u32()? as usize;
        let blob = r.take(len)?;
        frames.push(TraceFrame { round, seed, records: decode(blob)? });
    }
    if !r.bytes.is_empty() {
        return Err(TraceCodecError::TrailingBytes);
    }
    Ok(frames)
}

/// Decodes either trace format: a framed `CARQTRM1` file yields its frames,
/// a plain single-round `CARQTRC1` file yields one frame labelled
/// `round 0, seed 0` (the single-round format does not record them).
///
/// # Errors
///
/// Any structural problem in whichever format the magic selects.
pub fn decode_any(bytes: &[u8]) -> Result<Vec<TraceFrame>, TraceCodecError> {
    if bytes.starts_with(TRACE_FRAMED_MAGIC) {
        decode_frames(bytes)
    } else {
        Ok(vec![TraceFrame { round: 0, seed: 0, records: decode(bytes)? }])
    }
}

/// Renders records as JSON Lines: one object per record, fixed key order,
/// timestamps in nanoseconds — a stable shape for external tooling.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for record in records {
        let kind = record.kind();
        let at = record.at().as_nanos();
        let _ = write!(out, "{{\"type\":\"{kind}\",\"at_ns\":{at}");
        match *record {
            TraceRecord::EventDispatched { queue_depth, .. } => {
                let _ = write!(out, ",\"queue_depth\":{queue_depth}");
            }
            TraceRecord::TxStart { until, node, bits, .. } => {
                let _ = write!(
                    out,
                    ",\"until_ns\":{},\"node\":{node},\"bits\":{bits}",
                    until.as_nanos()
                );
            }
            TraceRecord::Delivery { tx, rx, received, cached, snr_db, .. } => {
                let _ = write!(
                    out,
                    ",\"tx\":{tx},\"rx\":{rx},\"received\":{received},\"cached\":{cached},\"snr_db\":{snr_db}"
                );
            }
            TraceRecord::CacheAudit { tx, rx, ok, .. } => {
                let _ = write!(out, ",\"tx\":{tx},\"rx\":{rx},\"ok\":{ok}");
            }
            TraceRecord::CsmaDeferred { node, until, .. } => {
                let _ = write!(out, ",\"node\":{node},\"until_ns\":{}", until.as_nanos());
            }
            TraceRecord::ArqRequest { node, seqs, cooperators, .. } => {
                let _ =
                    write!(out, ",\"node\":{node},\"seqs\":{seqs},\"cooperators\":{cooperators}");
            }
            TraceRecord::CoopRetransmit { node, seqs, .. } => {
                let _ = write!(out, ",\"node\":{node},\"seqs\":{seqs}");
            }
            TraceRecord::ApRetransmitQueued { ap, destination, seq, .. } => {
                let _ = write!(out, ",\"ap\":{ap},\"destination\":{destination},\"seq\":{seq}");
            }
            TraceRecord::BufferStore { node, stored, evicted, .. } => {
                let _ = write!(out, ",\"node\":{node},\"stored\":{stored},\"evicted\":{evicted}");
            }
            TraceRecord::StrategyDecision { node, strategy, missing, .. } => {
                let _ =
                    write!(out, ",\"node\":{node},\"strategy\":{strategy},\"missing\":{missing}");
            }
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        let t = SimTime::from_micros(10);
        let u = SimTime::from_micros(18);
        vec![
            TraceRecord::EventDispatched { at: t, queue_depth: 3 },
            TraceRecord::TxStart { at: t, until: u, node: 0, bits: 8_448 },
            TraceRecord::Delivery {
                at: t,
                tx: 0,
                rx: 1,
                received: true,
                cached: true,
                snr_db: -2.75,
            },
            TraceRecord::Delivery {
                at: t,
                tx: 0,
                rx: 2,
                received: false,
                cached: false,
                snr_db: 7.5,
            },
            TraceRecord::CacheAudit { at: t, tx: 0, rx: 1, ok: true },
            TraceRecord::CsmaDeferred { at: u, node: 2, until: SimTime::from_micros(40) },
            TraceRecord::ArqRequest { at: u, node: 1, seqs: 5, cooperators: 2 },
            TraceRecord::CoopRetransmit { at: u, node: 2, seqs: 1 },
            TraceRecord::ApRetransmitQueued { at: u, ap: 0, destination: 1, seq: 42 },
            TraceRecord::StrategyDecision { at: u, node: 1, strategy: 3, missing: 5 },
            TraceRecord::BufferStore { at: u, node: 3, stored: 1, evicted: 1 },
        ]
    }

    #[test]
    fn encode_decode_round_trips_every_variant() {
        let records = sample();
        let bytes = encode(&records);
        assert_eq!(&bytes[..8], TRACE_MAGIC);
        assert_eq!(decode(&bytes).unwrap(), records);
        // Encoding is deterministic.
        assert_eq!(bytes, encode(&records));
        // The empty trace round-trips too.
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn decode_rejects_structural_corruption() {
        let bytes = encode(&sample());
        assert_eq!(decode(b"NOTTRACE"), Err(TraceCodecError::BadMagic));
        assert_eq!(decode(&bytes[..4]), Err(TraceCodecError::BadMagic));
        assert_eq!(decode(&bytes[..bytes.len() - 3]), Err(TraceCodecError::Truncated));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(decode(&trailing), Err(TraceCodecError::TrailingBytes));
        // Corrupt the first record's tag (offset 8 magic + 4 count + 4 len).
        let mut bad_tag = bytes.clone();
        bad_tag[16] = 250;
        assert_eq!(decode(&bad_tag), Err(TraceCodecError::UnknownTag(250)));
        // Shrink the first record's declared length below its layout.
        let mut bad_len = bytes;
        bad_len[12..16].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(decode(&bad_len), Err(TraceCodecError::BadLength { tag: 0, .. })));
        // Errors render.
        assert!(TraceCodecError::UnknownTag(9).to_string().contains("tag 9"));
    }

    #[test]
    fn framed_traces_round_trip_and_reject_corruption() {
        let frames = vec![
            TraceFrame { round: 0, seed: 0xBEEF, records: sample() },
            TraceFrame { round: 1, seed: 0xCAFE, records: Vec::new() },
            TraceFrame { round: 7, seed: u64::MAX, records: sample()[..3].to_vec() },
        ];
        let bytes = encode_frames(&frames);
        assert_eq!(&bytes[..8], TRACE_FRAMED_MAGIC);
        assert_eq!(decode_frames(&bytes).unwrap(), frames);
        assert_eq!(bytes, encode_frames(&frames), "framing is deterministic");
        assert_eq!(decode_frames(&encode_frames(&[])).unwrap(), Vec::new());

        assert_eq!(decode_frames(b"NOTAMAGI"), Err(TraceCodecError::BadMagic));
        assert_eq!(decode_frames(&bytes[..bytes.len() - 2]), Err(TraceCodecError::Truncated));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(decode_frames(&trailing), Err(TraceCodecError::TrailingBytes));
        // Corrupting an embedded blob surfaces the single-round codec's
        // error (frame 0's blob starts after 8 magic + 4 count + 16 header).
        let mut bad_blob = bytes;
        bad_blob[28] = b'X';
        assert_eq!(decode_frames(&bad_blob), Err(TraceCodecError::BadMagic));
    }

    #[test]
    fn decode_any_accepts_both_formats() {
        let records = sample();
        let framed = encode_frames(&[TraceFrame { round: 3, seed: 9, records: records.clone() }]);
        let decoded = decode_any(&framed).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!((decoded[0].round, decoded[0].seed), (3, 9));
        assert_eq!(decoded[0].records, records);

        // A plain single-round trace becomes one anonymous frame.
        let plain = decode_any(&encode(&records)).unwrap();
        assert_eq!(plain.len(), 1);
        assert_eq!((plain[0].round, plain[0].seed), (0, 0));
        assert_eq!(plain[0].records, records);

        assert_eq!(decode_any(b"JUNKJUNK"), Err(TraceCodecError::BadMagic));
    }

    #[test]
    fn jsonl_renders_one_stable_line_per_record() {
        let records = sample();
        let jsonl = to_jsonl(&records);
        assert_eq!(jsonl.lines().count(), records.len());
        assert_eq!(jsonl, to_jsonl(&records), "rendering is deterministic");
        let first = jsonl.lines().next().unwrap();
        assert_eq!(first, "{\"type\":\"event_dispatched\",\"at_ns\":10000,\"queue_depth\":3}");
        assert!(jsonl.contains("\"snr_db\":-2.75"));
        assert!(jsonl.contains("\"type\":\"buffer_store\""));
        assert!(jsonl.contains("\"type\":\"strategy_decision\",\"at_ns\":18000,\"node\":1,\"strategy\":3,\"missing\":5"));
    }
}
