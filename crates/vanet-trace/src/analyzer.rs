//! The streaming trace-consumer seam: [`Analyzer`], [`AnalyzerSink`] and
//! [`RecordCursor`].
//!
//! An [`Analyzer`] folds a [`TraceRecord`] stream into some derived result
//! (a latency distribution, an occupancy profile, a per-node timeline — the
//! concrete analyzers live in `vanet-analysis`). Two ways to feed one:
//!
//! * **Live**, through the existing [`TraceSink`] seam: [`AnalyzerSink`]
//!   wraps any analyzer as an `ENABLED = true` sink, so a round can stream
//!   its records straight into the analyzer while it runs, with no
//!   intermediate buffer.
//! * **Replayed**, from a buffered or decoded trace: [`feed`] walks a
//!   record slice through the analyzer in emission order.
//!
//! Both paths observe the identical record sequence (tracing is
//! observation-only and its order is deterministic), so live and replayed
//! analysis of one `(scenario, round, seed)` agree byte for byte — the
//! contract the `analyze` determinism tests pin down.
//!
//! [`RecordCursor`] is the complementary pull-style view for analyses that
//! need lookahead (e.g. pairing a `CoopRetransmit` with the `Delivery`
//! verdicts that share its transmission instant) rather than a push fold.

use crate::record::TraceRecord;
use crate::sink::TraceSink;

/// A streaming consumer of trace records.
///
/// Implementors accumulate whatever state their analysis needs; `observe`
/// is called once per record, in emission order. Analyzers must be
/// deterministic: the same record sequence must produce the same state,
/// regardless of how the records were delivered (live sink or replay).
pub trait Analyzer {
    /// Observes one record. Called in emission order.
    fn observe(&mut self, record: &TraceRecord);
}

/// Replays a buffered record stream through `analyzer` in emission order —
/// the replay twin of feeding it live through an [`AnalyzerSink`].
pub fn feed<A: Analyzer>(analyzer: &mut A, records: &[TraceRecord]) {
    for record in records {
        analyzer.observe(record);
    }
}

/// Adapts any [`Analyzer`] into an `ENABLED = true` [`TraceSink`], so a
/// simulation can stream records into the analysis as it runs instead of
/// buffering a full trace first.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AnalyzerSink<A: Analyzer> {
    /// The wrapped analyzer; take it back out when the run completes.
    pub analyzer: A,
}

impl<A: Analyzer> AnalyzerSink<A> {
    /// Wraps `analyzer` as a live trace sink.
    pub fn new(analyzer: A) -> Self {
        AnalyzerSink { analyzer }
    }

    /// Unwraps the analyzer with whatever state it accumulated.
    pub fn into_inner(self) -> A {
        self.analyzer
    }
}

impl<A: Analyzer> TraceSink for AnalyzerSink<A> {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, record: TraceRecord) {
        self.analyzer.observe(&record);
    }
}

/// A pull-style cursor over a buffered record stream, for analyses that
/// need lookahead or selective scanning rather than a push fold.
#[derive(Debug, Clone)]
pub struct RecordCursor<'a> {
    records: &'a [TraceRecord],
    pos: usize,
}

impl<'a> RecordCursor<'a> {
    /// A cursor at the start of `records`.
    pub fn new(records: &'a [TraceRecord]) -> Self {
        RecordCursor { records, pos: 0 }
    }

    /// The current position (records consumed so far).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The records not yet consumed.
    pub fn remaining(&self) -> &'a [TraceRecord] {
        &self.records[self.pos..]
    }

    /// The next record without consuming it.
    pub fn peek(&self) -> Option<&'a TraceRecord> {
        self.records.get(self.pos)
    }

    /// Consumes and returns the next record.
    pub fn next_record(&mut self) -> Option<&'a TraceRecord> {
        let record = self.records.get(self.pos)?;
        self.pos += 1;
        Some(record)
    }

    /// Consumes records until one matches `pred` (inclusive), returning the
    /// match; leaves the cursor exhausted when nothing matches.
    pub fn next_where(
        &mut self,
        mut pred: impl FnMut(&TraceRecord) -> bool,
    ) -> Option<&'a TraceRecord> {
        while let Some(record) = self.next_record() {
            if pred(record) {
                return Some(record);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    /// Counts transmissions — the smallest possible analyzer.
    #[derive(Default, Debug, Clone, PartialEq, Eq)]
    struct TxCounter {
        tx: usize,
        total: usize,
    }

    impl Analyzer for TxCounter {
        fn observe(&mut self, record: &TraceRecord) {
            self.total += 1;
            if matches!(record, TraceRecord::TxStart { .. }) {
                self.tx += 1;
            }
        }
    }

    fn sample() -> Vec<TraceRecord> {
        let t = SimTime::from_micros(5);
        vec![
            TraceRecord::EventDispatched { at: t, queue_depth: 1 },
            TraceRecord::TxStart { at: t, until: SimTime::from_micros(9), node: 0, bits: 800 },
            TraceRecord::Delivery {
                at: t,
                tx: 0,
                rx: 1,
                received: true,
                cached: false,
                snr_db: 3.0,
            },
        ]
    }

    #[test]
    fn live_sink_and_replay_agree() {
        let records = sample();
        let mut sink = AnalyzerSink::new(TxCounter::default());
        for record in &records {
            sink.record(*record);
        }
        let mut replayed = TxCounter::default();
        feed(&mut replayed, &records);
        assert_eq!(sink.into_inner(), replayed);
        assert_eq!(replayed, TxCounter { tx: 1, total: 3 });
        const { assert!(<AnalyzerSink<TxCounter> as TraceSink>::ENABLED) };
    }

    #[test]
    fn cursor_walks_peeks_and_scans() {
        let records = sample();
        let mut cursor = RecordCursor::new(&records);
        assert_eq!(cursor.position(), 0);
        assert_eq!(cursor.remaining().len(), 3);
        assert!(matches!(cursor.peek(), Some(TraceRecord::EventDispatched { .. })));
        assert!(matches!(cursor.next_record(), Some(TraceRecord::EventDispatched { .. })));
        let tx = cursor.next_where(|r| matches!(r, TraceRecord::TxStart { .. }));
        assert!(tx.is_some());
        assert_eq!(cursor.position(), 2);
        assert!(cursor.next_where(|r| matches!(r, TraceRecord::TxStart { .. })).is_none());
        assert!(cursor.next_record().is_none(), "cursor is exhausted after a failed scan");
    }
}
