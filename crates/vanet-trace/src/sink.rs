//! Trace sinks: where records go, and the zero-cost disabled default.
//!
//! The whole stack is generic over one [`TraceSink`] type parameter whose
//! associated `const ENABLED` gates every emission site:
//!
//! ```rust,ignore
//! if S::ENABLED {
//!     sink.record(TraceRecord::TxStart { .. });
//! }
//! ```
//!
//! With [`NoTrace`] (the default everywhere) `S::ENABLED` is a
//! compile-time `false`, so the branch, the record construction and the
//! call all monomorphize away — the disabled path compiles to exactly the
//! untraced code. The bench harness guards this: the disabled-trace
//! allocation count and table1 rounds/s are gated against the committed
//! baseline.

use std::collections::VecDeque;

use crate::record::TraceRecord;

/// A destination for trace records.
///
/// Implementors with `ENABLED = true` receive every record; the stack
/// checks `Self::ENABLED` *before* constructing a record, so an
/// `ENABLED = false` sink costs nothing at all.
pub trait TraceSink {
    /// Whether emission sites should construct and deliver records.
    const ENABLED: bool;

    /// Records one trace entry. Never called when [`Self::ENABLED`] is
    /// honoured by the call site and `false`.
    fn record(&mut self, record: TraceRecord);
}

/// Forwarding through a mutable borrow keeps the owning scope in control
/// of the collected records while the model runs generically.
impl<S: TraceSink> TraceSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn record(&mut self, record: TraceRecord) {
        (**self).record(record);
    }
}

/// The disabled sink: `ENABLED = false`, a no-op `record`. This is the
/// default sink of every model and scenario — the hot path the benchmarks
/// measure runs with it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _record: TraceRecord) {}
}

/// Collects every record in memory, in emission order. The sink behind
/// `run_round_traced`, `carq-cli verify` and the trace-determinism tests.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct VecSink {
    records: Vec<TraceRecord>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// All records collected so far, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the sink and returns the records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl TraceSink for VecSink {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }
}

/// A bounded in-memory ring: keeps the most recent `capacity` records and
/// drops the oldest, for always-on flight-recorder use where a full trace
/// would not fit.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSink {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring keeping at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a ring sink needs room for at least one record");
        RingSink { capacity, records: VecDeque::with_capacity(capacity), dropped: 0 }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Consumes the ring and returns the retained records, oldest first.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records.into_iter().collect()
    }

    /// How many records were evicted to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained records (at most the capacity).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl TraceSink for RingSink {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, record: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    fn dispatch(i: u64) -> TraceRecord {
        TraceRecord::EventDispatched { at: SimTime::from_nanos(i), queue_depth: 0 }
    }

    #[test]
    fn no_trace_is_disabled_and_discards() {
        const { assert!(!NoTrace::ENABLED) };
        let mut sink = NoTrace;
        sink.record(dispatch(1));
    }

    fn feed<S: TraceSink>(mut sink: S) {
        if S::ENABLED {
            sink.record(dispatch(1));
            sink.record(dispatch(2));
        }
    }

    #[test]
    fn mut_ref_forwards_to_the_owner() {
        const { assert!(<&mut VecSink as TraceSink>::ENABLED) };
        let mut sink = VecSink::new();
        feed(&mut sink);
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        assert_eq!(sink.into_records().len(), 2);
    }

    #[test]
    fn ring_sink_keeps_the_most_recent_records() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(dispatch(i));
        }
        assert_eq!(ring.len(), 3);
        assert!(!ring.is_empty());
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<SimTime> = ring.records().map(TraceRecord::at).collect();
        assert_eq!(
            kept,
            vec![SimTime::from_nanos(2), SimTime::from_nanos(3), SimTime::from_nanos(4)]
        );
        assert_eq!(ring.into_records().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_capacity_ring_rejected() {
        let _ = RingSink::new(0);
    }
}
