//! The structured trace records the stack emits.
//!
//! Records are plain `Copy` data — no strings, no heap — so that a traced
//! run's only extra cost is pushing fixed-size values into the sink.
//! Node identities are raw `u32`s (the numeric value of a
//! `vanet_mac::NodeId`): this crate sits below the MAC layer in the crate
//! graph and must not depend upward.

use sim_core::SimTime;

/// One structured trace record. Emission order is chronological: every
/// record is emitted while the simulation clock reads its `at` field, which
/// is what the monotone-timestamp invariant checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceRecord {
    /// The scheduler dispatched one event to the model.
    EventDispatched {
        /// The simulation clock at dispatch.
        at: SimTime,
        /// Events still queued after popping this one.
        queue_depth: u32,
    },
    /// A frame started transmitting on the shared medium.
    TxStart {
        /// Start of the airtime.
        at: SimTime,
        /// End of the airtime (`at` + frame airtime at the PHY rate).
        until: SimTime,
        /// The transmitting node.
        node: u32,
        /// Frame size on air in bits.
        bits: u32,
    },
    /// The per-receiver reception verdict of one transmission.
    Delivery {
        /// Start of the transmission this verdict belongs to.
        at: SimTime,
        /// The transmitting node.
        tx: u32,
        /// The receiving node.
        rx: u32,
        /// Whether the frame was received (channel success and no
        /// collision).
        received: bool,
        /// Whether the deterministic link state (path loss, obstacles,
        /// shadowing realisation) was served from the per-link cache
        /// (`true`) or computed from scratch (`false`) — the
        /// cached-vs-sampled budget split.
        cached: bool,
        /// The signal-to-noise ratio the verdict sampled at.
        snr_db: f64,
    },
    /// A sampled consistency audit of the per-link state cache: the cached
    /// `LinkState` was recomputed from scratch and compared.
    CacheAudit {
        /// When the audited transmission started.
        at: SimTime,
        /// The transmitting node of the audited link.
        tx: u32,
        /// The receiving node of the audited link.
        rx: u32,
        /// Whether the recomputed state equals the cached one.
        ok: bool,
    },
    /// Carrier sensing found the medium busy and deferred a transmission.
    CsmaDeferred {
        /// When the node wanted to transmit.
        at: SimTime,
        /// The deferring node.
        node: u32,
        /// The retry opportunity it rescheduled to.
        until: SimTime,
    },
    /// A car put a Cooperative-ARQ REQUEST on the air.
    ArqRequest {
        /// Transmission time.
        at: SimTime,
        /// The requesting car.
        node: u32,
        /// Sequence numbers asked for in this request.
        seqs: u32,
        /// The cooperator count announced in the request (bounds how many
        /// COOP-DATA responses the request may legitimately trigger).
        cooperators: u32,
    },
    /// A cooperating car retransmitted buffered data (COOP-DATA).
    CoopRetransmit {
        /// Transmission time.
        at: SimTime,
        /// The cooperating car.
        node: u32,
        /// Packets carried by this retransmission.
        seqs: u32,
    },
    /// The AP queued a retransmission for a frame a car missed while in
    /// coverage (the AP-side ARQ decision).
    ApRetransmitQueued {
        /// When the miss was observed.
        at: SimTime,
        /// The access point.
        ap: u32,
        /// The car the frame was for.
        destination: u32,
        /// The sequence number queued again.
        seq: u32,
    },
    /// A car's recovery strategy made its loss decision: it found packets
    /// missing and chose how (or whether) to recover them. Every REQUEST and
    /// cooperative retransmission of a round is downstream of one of these —
    /// the decision-before-request invariant.
    StrategyDecision {
        /// When the decision was made.
        at: SimTime,
        /// The deciding car.
        node: u32,
        /// The strategy's stable numeric tag
        /// (`carq::RecoveryStrategyKind::tag`).
        strategy: u32,
        /// How many packets the node found missing.
        missing: u32,
    },
    /// Cooperation-buffer activity at one node while handling one frame.
    BufferStore {
        /// When the frame was handled.
        at: SimTime,
        /// The buffering node.
        node: u32,
        /// Packets newly stored for peers.
        stored: u32,
        /// Packets evicted to make room (buffer drop).
        evicted: u32,
    },
}

impl TraceRecord {
    /// The simulation instant the record was emitted at.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceRecord::EventDispatched { at, .. }
            | TraceRecord::TxStart { at, .. }
            | TraceRecord::Delivery { at, .. }
            | TraceRecord::CacheAudit { at, .. }
            | TraceRecord::CsmaDeferred { at, .. }
            | TraceRecord::ArqRequest { at, .. }
            | TraceRecord::CoopRetransmit { at, .. }
            | TraceRecord::ApRetransmitQueued { at, .. }
            | TraceRecord::StrategyDecision { at, .. }
            | TraceRecord::BufferStore { at, .. } => at,
        }
    }

    /// The record kind as a stable snake_case name (the JSONL `type`
    /// field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceRecord::EventDispatched { .. } => "event_dispatched",
            TraceRecord::TxStart { .. } => "tx_start",
            TraceRecord::Delivery { .. } => "delivery",
            TraceRecord::CacheAudit { .. } => "cache_audit",
            TraceRecord::CsmaDeferred { .. } => "csma_deferred",
            TraceRecord::ArqRequest { .. } => "arq_request",
            TraceRecord::CoopRetransmit { .. } => "coop_retransmit",
            TraceRecord::ApRetransmitQueued { .. } => "ap_retransmit_queued",
            TraceRecord::StrategyDecision { .. } => "strategy_decision",
            TraceRecord::BufferStore { .. } => "buffer_store",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_and_kind_cover_every_variant() {
        let t = SimTime::from_millis(3);
        let u = SimTime::from_millis(4);
        let records = [
            TraceRecord::EventDispatched { at: t, queue_depth: 2 },
            TraceRecord::TxStart { at: t, until: u, node: 1, bits: 800 },
            TraceRecord::Delivery {
                at: t,
                tx: 1,
                rx: 2,
                received: true,
                cached: false,
                snr_db: 3.0,
            },
            TraceRecord::CacheAudit { at: t, tx: 1, rx: 2, ok: true },
            TraceRecord::CsmaDeferred { at: t, node: 1, until: u },
            TraceRecord::ArqRequest { at: t, node: 1, seqs: 4, cooperators: 2 },
            TraceRecord::CoopRetransmit { at: t, node: 2, seqs: 1 },
            TraceRecord::ApRetransmitQueued { at: t, ap: 0, destination: 1, seq: 9 },
            TraceRecord::StrategyDecision { at: t, node: 1, strategy: 0, missing: 2 },
            TraceRecord::BufferStore { at: t, node: 3, stored: 1, evicted: 0 },
        ];
        let mut kinds = std::collections::BTreeSet::new();
        for record in records {
            assert_eq!(record.at(), t);
            kinds.insert(record.kind());
        }
        assert_eq!(kinds.len(), records.len(), "kinds are distinct");
    }
}
