//! The post-run invariant pass behind `carq-cli verify`.
//!
//! [`verify`] walks a trace once and checks structural properties that must
//! hold for *any* correct run, independent of scenario or seed:
//!
//! 1. **Monotone timestamps** — records are emitted in chronological order.
//! 2. **No overlapping transmissions per node** — a node's `TxStart`
//!    airtimes `[at, until)` never overlap (half-duplex radios).
//! 3. **Packet conservation** — every `Delivery` verdict belongs to a
//!    transmission that actually started: its `(tx, at)` pair must match an
//!    earlier `TxStart`.
//! 4. **Retransmission bounds** — cooperative retransmissions only happen
//!    in response to requests: the packets carried by `CoopRetransmit`
//!    records never exceed what the observed `ArqRequest`s could trigger
//!    (requested packets × announced cooperators), and no `CoopRetransmit`
//!    appears before any request at all.
//! 5. **Cache consistency** — every sampled `CacheAudit` found the cached
//!    link state equal to a from-scratch recomputation.
//! 6. **Decision before request** — recovery traffic is always downstream
//!    of an explicit loss decision: a node never puts an `ArqRequest` on the
//!    air without an earlier `StrategyDecision` of its own, and no
//!    `CoopRetransmit` appears before the first decision of the trace.
//! 7. **Per-strategy retransmission bounds** — each node's request count
//!    stays within what its strategy could legitimately issue for the
//!    missing-packet counts it declared: one-shot strategies
//!    (one-hop-listen) get `missing + 1` requests per decision, cycling
//!    strategies (coop-arq, net-coded) get `missing × (missing + slack)`,
//!    and the no-cooperation baseline gets none at all.
//!
//! Violations carry enough detail to localise the bug; the pass itself is
//! pure and allocation-light so it can run inside proptests.

use std::collections::{HashMap, HashSet};

use sim_core::SimTime;

use crate::record::TraceRecord;

/// Fruitless-cycle slack granted by the per-strategy request bound: cycling
/// strategies may walk their missing list once per recovery plus this many
/// fruitless passes. Generous against the default configuration (2) so the
/// bound never false-positives on legitimate configs, yet far below what an
/// unbounded requester produces within one round.
const CYCLE_SLACK: u64 = 8;

/// The most requests one loss decision can legitimately trigger under the
/// deciding strategy (`strategy` is `carq::RecoveryStrategyKind::tag`).
fn request_allowance(strategy: u32, missing: u64) -> u64 {
    match strategy {
        // no-coop: decides, then declines to recover.
        3 => 0,
        // one-hop-listen: one batched shot, plus at most one more cycle per
        // recovered packet.
        2 => missing + 1,
        // coop-arq / net-coded (and unknown future tags, conservatively):
        // per-packet cycling — at most `missing` requests per cycle, at most
        // `missing + CYCLE_SLACK` cycles.
        _ => missing * (missing + CYCLE_SLACK),
    }
}

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The stable name of the violated invariant (e.g.
    /// `"monotone_timestamps"`).
    pub invariant: &'static str,
    /// A human-readable description of the specific failure.
    pub detail: String,
}

/// The outcome of an invariant pass over one trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InvariantReport {
    /// Number of trace records examined.
    pub checked: usize,
    /// Per-invariant coverage: how many records each invariant actually
    /// examined, in catalogue order. A pass where an invariant checked zero
    /// records is vacuous for that invariant — `carq-cli verify` surfaces
    /// these counts so "all invariants hold" is never silently hollow.
    pub coverage: Vec<(&'static str, usize)>,
    /// Every violation found, in trace order.
    pub violations: Vec<Violation>,
}

impl InvariantReport {
    /// Whether the trace satisfied every invariant.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn violation(report: &mut InvariantReport, invariant: &'static str, detail: String) {
    report.violations.push(Violation { invariant, detail });
}

/// Runs every invariant over `records` (a full trace in emission order) and
/// reports all violations found.
pub fn verify(records: &[TraceRecord]) -> InvariantReport {
    let mut report =
        InvariantReport { checked: records.len(), coverage: Vec::new(), violations: Vec::new() };

    let mut last_at = SimTime::ZERO;
    // Per-node end of the latest airtime, for overlap checks. Transmissions
    // arrive in chronological order (invariant 1), so one high-water mark
    // per node suffices.
    let mut busy_until: HashMap<u32, (SimTime, SimTime)> = HashMap::new();
    // (tx node, start time) of every transmission, for conservation.
    let mut started: HashSet<(u32, u64)> = HashSet::new();
    let mut requested_capacity: u64 = 0;
    let mut any_request = false;
    let mut coop_seqs: u64 = 0;
    let mut first_unrequested_coop: Option<(u32, SimTime)> = None;
    // Per-node request budget accumulated from StrategyDecision records, and
    // the requests actually observed against it.
    let mut decision_allowance: HashMap<u32, u64> = HashMap::new();
    let mut requests_by_node: HashMap<u32, u64> = HashMap::new();
    let mut any_decision = false;
    let mut first_undecided_request: Option<(u32, SimTime)> = None;
    let mut first_undecided_coop: Option<(u32, SimTime)> = None;
    // Per-kind record tallies, for the coverage report.
    let (mut n_tx, mut n_delivery, mut n_audit, mut n_request, mut n_coop, mut n_decision) =
        (0usize, 0usize, 0usize, 0usize, 0usize, 0usize);

    for (index, record) in records.iter().enumerate() {
        let at = record.at();
        if at < last_at {
            violation(
                &mut report,
                "monotone_timestamps",
                format!(
                    "record {index} ({}) at {at:?} precedes the previous record's {last_at:?}",
                    record.kind()
                ),
            );
        }
        last_at = last_at.max(at);

        match *record {
            TraceRecord::TxStart { at, until, node, .. } => {
                n_tx += 1;
                if until < at {
                    violation(
                        &mut report,
                        "tx_overlap",
                        format!(
                            "node {node} transmission at {at:?} ends before it starts ({until:?})"
                        ),
                    );
                } else if let Some(&(prev_at, prev_until)) = busy_until.get(&node) {
                    if at < prev_until {
                        violation(
                            &mut report,
                            "tx_overlap",
                            format!(
                                "node {node} starts transmitting at {at:?} while its transmission \
                                 from {prev_at:?} is still on air until {prev_until:?}"
                            ),
                        );
                    }
                }
                busy_until.insert(node, (at, until));
                started.insert((node, at.as_nanos()));
            }
            TraceRecord::Delivery { at, tx, rx, .. } => {
                n_delivery += 1;
                if !started.contains(&(tx, at.as_nanos())) {
                    violation(
                        &mut report,
                        "packet_conservation",
                        format!(
                            "delivery verdict at {at:?} for link {tx} -> {rx} has no matching \
                             transmission start"
                        ),
                    );
                }
            }
            TraceRecord::CacheAudit { at, tx, rx, ok } => {
                n_audit += 1;
                if !ok {
                    violation(
                        &mut report,
                        "cache_consistency",
                        format!(
                            "cached link state for {tx} -> {rx} at {at:?} differs from a \
                             from-scratch recomputation"
                        ),
                    );
                }
            }
            TraceRecord::ArqRequest { at, node, seqs, cooperators } => {
                n_request += 1;
                any_request = true;
                requested_capacity += u64::from(seqs) * u64::from(cooperators.max(1));
                *requests_by_node.entry(node).or_default() += 1;
                if !decision_allowance.contains_key(&node) && first_undecided_request.is_none() {
                    first_undecided_request = Some((node, at));
                }
            }
            TraceRecord::CoopRetransmit { at, node, seqs } => {
                n_coop += 1;
                coop_seqs += u64::from(seqs);
                if !any_request && first_unrequested_coop.is_none() {
                    first_unrequested_coop = Some((node, at));
                }
                if !any_decision && first_undecided_coop.is_none() {
                    first_undecided_coop = Some((node, at));
                }
            }
            TraceRecord::StrategyDecision { node, strategy, missing, .. } => {
                n_decision += 1;
                any_decision = true;
                *decision_allowance.entry(node).or_default() +=
                    request_allowance(strategy, u64::from(missing));
            }
            TraceRecord::EventDispatched { .. }
            | TraceRecord::CsmaDeferred { .. }
            | TraceRecord::ApRetransmitQueued { .. }
            | TraceRecord::BufferStore { .. } => {}
        }
    }

    if let Some((node, at)) = first_unrequested_coop {
        violation(
            &mut report,
            "retransmission_bounds",
            format!("node {node} sent COOP-DATA at {at:?} before any ARQ request was on the air"),
        );
    }
    if coop_seqs > requested_capacity {
        violation(
            &mut report,
            "retransmission_bounds",
            format!(
                "cooperative retransmissions carried {coop_seqs} packet(s) but the observed \
                 requests could trigger at most {requested_capacity}"
            ),
        );
    }
    if let Some((node, at)) = first_undecided_request {
        violation(
            &mut report,
            "decision_before_request",
            format!("node {node} sent a REQUEST at {at:?} without a preceding loss decision"),
        );
    }
    if let Some((node, at)) = first_undecided_coop {
        violation(
            &mut report,
            "decision_before_request",
            format!(
                "node {node} sent COOP-DATA at {at:?} before any loss decision was made in the \
                 trace"
            ),
        );
    }
    // Per-strategy bounds, only for nodes whose decisions we saw (requests
    // from undecided nodes are already reported above).
    let mut bounded: Vec<(u32, u64, u64)> = requests_by_node
        .iter()
        .filter_map(|(node, requests)| {
            let allowance = *decision_allowance.get(node)?;
            (*requests > allowance).then_some((*node, *requests, allowance))
        })
        .collect();
    bounded.sort_unstable();
    for (node, requests, allowance) in bounded {
        violation(
            &mut report,
            "strategy_bounds",
            format!(
                "node {node} sent {requests} REQUEST(s) but its strategy's loss decisions allow \
                 at most {allowance}"
            ),
        );
    }

    report.coverage = vec![
        ("monotone_timestamps", records.len()),
        ("tx_overlap", n_tx),
        ("packet_conservation", n_delivery),
        ("retransmission_bounds", n_coop + n_request),
        ("cache_consistency", n_audit),
        ("decision_before_request", n_request + n_coop),
        ("strategy_bounds", n_decision + n_request),
    ];
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn tx(at: u64, until: u64, node: u32) -> TraceRecord {
        TraceRecord::TxStart { at: t(at), until: t(until), node, bits: 800 }
    }

    fn delivery(at: u64, tx: u32, rx: u32) -> TraceRecord {
        TraceRecord::Delivery { at: t(at), tx, rx, received: true, cached: false, snr_db: 10.0 }
    }

    fn invariants(records: &[TraceRecord]) -> Vec<&'static str> {
        verify(records).violations.iter().map(|v| v.invariant).collect()
    }

    #[test]
    fn a_clean_trace_passes_every_invariant() {
        let records = [
            TraceRecord::EventDispatched { at: t(0), queue_depth: 1 },
            tx(0, 10, 0),
            delivery(0, 0, 1),
            TraceRecord::CacheAudit { at: t(0), tx: 0, rx: 1, ok: true },
            TraceRecord::StrategyDecision { at: t(20), node: 1, strategy: 0, missing: 2 },
            TraceRecord::ArqRequest { at: t(20), node: 1, seqs: 2, cooperators: 2 },
            tx(20, 24, 1),
            TraceRecord::CoopRetransmit { at: t(30), node: 2, seqs: 2 },
            tx(30, 40, 2),
            TraceRecord::BufferStore { at: t(40), node: 3, stored: 1, evicted: 0 },
        ];
        let report = verify(&records);
        assert!(report.is_ok(), "unexpected violations: {:?}", report.violations);
        assert_eq!(report.checked, records.len());
        assert_eq!(
            report.coverage,
            vec![
                ("monotone_timestamps", records.len()),
                ("tx_overlap", 3),
                ("packet_conservation", 1),
                ("retransmission_bounds", 2),
                ("cache_consistency", 1),
                ("decision_before_request", 2),
                ("strategy_bounds", 2),
            ]
        );
        // An empty trace is trivially consistent, and its coverage says so.
        let empty = verify(&[]);
        assert!(empty.is_ok());
        assert!(empty.coverage.iter().all(|(_, n)| *n == 0));
    }

    #[test]
    fn out_of_order_timestamps_are_flagged() {
        let records = [tx(10, 12, 0), TraceRecord::EventDispatched { at: t(5), queue_depth: 0 }];
        assert_eq!(invariants(&records), vec!["monotone_timestamps"]);
    }

    #[test]
    fn overlapping_transmissions_on_one_node_are_flagged() {
        // Node 0 starts again mid-airtime; node 1 interleaving is fine.
        let records = [tx(0, 10, 0), tx(2, 6, 1), tx(8, 14, 0)];
        assert_eq!(invariants(&records), vec!["tx_overlap"]);
        // Back-to-back (end == next start) is allowed.
        assert!(verify(&[tx(0, 10, 0), tx(10, 20, 0)]).is_ok());
        // An airtime that ends before it starts is structurally broken.
        assert_eq!(invariants(&[tx(10, 4, 0)]), vec!["tx_overlap"]);
    }

    #[test]
    fn orphan_deliveries_violate_conservation() {
        // Right node, wrong start time — and no transmission at all.
        let records = [tx(0, 10, 0), delivery(5, 0, 1)];
        assert_eq!(invariants(&records), vec!["packet_conservation"]);
    }

    #[test]
    fn failed_cache_audits_are_flagged() {
        let records = [tx(0, 10, 0), TraceRecord::CacheAudit { at: t(0), tx: 0, rx: 1, ok: false }];
        assert_eq!(invariants(&records), vec!["cache_consistency"]);
    }

    fn decision(at: u64, node: u32, strategy: u32, missing: u32) -> TraceRecord {
        TraceRecord::StrategyDecision { at: t(at), node, strategy, missing }
    }

    #[test]
    fn retransmissions_must_be_requested_and_bounded() {
        // COOP-DATA with no request (and no decision) anywhere in the trace.
        let unrequested = [TraceRecord::CoopRetransmit { at: t(0), node: 2, seqs: 1 }];
        assert_eq!(
            invariants(&unrequested),
            vec!["retransmission_bounds", "retransmission_bounds", "decision_before_request"],
            "unrequested coop data violates the ordering, the capacity bound and the decision rule"
        );
        // Requests for 2 packets with 1 announced cooperator cap capacity at 2.
        let over = [
            decision(0, 1, 0, 2),
            TraceRecord::ArqRequest { at: t(0), node: 1, seqs: 2, cooperators: 1 },
            TraceRecord::CoopRetransmit { at: t(5), node: 2, seqs: 2 },
            TraceRecord::CoopRetransmit { at: t(9), node: 3, seqs: 1 },
        ];
        assert_eq!(invariants(&over), vec!["retransmission_bounds"]);
        // A request announcing zero cooperators still permits one response.
        let zero_coop = [
            decision(0, 1, 0, 1),
            TraceRecord::ArqRequest { at: t(0), node: 1, seqs: 1, cooperators: 0 },
            TraceRecord::CoopRetransmit { at: t(5), node: 2, seqs: 1 },
        ];
        assert!(verify(&zero_coop).is_ok());
    }

    #[test]
    fn requests_without_a_loss_decision_are_flagged() {
        let records = [TraceRecord::ArqRequest { at: t(0), node: 1, seqs: 1, cooperators: 1 }];
        assert_eq!(invariants(&records), vec!["decision_before_request"]);
        // The decision must come first, not merely exist.
        let late = [
            TraceRecord::ArqRequest { at: t(0), node: 1, seqs: 1, cooperators: 1 },
            decision(5, 1, 0, 1),
        ];
        assert_eq!(invariants(&late), vec!["decision_before_request"]);
        // Another node's decision does not cover node 1.
        let wrong_node = [
            decision(0, 7, 0, 1),
            TraceRecord::ArqRequest { at: t(1), node: 1, seqs: 1, cooperators: 1 },
        ];
        assert_eq!(invariants(&wrong_node), vec!["decision_before_request"]);
    }

    #[test]
    fn per_strategy_request_bounds_fire() {
        // one-hop-listen (tag 2) with 1 missing packet allows 2 requests...
        let mut records = vec![decision(0, 1, 2, 1)];
        for i in 0..2u64 {
            records.push(TraceRecord::ArqRequest {
                at: t(1 + i),
                node: 1,
                seqs: 1,
                cooperators: 1,
            });
        }
        assert!(verify(&records).is_ok());
        // ...and the third violates its bound.
        records.push(TraceRecord::ArqRequest { at: t(9), node: 1, seqs: 1, cooperators: 1 });
        assert_eq!(invariants(&records), vec!["strategy_bounds"]);
        // no-coop (tag 3) allows none at all.
        let no_coop = [
            decision(0, 1, 3, 4),
            TraceRecord::ArqRequest { at: t(1), node: 1, seqs: 1, cooperators: 1 },
        ];
        assert_eq!(invariants(&no_coop), vec!["strategy_bounds"]);
        // cycling strategies (tag 0) get missing × (missing + slack).
        let mut cycling = vec![decision(0, 1, 0, 2)];
        for i in 0..2 * (2 + CYCLE_SLACK) {
            cycling.push(TraceRecord::ArqRequest {
                at: t(1 + i),
                node: 1,
                seqs: 1,
                cooperators: 1,
            });
        }
        assert!(verify(&cycling).is_ok());
        cycling.push(TraceRecord::ArqRequest { at: t(99), node: 1, seqs: 1, cooperators: 1 });
        assert_eq!(invariants(&cycling), vec!["strategy_bounds"]);
    }
}
