//! # vanet-trace — zero-cost structured event tracing and invariant checks
//!
//! PR 5 bought its speedup with aggressive memoization (per-link
//! [`LinkState`](../vanet_radio/struct.LinkState.html) caching, position
//! epochs, scratch buffers). The only guard on all that caching used to be
//! byte-identical golden exports: a stale cache key produces *wrong
//! numbers*, not *why*. This crate is the why-layer:
//!
//! * [`TraceSink`] — the seam threaded through the simulation stack. Every
//!   emission site is guarded by the sink's associated `const ENABLED`, so
//!   with the default [`NoTrace`] sink the whole tracing path monomorphizes
//!   to nothing: no branch, no allocation, no record construction. The
//!   bench harness asserts this (allocation counts and table1 rounds/s are
//!   gated against the committed baseline).
//! * [`TraceRecord`] — plain-`Copy` structured records: event dispatch,
//!   transmission start (with airtime), per-receiver delivery verdicts with
//!   the cached-vs-sampled link-budget split, sampled cache audits, CSMA
//!   deferrals, ARQ retransmission decisions and cooperation-buffer
//!   activity.
//! * [`codec`] — a compact length-prefixed binary trace encoding (the
//!   `CARQTRC1` format), a framed multi-round container (`CARQTRM1`, one
//!   `(round, seed)` header per embedded trace) plus a JSONL export for
//!   external tooling.
//! * [`analyzer`] — the streaming consumer seam: an [`Analyzer`] folds a
//!   record stream into a derived result, fed either live through
//!   [`AnalyzerSink`] or replayed from a decoded file; [`RecordCursor`] is
//!   the pull-style twin for lookahead analyses. The concrete analyses
//!   (recovery latency, medium occupancy, timelines, diff) live in
//!   `vanet-analysis`.
//! * [`mod@verify`] — the post-run invariant pass behind `carq-cli verify`:
//!   monotone timestamps, no overlapping transmissions per node, packet
//!   conservation, retransmission bounds and cache consistency.
//!
//! Tracing must never change results: no emission site may insert, remove
//! or reorder an RNG draw, and a traced round's [`RoundReport`] must equal
//! the untraced one bit for bit (the trace-determinism test suite and
//! `carq-cli verify` both enforce this).
//!
//! [`RoundReport`]: ../vanet_stats/struct.RoundReport.html
//!
//! ## Example
//!
//! ```rust
//! use sim_core::SimTime;
//! use vanet_trace::{verify, TraceRecord, TraceSink, VecSink};
//!
//! let mut sink = VecSink::new();
//! let t0 = SimTime::ZERO;
//! let t1 = SimTime::from_millis(8);
//! sink.record(TraceRecord::TxStart { at: t0, until: t1, node: 0, bits: 8_000 });
//! sink.record(TraceRecord::Delivery {
//!     at: t0, tx: 0, rx: 1, received: true, cached: true, snr_db: 12.5,
//! });
//! let report = verify::verify(sink.records());
//! assert!(report.violations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyzer;
pub mod codec;
pub mod record;
pub mod sink;
pub mod verify;

pub use analyzer::{feed, Analyzer, AnalyzerSink, RecordCursor};
pub use codec::{
    decode, decode_any, decode_frames, encode, encode_frames, to_jsonl, TraceCodecError, TraceFrame,
};
pub use record::TraceRecord;
pub use sink::{NoTrace, RingSink, TraceSink, VecSink};
pub use verify::{verify, InvariantReport, Violation};
