//! 802.11b/g data rates and frame airtime.
//!
//! The testbed ran every transmission (AP→car and car→car) at 1 Mbps, the
//! most robust 802.11b rate; the airtime of a 1000-byte frame at that rate
//! (≈ 8.4 ms including PLCP overhead) sets the timescale of collisions during
//! the Cooperative-ARQ phase and the maximum achievable goodput from the AP.

use serde::{Deserialize, Serialize};
use sim_core::SimDuration;

/// Physical-layer data rates available to the prototype's 802.11b/g cards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataRate {
    /// 1 Mbps DSSS/DBPSK — the rate used throughout the paper's experiments.
    Mbps1,
    /// 2 Mbps DSSS/DQPSK.
    Mbps2,
    /// 5.5 Mbps CCK.
    Mbps5_5,
    /// 11 Mbps CCK.
    Mbps11,
    /// 6 Mbps OFDM/BPSK 1/2.
    Mbps6,
    /// 12 Mbps OFDM/QPSK 1/2.
    Mbps12,
    /// 24 Mbps OFDM/16-QAM 1/2.
    Mbps24,
    /// 54 Mbps OFDM/64-QAM 3/4.
    Mbps54,
}

impl DataRate {
    /// The nominal bit rate in bits per second.
    pub fn bits_per_second(self) -> f64 {
        match self {
            DataRate::Mbps1 => 1e6,
            DataRate::Mbps2 => 2e6,
            DataRate::Mbps5_5 => 5.5e6,
            DataRate::Mbps11 => 11e6,
            DataRate::Mbps6 => 6e6,
            DataRate::Mbps12 => 12e6,
            DataRate::Mbps24 => 24e6,
            DataRate::Mbps54 => 54e6,
        }
    }

    /// All supported rates, slowest first.
    pub fn all() -> [DataRate; 8] {
        [
            DataRate::Mbps1,
            DataRate::Mbps2,
            DataRate::Mbps5_5,
            DataRate::Mbps6,
            DataRate::Mbps11,
            DataRate::Mbps12,
            DataRate::Mbps24,
            DataRate::Mbps54,
        ]
    }

    /// Whether the rate belongs to the DSSS/CCK (802.11b) family.
    pub fn is_dsss(self) -> bool {
        matches!(self, DataRate::Mbps1 | DataRate::Mbps2 | DataRate::Mbps5_5 | DataRate::Mbps11)
    }

    /// Minimum SNR (dB) at which this rate is normally usable — the
    /// receiver-sensitivity ladder used by rate-adaptation baselines.
    pub fn min_snr_db(self) -> f64 {
        match self {
            DataRate::Mbps1 => 4.0,
            DataRate::Mbps2 => 6.0,
            DataRate::Mbps5_5 => 8.0,
            DataRate::Mbps11 => 10.0,
            DataRate::Mbps6 => 8.0,
            DataRate::Mbps12 => 12.0,
            DataRate::Mbps24 => 17.0,
            DataRate::Mbps54 => 25.0,
        }
    }
}

impl std::fmt::Display for DataRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataRate::Mbps1 => "1 Mbps",
            DataRate::Mbps2 => "2 Mbps",
            DataRate::Mbps5_5 => "5.5 Mbps",
            DataRate::Mbps11 => "11 Mbps",
            DataRate::Mbps6 => "6 Mbps",
            DataRate::Mbps12 => "12 Mbps",
            DataRate::Mbps24 => "24 Mbps",
            DataRate::Mbps54 => "54 Mbps",
        };
        f.write_str(s)
    }
}

/// Frame timing parameters: PHY preamble/header overhead and inter-frame
/// spacing, following 802.11b long-preamble figures (which is what 1 Mbps
/// broadcast frames use).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameTiming {
    /// PLCP preamble + header duration.
    pub phy_overhead: SimDuration,
    /// Short inter-frame space.
    pub sifs: SimDuration,
    /// DCF inter-frame space.
    pub difs: SimDuration,
    /// Slot time used for backoff.
    pub slot: SimDuration,
}

impl Default for FrameTiming {
    fn default() -> Self {
        FrameTiming::dot11b_long_preamble()
    }
}

impl FrameTiming {
    /// Long-preamble 802.11b timing (192 µs PLCP, 10 µs SIFS, 50 µs DIFS,
    /// 20 µs slots).
    pub fn dot11b_long_preamble() -> Self {
        FrameTiming {
            phy_overhead: SimDuration::from_micros(192),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            slot: SimDuration::from_micros(20),
        }
    }

    /// ERP-OFDM (802.11g) timing (20 µs preamble, 10 µs SIFS, 28 µs DIFS,
    /// 9 µs slots).
    pub fn dot11g_ofdm() -> Self {
        FrameTiming {
            phy_overhead: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(28),
            slot: SimDuration::from_micros(9),
        }
    }

    /// Airtime of a frame whose MAC payload (header + body) is `bits` long at
    /// `rate`, including PHY overhead.
    pub fn airtime(&self, bits: u64, rate: DataRate) -> SimDuration {
        let payload_secs = bits as f64 / rate.bits_per_second();
        self.phy_overhead + SimDuration::from_secs_f64(payload_secs)
    }

    /// Airtime plus one DIFS, i.e. the minimum channel occupancy of a
    /// broadcast transmission under DCF.
    pub fn channel_occupancy(&self, bits: u64, rate: DataRate) -> SimDuration {
        self.difs + self.airtime(bits, rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_values() {
        assert_eq!(DataRate::Mbps1.bits_per_second(), 1e6);
        assert_eq!(DataRate::Mbps54.bits_per_second(), 54e6);
        assert!(DataRate::Mbps1.is_dsss());
        assert!(!DataRate::Mbps6.is_dsss());
        assert_eq!(DataRate::all().len(), 8);
        assert_eq!(DataRate::Mbps5_5.to_string(), "5.5 Mbps");
    }

    #[test]
    fn min_snr_is_monotone_within_family() {
        assert!(DataRate::Mbps1.min_snr_db() < DataRate::Mbps2.min_snr_db());
        assert!(DataRate::Mbps2.min_snr_db() < DataRate::Mbps11.min_snr_db());
        assert!(DataRate::Mbps6.min_snr_db() < DataRate::Mbps54.min_snr_db());
    }

    #[test]
    fn thousand_byte_frame_at_1mbps_takes_about_8ms() {
        let timing = FrameTiming::dot11b_long_preamble();
        let airtime = timing.airtime(1_000 * 8, DataRate::Mbps1);
        let ms = airtime.as_millis_f64();
        assert!((8.1..8.3).contains(&ms), "airtime {ms} ms");
    }

    #[test]
    fn faster_rate_means_shorter_airtime() {
        let timing = FrameTiming::default();
        let slow = timing.airtime(12_000, DataRate::Mbps1);
        let fast = timing.airtime(12_000, DataRate::Mbps11);
        assert!(fast < slow);
        assert!(timing.channel_occupancy(12_000, DataRate::Mbps1) > slow);
    }

    #[test]
    fn ofdm_timing_has_shorter_slots() {
        let b = FrameTiming::dot11b_long_preamble();
        let g = FrameTiming::dot11g_ofdm();
        assert!(g.slot < b.slot);
        assert!(g.phy_overhead < b.phy_overhead);
    }
}
