//! Building blockage (non-line-of-sight) modelling.
//!
//! In a street canyon the dominant propagation effect besides distance is
//! whether the link is line-of-sight along the street or has to cross a
//! building. The paper's testbed AP sits on an office window facing one
//! street of a city block: cars on that street see a (relatively) clean
//! channel, while cars on the other three streets of the loop are shadowed
//! by the block and effectively out of coverage — which is what confines the
//! coverage area and produces the sharp reception windows of Figures 3–5.
//!
//! [`ObstacleMap`] models that with axis-aligned building footprints: every
//! building whose footprint intersects the straight line between transmitter
//! and receiver adds its penetration loss to the link budget.

use serde::{Deserialize, Serialize};
use vanet_geo::Point;

/// An axis-aligned building footprint with a penetration loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Building {
    /// South-west corner of the footprint.
    pub min: Point,
    /// North-east corner of the footprint.
    pub max: Point,
    /// Extra loss (dB) added to any link whose straight path crosses the
    /// footprint. Typical values: 15–20 dB for light structures, 25–35 dB
    /// for a full urban block.
    pub penetration_loss_db: f64,
}

impl Building {
    /// Creates a building from two opposite corners (in any order).
    ///
    /// # Panics
    ///
    /// Panics if the penetration loss is negative.
    pub fn new(corner_a: Point, corner_b: Point, penetration_loss_db: f64) -> Self {
        assert!(penetration_loss_db >= 0.0, "penetration loss must be non-negative");
        Building {
            min: Point::new(corner_a.x.min(corner_b.x), corner_a.y.min(corner_b.y)),
            max: Point::new(corner_a.x.max(corner_b.x), corner_a.y.max(corner_b.y)),
            penetration_loss_db,
        }
    }

    /// Whether `p` lies inside (or on the boundary of) the footprint.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether the segment from `a` to `b` intersects the footprint.
    ///
    /// Uses the slab method (parametric clipping of the segment against the
    /// axis-aligned box).
    pub fn blocks(&self, a: Point, b: Point) -> bool {
        if self.contains(a) || self.contains(b) {
            return true;
        }
        let d = b - a;
        let mut t_min = 0.0f64;
        let mut t_max = 1.0f64;
        for (origin, delta, lo, hi) in
            [(a.x, d.x, self.min.x, self.max.x), (a.y, d.y, self.min.y, self.max.y)]
        {
            if delta.abs() < 1e-12 {
                if origin < lo || origin > hi {
                    return false;
                }
            } else {
                let mut t1 = (lo - origin) / delta;
                let mut t2 = (hi - origin) / delta;
                if t1 > t2 {
                    std::mem::swap(&mut t1, &mut t2);
                }
                t_min = t_min.max(t1);
                t_max = t_max.min(t2);
                if t_min > t_max {
                    return false;
                }
            }
        }
        true
    }
}

/// A set of buildings contributing blockage loss to links.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObstacleMap {
    buildings: Vec<Building>,
}

impl ObstacleMap {
    /// An empty map (free-space scenario).
    pub fn new() -> Self {
        ObstacleMap::default()
    }

    /// Creates a map from a list of buildings.
    pub fn from_buildings(buildings: Vec<Building>) -> Self {
        ObstacleMap { buildings }
    }

    /// Adds one building.
    pub fn add(&mut self, building: Building) {
        self.buildings.push(building);
    }

    /// Number of buildings.
    pub fn len(&self) -> usize {
        self.buildings.len()
    }

    /// Whether the map has no buildings.
    pub fn is_empty(&self) -> bool {
        self.buildings.is_empty()
    }

    /// The buildings in the map.
    pub fn buildings(&self) -> &[Building] {
        &self.buildings
    }

    /// Total blockage loss (dB) of the straight link from `tx` to `rx`:
    /// the sum of the penetration losses of every building the link crosses.
    pub fn blockage_db(&self, tx: Point, rx: Point) -> f64 {
        self.buildings.iter().filter(|b| b.blocks(tx, rx)).map(|b| b.penetration_loss_db).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert, proptest};

    fn block() -> Building {
        Building::new(Point::new(10.0, 10.0), Point::new(30.0, 20.0), 25.0)
    }

    #[test]
    fn corners_are_normalised() {
        let b = Building::new(Point::new(30.0, 20.0), Point::new(10.0, 10.0), 5.0);
        assert_eq!(b.min, Point::new(10.0, 10.0));
        assert_eq!(b.max, Point::new(30.0, 20.0));
    }

    #[test]
    fn segment_through_building_is_blocked() {
        let b = block();
        assert!(b.blocks(Point::new(0.0, 15.0), Point::new(40.0, 15.0)));
        assert!(b.blocks(Point::new(20.0, 0.0), Point::new(20.0, 30.0)));
        // Diagonal crossing.
        assert!(b.blocks(Point::new(5.0, 5.0), Point::new(35.0, 25.0)));
    }

    #[test]
    fn segment_missing_building_is_clear() {
        let b = block();
        assert!(!b.blocks(Point::new(0.0, 0.0), Point::new(40.0, 5.0)));
        assert!(!b.blocks(Point::new(0.0, 25.0), Point::new(40.0, 25.0)));
        assert!(!b.blocks(Point::new(5.0, 0.0), Point::new(5.0, 30.0)));
    }

    #[test]
    fn endpoints_inside_count_as_blocked() {
        let b = block();
        assert!(b.blocks(Point::new(15.0, 15.0), Point::new(100.0, 100.0)));
        assert!(b.blocks(Point::new(100.0, 100.0), Point::new(15.0, 15.0)));
        assert!(b.contains(Point::new(10.0, 10.0)));
        assert!(!b.contains(Point::new(9.9, 10.0)));
    }

    #[test]
    fn obstacle_map_sums_losses() {
        let mut map = ObstacleMap::new();
        assert!(map.is_empty());
        map.add(block());
        map.add(Building::new(Point::new(50.0, 10.0), Point::new(70.0, 20.0), 10.0));
        assert_eq!(map.len(), 2);
        assert_eq!(map.buildings().len(), 2);
        // Crosses both buildings.
        assert_eq!(map.blockage_db(Point::new(0.0, 15.0), Point::new(100.0, 15.0)), 35.0);
        // Crosses only the first.
        assert_eq!(map.blockage_db(Point::new(0.0, 15.0), Point::new(40.0, 15.0)), 25.0);
        // Crosses neither.
        assert_eq!(map.blockage_db(Point::new(0.0, 0.0), Point::new(100.0, 0.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_loss_rejected() {
        let _ = Building::new(Point::ORIGIN, Point::new(1.0, 1.0), -3.0);
    }

    proptest! {
        /// Blocking is symmetric in the segment endpoints.
        #[test]
        fn prop_blocking_is_symmetric(ax in -50.0f64..100.0, ay in -50.0f64..100.0,
                                      bx in -50.0f64..100.0, by in -50.0f64..100.0) {
            let b = block();
            let a = Point::new(ax, ay);
            let c = Point::new(bx, by);
            prop_assert!(b.blocks(a, c) == b.blocks(c, a));
        }

        /// A segment whose bounding box does not touch the building never blocks.
        #[test]
        fn prop_far_segments_clear(ax in 100.0f64..200.0, ay in 100.0f64..200.0,
                                   bx in 100.0f64..200.0, by in 100.0f64..200.0) {
            let b = block();
            prop_assert!(!b.blocks(Point::new(ax, ay), Point::new(bx, by)));
        }
    }
}
