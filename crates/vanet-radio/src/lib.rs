//! # vanet-radio — wireless channel models for the C-ARQ reproduction
//!
//! The paper's prototype used 802.11g cards at 1 Mbps with MadWiFi in monitor
//! mode and link-layer retransmissions disabled; what the protocol sees is
//! therefore simply "this broadcast frame was received / was not received" at
//! each car. This crate produces that per-frame verdict from physical
//! principles so that the *shape* of the paper's reception curves (the three
//! regions of Figures 3–5) emerges from geometry rather than being hard-coded:
//!
//! * [`DataRate`] and frame airtime — 802.11b/g rates with preamble overhead.
//! * [`pathloss`] — free-space, log-distance and two-ray ground models.
//! * [`fading`] — log-normal shadowing (spatially coherent per link) and
//!   Rayleigh-style fast fading.
//! * [`per`] — SNR → bit-error-rate → packet-error-rate curves for the
//!   DSSS/CCK and OFDM modulations used by 802.11b/g.
//! * [`channel`] — the composite [`channel::RadioChannel`], which combines
//!   path loss, shadowing, fading and thermal noise into a single
//!   "was this frame received?" sampling interface, plus
//!   [`channel::EmpiricalProfile`] for distance-binned loss curves measured
//!   in drive-thru studies (reference \[1\] of the paper).
//!
//! ## Example
//!
//! ```rust
//! use vanet_geo::Point;
//! use vanet_radio::{ChannelModel, DataRate, RadioChannel, RadioConfig};
//! use sim_core::StreamRng;
//!
//! let channel = RadioChannel::new(RadioConfig::urban_2_4ghz());
//! let mut rng = StreamRng::derive(1, "channel");
//! let verdict = channel.sample_reception(
//!     Point::new(0.0, 0.0),
//!     Point::new(60.0, 0.0),
//!     1_000 * 8,
//!     DataRate::Mbps1,
//!     &mut rng,
//! );
//! // 60 m in an urban channel: usually received, sometimes not — but always a
//! // well-defined probability.
//! assert!((0.0..=1.0).contains(&verdict.success_probability));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod datarate;
pub mod fading;
pub mod obstacles;
pub mod pathloss;
pub mod per;

pub use channel::{
    ChannelModel, EmpiricalProfile, LinkBudget, LinkState, RadioChannel, RadioConfig,
    ReceptionVerdict,
};
pub use datarate::{DataRate, FrameTiming};
pub use fading::{FadingKind, FadingModel, NoFading, RayleighFading, RicianFading, Shadowing};
pub use obstacles::{Building, ObstacleMap};
pub use pathloss::{FreeSpace, LogDistance, PathLossModel, TwoRayGround};
pub use per::{packet_error_rate, snr_to_ber, Modulation};

/// Converts a linear power ratio to decibels.
///
/// ```
/// assert!((vanet_radio::to_db(100.0) - 20.0).abs() < 1e-9);
/// ```
pub fn to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Converts decibels to a linear power ratio.
///
/// ```
/// assert!((vanet_radio::from_db(20.0) - 100.0).abs() < 1e-9);
/// ```
pub fn from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts milliwatts to dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    to_db(mw)
}

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    from_db(dbm)
}

#[cfg(test)]
mod tests {
    #[test]
    fn db_conversions_roundtrip() {
        for v in [0.5, 1.0, 10.0, 123.4] {
            assert!((super::from_db(super::to_db(v)) - v).abs() < 1e-9);
        }
        assert!((super::dbm_to_mw(super::mw_to_dbm(3.2)) - 3.2).abs() < 1e-9);
    }
}
