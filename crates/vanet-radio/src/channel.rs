//! The composite radio channel: path loss + shadowing + fading + noise →
//! per-frame reception verdicts.
//!
//! Two channel implementations are provided:
//!
//! * [`RadioChannel`] — the physical model. Combines a [`PathLossModel`],
//!   a spatially correlated shadowing field, optional Rayleigh fast fading
//!   and a thermal-noise floor, then maps the resulting SNR through the
//!   [`crate::per`] curves. This is the model used to reproduce the paper's
//!   urban testbed.
//! * [`EmpiricalProfile`] — a distance-binned reception-probability table,
//!   in the spirit of the drive-thru-Internet measurements the paper cites
//!   as reference \[1\]. Useful for calibrating against published loss
//!   percentages and as a fast baseline channel.

use serde::{Deserialize, Serialize};
use sim_core::StreamRng;
use vanet_geo::Point;

use crate::datarate::DataRate;
use crate::fading::FadingKind;
use crate::obstacles::ObstacleMap;
use crate::pathloss::{LogDistance, PathLossModel};
use crate::per::packet_error_rate;

/// The deterministic part of a link: received power and SNR before any
/// random shadowing or fading is applied.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Distance between transmitter and receiver in metres.
    pub distance_m: f64,
    /// Path loss in dB.
    pub path_loss_db: f64,
    /// Median received power in dBm.
    pub rx_power_dbm: f64,
    /// Median SNR in dB.
    pub snr_db: f64,
}

/// The full deterministic part of a link: the median [`LinkBudget`] plus the
/// (deterministic, spatially correlated) shadowing realisation at this
/// (tx, rx) pair. Positions only change at mobility ticks, so callers that
/// sample many frames between ticks can compute this once per pair and reuse
/// it via [`RadioChannel::sample_from_state`] — only the fast-fading draw and
/// the reception Bernoulli stay per-frame, which keeps RNG consumption and
/// results bit-identical to calling
/// [`ChannelModel::sample_reception`] every time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkState {
    /// The median link budget (path loss, obstacles, noise).
    pub budget: LinkBudget,
    /// The shadowing realisation (dB) at this position pair.
    pub shadowing_db: f64,
}

/// The outcome of sampling one frame transmission over a channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReceptionVerdict {
    /// Whether the frame was received.
    pub received: bool,
    /// The probability of success that was sampled against (after the random
    /// shadowing/fading realisation, before the final Bernoulli draw).
    pub success_probability: f64,
    /// Realised SNR in dB, including shadowing and fading.
    pub snr_db: f64,
}

/// A packet-level wireless channel model.
pub trait ChannelModel: std::fmt::Debug {
    /// The deterministic link budget between two positions.
    fn link_budget(&self, tx: Point, rx: Point) -> LinkBudget;

    /// Samples whether a single frame of `bits` bits sent at `rate` from `tx`
    /// to `rx` is received.
    fn sample_reception(
        &self,
        tx: Point,
        rx: Point,
        bits: u64,
        rate: DataRate,
        rng: &mut StreamRng,
    ) -> ReceptionVerdict;

    /// The distance (m) beyond which the median SNR falls below `snr_db`.
    /// Used by the MAC layer to prune hopeless links and by scenario code to
    /// size coverage areas. The default implementation bisects
    /// [`ChannelModel::link_budget`].
    fn range_for_snr(&self, snr_db: f64) -> f64 {
        let probe = |d: f64| self.link_budget(Point::ORIGIN, Point::new(d, 0.0)).snr_db;
        let mut lo = 1.0;
        let mut hi = 10_000.0;
        if probe(hi) > snr_db {
            return hi;
        }
        if probe(lo) < snr_db {
            return lo;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if probe(mid) > snr_db {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Configuration of the physical [`RadioChannel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Combined antenna gains (tx + rx) in dBi.
    pub antenna_gain_db: f64,
    /// Thermal-noise floor (including receiver noise figure) in dBm.
    pub noise_floor_dbm: f64,
    /// Log-distance path loss parameters.
    pub path_loss: LogDistance,
    /// Standard deviation of the log-normal shadowing field in dB
    /// (0 disables shadowing).
    pub shadowing_sigma_db: f64,
    /// Decorrelation distance of the shadowing field in metres.
    pub shadowing_decorrelation_m: f64,
    /// The per-frame fast-fading model.
    pub fading: FadingKind,
    /// Seed of the (deterministic) spatial shadowing field.
    pub shadowing_seed: u64,
    /// Building footprints adding non-line-of-sight blockage loss.
    #[serde(default)]
    pub obstacles: ObstacleMap,
}

impl RadioConfig {
    /// The AP→vehicle channel of the urban testbed: 2.4 GHz, office-window
    /// antenna (12 dB penetration + cabling loss folded into the path loss),
    /// street-canyon path loss, σ = 4 dB shadowing and Rician fast fading.
    /// Calibrated so that the coverage window and loss rates match the
    /// paper's Table 1 (see `EXPERIMENTS.md`).
    pub fn urban_2_4ghz() -> Self {
        RadioConfig {
            tx_power_dbm: 14.0,
            antenna_gain_db: 0.0,
            noise_floor_dbm: -95.0,
            path_loss: LogDistance {
                reference_m: 1.0,
                reference_loss_db: 40.0,
                exponent: 3.4,
                extra_loss_db: 10.0,
            },
            shadowing_sigma_db: 4.0,
            shadowing_decorrelation_m: 25.0,
            fading: FadingKind::Rician { k_db: 6.0 },
            shadowing_seed: 0x5eed,
            obstacles: ObstacleMap::new(),
        }
    }

    /// The vehicle↔vehicle channel of the urban testbed: same street canyon
    /// but no building penetration and antennas at the same height, so the
    /// platoon's short links (tens of metres) are reliable.
    pub fn urban_vehicle_to_vehicle() -> Self {
        RadioConfig {
            tx_power_dbm: 15.0,
            antenna_gain_db: 0.0,
            noise_floor_dbm: -95.0,
            path_loss: LogDistance {
                reference_m: 1.0,
                reference_loss_db: 40.0,
                exponent: 2.9,
                extra_loss_db: 0.0,
            },
            shadowing_sigma_db: 4.0,
            shadowing_decorrelation_m: 15.0,
            fading: FadingKind::Rician { k_db: 6.0 },
            shadowing_seed: 0xcafe,
            obstacles: ObstacleMap::new(),
        }
    }

    /// A highway drive-thru channel (reference \[1\] of the paper): open
    /// surroundings, higher speeds, roadside AP mast. Calibrated so that a
    /// passing car sees a usable cell of a few hundred metres, as the
    /// drive-thru-Internet measurements report.
    pub fn highway_2_4ghz() -> Self {
        RadioConfig {
            tx_power_dbm: 15.0,
            antenna_gain_db: 2.0,
            noise_floor_dbm: -95.0,
            path_loss: LogDistance {
                reference_m: 1.0,
                reference_loss_db: 40.0,
                exponent: 2.8,
                extra_loss_db: 0.0,
            },
            shadowing_sigma_db: 4.0,
            shadowing_decorrelation_m: 50.0,
            fading: FadingKind::Rayleigh,
            shadowing_seed: 0xbeef,
            obstacles: ObstacleMap::new(),
        }
    }

    /// An idealised loss-free channel (useful in unit tests).
    pub fn ideal() -> Self {
        RadioConfig {
            tx_power_dbm: 30.0,
            antenna_gain_db: 0.0,
            noise_floor_dbm: -95.0,
            path_loss: LogDistance {
                reference_m: 1.0,
                reference_loss_db: 30.0,
                exponent: 2.0,
                extra_loss_db: 0.0,
            },
            shadowing_sigma_db: 0.0,
            shadowing_decorrelation_m: 10.0,
            fading: FadingKind::None,
            shadowing_seed: 0,
            obstacles: ObstacleMap::new(),
        }
    }

    /// Overrides the transmit power.
    pub fn with_tx_power_dbm(mut self, dbm: f64) -> Self {
        self.tx_power_dbm = dbm;
        self
    }

    /// Overrides the shadowing seed (used to vary rounds independently).
    pub fn with_shadowing_seed(mut self, seed: u64) -> Self {
        self.shadowing_seed = seed;
        self
    }

    /// Disables fast fading.
    pub fn without_fast_fading(mut self) -> Self {
        self.fading = FadingKind::None;
        self
    }

    /// Overrides the fast-fading model.
    pub fn with_fading(mut self, fading: FadingKind) -> Self {
        self.fading = fading;
        self
    }

    /// Adds building footprints whose penetration loss is applied to links
    /// that cross them.
    pub fn with_obstacles(mut self, obstacles: ObstacleMap) -> Self {
        self.obstacles = obstacles;
        self
    }
}

/// A deterministic, spatially correlated Gaussian field used for shadowing.
///
/// The field is a sum of `K` cosine plane waves with random directions and
/// phases; by the central limit theorem the marginal distribution is close to
/// Gaussian with unit variance, and the correlation length is set by the
/// wavelength of the waves. Because the field is a pure function of position
/// it needs no mutable state: the same (tx, rx) pair always sees the same
/// shadowing value, which is exactly how real shadowing behaves on the
/// timescale of one experiment round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SpatialField {
    waves: Vec<(f64, f64, f64)>, // (kx, ky, phase)
    amplitude: f64,
}

impl SpatialField {
    fn new(seed: u64, correlation_m: f64, count: usize) -> Self {
        let mut rng = StreamRng::derive(seed, "radio.shadowing-field");
        let k_mag = std::f64::consts::TAU / correlation_m.max(1e-3);
        let waves = (0..count)
            .map(|_| {
                let theta = rng.uniform(0.0, std::f64::consts::TAU);
                let phase = rng.uniform(0.0, std::f64::consts::TAU);
                // Spread wave numbers around k_mag for a smoother spectrum.
                let k = k_mag * rng.uniform(0.5, 1.5);
                (k * theta.cos(), k * theta.sin(), phase)
            })
            .collect::<Vec<_>>();
        // Sum of `count` unit cosines has variance count/2; normalise to 1.
        let amplitude = (2.0 / count as f64).sqrt();
        SpatialField { waves, amplitude }
    }

    /// Field value (unit variance, zero mean) at `p`.
    fn value_at(&self, p: Point) -> f64 {
        self.amplitude
            * self
                .waves
                .iter()
                .map(|(kx, ky, phase)| (kx * p.x + ky * p.y + phase).cos())
                .sum::<f64>()
    }
}

/// The physical packet-level channel model.
#[derive(Debug, Clone)]
pub struct RadioChannel {
    config: RadioConfig,
    field: SpatialField,
}

impl RadioChannel {
    /// Creates a channel from its configuration.
    pub fn new(config: RadioConfig) -> Self {
        let field = SpatialField::new(config.shadowing_seed, config.shadowing_decorrelation_m, 24);
        RadioChannel { config, field }
    }

    /// The configuration this channel was built from.
    pub fn config(&self) -> &RadioConfig {
        &self.config
    }

    fn shadowing_db(&self, tx: Point, rx: Point) -> f64 {
        if self.config.shadowing_sigma_db <= 0.0 {
            return 0.0;
        }
        // Evaluate the field at the receiver, displaced by a transmitter-
        // dependent offset so that different transmitters see different (but
        // individually coherent) shadowing landscapes.
        let probe = Point::new(rx.x + 0.37 * tx.x - 0.21 * tx.y, rx.y + 0.29 * tx.y + 0.17 * tx.x);
        self.config.shadowing_sigma_db * self.field.value_at(probe)
    }

    /// Computes the deterministic part of the link from `tx` to `rx` —
    /// everything [`ChannelModel::sample_reception`] derives from positions
    /// alone. Cacheable while neither endpoint moves.
    pub fn link_state(&self, tx: Point, rx: Point) -> LinkState {
        LinkState { budget: self.link_budget(tx, rx), shadowing_db: self.shadowing_db(tx, rx) }
    }

    /// Samples one frame over a precomputed [`LinkState`]. Draws exactly the
    /// random variates [`ChannelModel::sample_reception`] would (fast fading,
    /// then the reception Bernoulli), in the same order, so interleaving
    /// cached and uncached sampling on one RNG stream is bit-identical.
    pub fn sample_from_state(
        &self,
        state: &LinkState,
        bits: u64,
        rate: DataRate,
        rng: &mut StreamRng,
    ) -> ReceptionVerdict {
        let fading = self.config.fading.sample_db(rng);
        let snr_db = state.budget.snr_db + state.shadowing_db + fading;
        let per = packet_error_rate(snr_db, bits, rate);
        let success_probability = 1.0 - per;
        let received = rng.chance(success_probability);
        ReceptionVerdict { received, success_probability, snr_db }
    }
}

impl ChannelModel for RadioChannel {
    fn link_budget(&self, tx: Point, rx: Point) -> LinkBudget {
        let distance_m = tx.distance_to(rx);
        let path_loss_db =
            self.config.path_loss.loss_db(distance_m) + self.config.obstacles.blockage_db(tx, rx);
        let rx_power_dbm = self.config.tx_power_dbm + self.config.antenna_gain_db - path_loss_db;
        LinkBudget {
            distance_m,
            path_loss_db,
            rx_power_dbm,
            snr_db: rx_power_dbm - self.config.noise_floor_dbm,
        }
    }

    fn sample_reception(
        &self,
        tx: Point,
        rx: Point,
        bits: u64,
        rate: DataRate,
        rng: &mut StreamRng,
    ) -> ReceptionVerdict {
        self.sample_from_state(&self.link_state(tx, rx), bits, rate, rng)
    }
}

/// A distance-binned reception-probability profile.
///
/// The profile is a piecewise-linear function `P(reception | distance)`. The
/// default profile reproduces the qualitative drive-thru findings of the
/// paper's reference \[1\]: an entry region with rising reception, a
/// "production" region of good reception around the AP and a symmetric exit
/// region, with overall losses in the 50–60 % range at highway speeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalProfile {
    /// `(distance_m, reception_probability)` break-points, sorted by distance.
    points: Vec<(f64, f64)>,
    /// Reference noise/SNR figures reported alongside the profile (used only
    /// for [`ChannelModel::link_budget`] introspection).
    reference_snr_at_zero_db: f64,
}

impl EmpiricalProfile {
    /// Builds a profile from `(distance, probability)` break-points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given, if distances are not
    /// strictly increasing, or if any probability is outside `[0, 1]`.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "a profile needs at least two break-points");
        for w in points.windows(2) {
            assert!(w[1].0 > w[0].0, "profile distances must be strictly increasing");
        }
        assert!(
            points.iter().all(|(_, p)| (0.0..=1.0).contains(p)),
            "probabilities must lie in [0, 1]"
        );
        EmpiricalProfile { points, reference_snr_at_zero_db: 30.0 }
    }

    /// The drive-thru-Internet profile of the paper's reference \[1\]:
    /// usable reception out to roughly ±250 m of the AP with a good region
    /// of ±80 m.
    pub fn drive_thru() -> Self {
        EmpiricalProfile::new(vec![
            (0.0, 0.95),
            (80.0, 0.9),
            (150.0, 0.6),
            (220.0, 0.25),
            (300.0, 0.02),
            (400.0, 0.0),
        ])
    }

    /// Reception probability at `distance_m` (linear interpolation, clamped
    /// at the profile ends).
    pub fn probability_at(&self, distance_m: f64) -> f64 {
        let pts = &self.points;
        if distance_m <= pts[0].0 {
            return pts[0].1;
        }
        if distance_m >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let (d0, p0) = w[0];
            let (d1, p1) = w[1];
            if distance_m <= d1 {
                let t = (distance_m - d0) / (d1 - d0);
                return p0 + t * (p1 - p0);
            }
        }
        pts[pts.len() - 1].1
    }
}

impl ChannelModel for EmpiricalProfile {
    fn link_budget(&self, tx: Point, rx: Point) -> LinkBudget {
        let distance_m = tx.distance_to(rx);
        // Synthesise an SNR that decreases smoothly with distance so that
        // range_for_snr and diagnostics remain meaningful.
        let snr_db = self.reference_snr_at_zero_db - 30.0 * (1.0 + distance_m).log10();
        LinkBudget { distance_m, path_loss_db: f64::NAN, rx_power_dbm: f64::NAN, snr_db }
    }

    fn sample_reception(
        &self,
        tx: Point,
        rx: Point,
        _bits: u64,
        _rate: DataRate,
        rng: &mut StreamRng,
    ) -> ReceptionVerdict {
        let p = self.probability_at(tx.distance_to(rx));
        let received = rng.chance(p);
        ReceptionVerdict {
            received,
            success_probability: p,
            snr_db: self.link_budget(tx, rx).snr_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert, proptest};

    fn reception_rate(channel: &dyn ChannelModel, distance: f64, trials: usize, seed: u64) -> f64 {
        let mut rng = StreamRng::derive(seed, "rate-test");
        let tx = Point::ORIGIN;
        let rx = Point::new(distance, 0.0);
        let ok = (0..trials)
            .filter(|_| channel.sample_reception(tx, rx, 8_000, DataRate::Mbps1, &mut rng).received)
            .count();
        ok as f64 / trials as f64
    }

    #[test]
    fn urban_channel_is_good_close_and_bad_far() {
        let ch = RadioChannel::new(RadioConfig::urban_2_4ghz());
        let near = reception_rate(&ch, 20.0, 400, 1);
        let far = reception_rate(&ch, 300.0, 400, 2);
        assert!(near > 0.85, "near reception {near}");
        assert!(far < 0.1, "far reception {far}");
    }

    #[test]
    fn v2v_channel_is_reliable_at_platoon_distances() {
        let ch = RadioChannel::new(RadioConfig::urban_vehicle_to_vehicle());
        let rate = reception_rate(&ch, 50.0, 600, 3);
        assert!(rate > 0.9, "platoon-distance reception {rate}");
    }

    #[test]
    fn ideal_channel_never_loses() {
        let ch = RadioChannel::new(RadioConfig::ideal());
        assert_eq!(reception_rate(&ch, 100.0, 200, 4), 1.0);
    }

    #[test]
    fn link_budget_snr_decreases_with_distance() {
        let ch = RadioChannel::new(RadioConfig::urban_2_4ghz());
        let near = ch.link_budget(Point::ORIGIN, Point::new(10.0, 0.0));
        let far = ch.link_budget(Point::ORIGIN, Point::new(200.0, 0.0));
        assert!(near.snr_db > far.snr_db);
        assert!(near.rx_power_dbm > far.rx_power_dbm);
        assert_eq!(near.distance_m, 10.0);
    }

    #[test]
    fn range_for_snr_brackets_the_transition() {
        let ch = RadioChannel::new(RadioConfig::urban_2_4ghz());
        let range = ch.range_for_snr(0.0);
        assert!(range > 20.0 && range < 200.0, "range {range}");
        let b = ch.link_budget(Point::ORIGIN, Point::new(range, 0.0));
        assert!(b.snr_db.abs() < 0.5);
    }

    #[test]
    fn shadowing_field_is_deterministic_and_roughly_unit_variance() {
        let field = SpatialField::new(7, 20.0, 24);
        let a = field.value_at(Point::new(12.0, 34.0));
        let b = field.value_at(Point::new(12.0, 34.0));
        assert_eq!(a, b);
        let n = 4_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for i in 0..n {
            let v = field.value_at(Point::new((i % 63) as f64 * 7.3, (i / 63) as f64 * 11.1));
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 1.0).abs() < 0.35, "variance {var}");
    }

    #[test]
    fn cached_link_state_sampling_is_bit_identical() {
        let ch = RadioChannel::new(RadioConfig::urban_2_4ghz());
        let tx = Point::ORIGIN;
        let rx = Point::new(73.0, 12.0);
        let state = ch.link_state(tx, rx);
        assert_eq!(state.budget, ch.link_budget(tx, rx));
        // Two identical RNG streams: one sampling from the cached state, one
        // through the full per-call path. Every verdict must match exactly.
        let mut cached_rng = StreamRng::derive(99, "state");
        let mut direct_rng = StreamRng::derive(99, "state");
        for _ in 0..200 {
            let cached = ch.sample_from_state(&state, 8_000, DataRate::Mbps1, &mut cached_rng);
            let direct = ch.sample_reception(tx, rx, 8_000, DataRate::Mbps1, &mut direct_rng);
            assert_eq!(cached, direct);
        }
    }

    #[test]
    fn empirical_profile_interpolates() {
        let p = EmpiricalProfile::drive_thru();
        assert_eq!(p.probability_at(0.0), 0.95);
        assert!((p.probability_at(115.0) - 0.75).abs() < 1e-9);
        assert_eq!(p.probability_at(1_000.0), 0.0);
        let mid = reception_rate(&p, 150.0, 2_000, 5);
        assert!((mid - 0.6).abs() < 0.05, "measured {mid}");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn profile_rejects_unsorted_points() {
        let _ = EmpiricalProfile::new(vec![(10.0, 0.5), (5.0, 0.4)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn profile_rejects_single_point() {
        let _ = EmpiricalProfile::new(vec![(10.0, 0.5)]);
    }

    proptest! {
        /// Reception probability reported by the verdict always lies in [0,1],
        /// and closer receivers never have a *worse* median link budget.
        #[test]
        fn prop_verdict_probability_valid(d in 1.0f64..500.0, seed in 0u64..100) {
            let ch = RadioChannel::new(RadioConfig::urban_2_4ghz());
            let mut rng = StreamRng::derive(seed, "prop");
            let v = ch.sample_reception(Point::ORIGIN, Point::new(d, 0.0), 8_000, DataRate::Mbps1, &mut rng);
            prop_assert!((0.0..=1.0).contains(&v.success_probability));
            let closer = ch.link_budget(Point::ORIGIN, Point::new(d / 2.0, 0.0));
            let here = ch.link_budget(Point::ORIGIN, Point::new(d, 0.0));
            prop_assert!(closer.snr_db >= here.snr_db);
        }

        /// The empirical profile respects its break-point envelope.
        #[test]
        fn prop_profile_within_envelope(d in 0.0f64..500.0) {
            let p = EmpiricalProfile::drive_thru();
            let v = p.probability_at(d);
            prop_assert!((0.0..=0.95).contains(&v));
        }
    }
}
