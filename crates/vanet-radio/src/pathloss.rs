//! Large-scale path-loss models.
//!
//! Path loss maps a transmitter–receiver distance to an attenuation in dB.
//! The urban testbed (AP behind an office window, cars in the street) is well
//! described by a log-distance model with an exponent between 2.7 and 3.5 and
//! an extra wall-penetration loss folded into the reference attenuation.

use serde::{Deserialize, Serialize};

/// A deterministic large-scale path-loss model.
pub trait PathLossModel: std::fmt::Debug {
    /// Attenuation in dB at `distance_m` metres. Implementations must be
    /// monotone non-decreasing in distance.
    fn loss_db(&self, distance_m: f64) -> f64;
}

/// Free-space (Friis) path loss.
///
/// `L(d) = 20 log10(d) + 20 log10(f) - 147.55` with `f` in Hz and `d` in m.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreeSpace {
    /// Carrier frequency in Hz.
    pub frequency_hz: f64,
}

impl FreeSpace {
    /// Free-space loss at the 2.4 GHz ISM band used by 802.11b/g.
    pub fn at_2_4ghz() -> Self {
        FreeSpace { frequency_hz: 2.412e9 }
    }
}

impl PathLossModel for FreeSpace {
    fn loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(1.0);
        20.0 * d.log10() + 20.0 * self.frequency_hz.log10() - 147.55
    }
}

/// Log-distance path loss: free-space up to a reference distance, then a
/// power law with a configurable exponent, plus a constant extra loss (used
/// for the AP's window/wall penetration in the urban testbed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogDistance {
    /// Reference distance in metres (typically 1 m).
    pub reference_m: f64,
    /// Loss at the reference distance, in dB.
    pub reference_loss_db: f64,
    /// Path-loss exponent (2 = free space, 2.7–3.5 = urban street).
    pub exponent: f64,
    /// Constant additional loss in dB (wall penetration, antenna cabling…).
    pub extra_loss_db: f64,
}

impl LogDistance {
    /// Urban street parametrisation at 2.4 GHz: 40 dB at 1 m, exponent 3.0.
    pub fn urban_2_4ghz() -> Self {
        LogDistance { reference_m: 1.0, reference_loss_db: 40.0, exponent: 3.0, extra_loss_db: 0.0 }
    }

    /// Open highway parametrisation: closer to free space (exponent 2.4).
    pub fn highway_2_4ghz() -> Self {
        LogDistance { reference_m: 1.0, reference_loss_db: 40.0, exponent: 2.4, extra_loss_db: 0.0 }
    }

    /// Adds a constant extra loss (e.g. 6 dB window penetration).
    pub fn with_extra_loss(mut self, extra_db: f64) -> Self {
        self.extra_loss_db = extra_db;
        self
    }
}

impl PathLossModel for LogDistance {
    fn loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(self.reference_m);
        self.reference_loss_db
            + 10.0 * self.exponent * (d / self.reference_m).log10()
            + self.extra_loss_db
    }
}

/// Two-ray ground-reflection model: free-space behaviour up to the crossover
/// distance, then a fourth-power law determined by antenna heights. Useful
/// for flat highway scenarios with long link distances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoRayGround {
    /// Transmitter antenna height in metres.
    pub tx_height_m: f64,
    /// Receiver antenna height in metres.
    pub rx_height_m: f64,
    /// Carrier frequency in Hz.
    pub frequency_hz: f64,
}

impl TwoRayGround {
    /// Roadside AP at 5 m, car antenna at 1.5 m, 2.4 GHz.
    pub fn roadside_default() -> Self {
        TwoRayGround { tx_height_m: 5.0, rx_height_m: 1.5, frequency_hz: 2.412e9 }
    }

    /// The crossover distance below which free space applies.
    pub fn crossover_distance_m(&self) -> f64 {
        let wavelength = 2.998e8 / self.frequency_hz;
        4.0 * std::f64::consts::PI * self.tx_height_m * self.rx_height_m / wavelength
    }
}

impl PathLossModel for TwoRayGround {
    fn loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(1.0);
        let crossover = self.crossover_distance_m();
        let free = FreeSpace { frequency_hz: self.frequency_hz };
        if d <= crossover {
            free.loss_db(d)
        } else {
            // Continuity at the crossover: offset the 40 log10(d) branch so the
            // two branches agree at d = crossover.
            let at_crossover = free.loss_db(crossover);
            at_crossover + 40.0 * (d / crossover).log10()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert, proptest};

    #[test]
    fn free_space_reference_values() {
        let fs = FreeSpace::at_2_4ghz();
        // ~40 dB at 1 m, ~60 dB at 10 m, ~80 dB at 100 m for 2.4 GHz.
        assert!((fs.loss_db(1.0) - 40.1).abs() < 0.5);
        assert!((fs.loss_db(10.0) - 60.1).abs() < 0.5);
        assert!((fs.loss_db(100.0) - 80.1).abs() < 0.5);
    }

    #[test]
    fn log_distance_slope_matches_exponent() {
        let ld = LogDistance::urban_2_4ghz();
        let per_decade = ld.loss_db(100.0) - ld.loss_db(10.0);
        assert!((per_decade - 30.0).abs() < 1e-9);
        let with_wall = ld.with_extra_loss(6.0);
        assert!((with_wall.loss_db(10.0) - ld.loss_db(10.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn two_ray_reduces_to_free_space_close_in() {
        let tr = TwoRayGround::roadside_default();
        let fs = FreeSpace { frequency_hz: tr.frequency_hz };
        let d = tr.crossover_distance_m() / 2.0;
        assert!((tr.loss_db(d) - fs.loss_db(d)).abs() < 1e-9);
        // Beyond the crossover the two-ray slope (40 dB/decade) exceeds free space (20).
        let far = tr.crossover_distance_m() * 10.0;
        assert!(tr.loss_db(far) > fs.loss_db(far));
    }

    #[test]
    fn below_reference_distance_is_clamped() {
        let ld = LogDistance::urban_2_4ghz();
        assert_eq!(ld.loss_db(0.0), ld.loss_db(1.0));
        let fs = FreeSpace::at_2_4ghz();
        assert_eq!(fs.loss_db(0.0), fs.loss_db(1.0));
    }

    proptest! {
        /// All models are monotone non-decreasing in distance.
        #[test]
        fn prop_monotone(d1 in 1.0f64..2_000.0, delta in 0.0f64..500.0) {
            let models: Vec<Box<dyn PathLossModel>> = vec![
                Box::new(FreeSpace::at_2_4ghz()),
                Box::new(LogDistance::urban_2_4ghz()),
                Box::new(LogDistance::highway_2_4ghz().with_extra_loss(3.0)),
                Box::new(TwoRayGround::roadside_default()),
            ];
            for m in &models {
                prop_assert!(m.loss_db(d1 + delta) + 1e-9 >= m.loss_db(d1));
            }
        }
    }
}
