//! SNR → BER → packet-error-rate curves.
//!
//! The reception verdict for a frame is obtained by mapping the received SNR
//! to a bit-error rate for the modulation in use and assuming independent bit
//! errors across the frame: `PER = 1 - (1 - BER)^bits`. This is the standard
//! abstraction used by packet-level network simulators and is sufficient to
//! reproduce the loss *shapes* the paper reports (smoothly degrading
//! reception at the coverage edges, near-perfect reception close to the AP).

use serde::{Deserialize, Serialize};

use crate::datarate::DataRate;

/// Modulation/coding families with distinct BER curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// Differential BPSK (1 Mbps DSSS).
    Dbpsk,
    /// Differential QPSK (2 Mbps DSSS).
    Dqpsk,
    /// CCK (5.5 / 11 Mbps).
    Cck,
    /// OFDM BPSK/QPSK with rate-1/2 coding (6 / 12 Mbps).
    OfdmLow,
    /// OFDM 16-QAM / 64-QAM (24 / 54 Mbps).
    OfdmHigh,
}

impl Modulation {
    /// The modulation used by a given PHY rate.
    pub fn for_rate(rate: DataRate) -> Modulation {
        match rate {
            DataRate::Mbps1 => Modulation::Dbpsk,
            DataRate::Mbps2 => Modulation::Dqpsk,
            DataRate::Mbps5_5 | DataRate::Mbps11 => Modulation::Cck,
            DataRate::Mbps6 | DataRate::Mbps12 => Modulation::OfdmLow,
            DataRate::Mbps24 | DataRate::Mbps54 => Modulation::OfdmHigh,
        }
    }
}

/// Complementary error function approximation (Abramowitz & Stegun 7.1.26
/// applied to `erf`), accurate to ~1.5e-7 — far tighter than the channel
/// model needs.
fn erfc(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x_abs);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x_abs * x_abs).exp();
    1.0 - sign * erf
}

/// Gaussian Q-function.
fn q(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Bit-error rate at a given SNR (in dB) for a modulation family.
///
/// The SNR here is the per-bit SNR after despreading; the DSSS processing
/// gain (10.4 dB for the 11-chip Barker code) is credited to the 1 and
/// 2 Mbps rates, which is what makes them usable far beyond the range of the
/// OFDM rates — and why the paper's testbed ran at 1 Mbps.
pub fn snr_to_ber(snr_db: f64, modulation: Modulation) -> f64 {
    let snr = 10f64.powf(snr_db / 10.0);
    let ber = match modulation {
        Modulation::Dbpsk => {
            // DBPSK with Barker spreading: 0.5 * exp(-Eb/N0), Eb/N0 = SNR * 11.
            0.5 * (-snr * 11.0).exp()
        }
        Modulation::Dqpsk => {
            // DQPSK with spreading gain shared over 2 bits/symbol.
            0.5 * (-snr * 5.5).exp()
        }
        Modulation::Cck => {
            // Empirical CCK approximation.
            q((snr * 4.0).sqrt())
        }
        Modulation::OfdmLow => q((2.0 * snr).sqrt()),
        Modulation::OfdmHigh => {
            // 16/64-QAM approximation: needs substantially more SNR.
            0.75 * q((snr / 5.0).sqrt())
        }
    };
    ber.clamp(0.0, 0.5)
}

/// Packet error rate for a frame of `bits` bits at `snr_db`, assuming
/// independent bit errors.
///
/// # Examples
///
/// ```
/// use vanet_radio::{packet_error_rate, DataRate};
///
/// // Strong signal: essentially no losses even for 1000-byte frames.
/// assert!(packet_error_rate(15.0, 8_000, DataRate::Mbps1) < 1e-6);
/// // Deeply negative SNR: certain loss.
/// assert!(packet_error_rate(-10.0, 8_000, DataRate::Mbps1) > 0.99);
/// ```
pub fn packet_error_rate(snr_db: f64, bits: u64, rate: DataRate) -> f64 {
    let ber = snr_to_ber(snr_db, Modulation::for_rate(rate));
    if ber <= 0.0 {
        return 0.0;
    }
    // 1 - (1-ber)^bits computed stably in log space.
    let log_success = bits as f64 * (1.0 - ber).ln();
    (1.0 - log_success.exp()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert, proptest};

    #[test]
    fn ber_decreases_with_snr() {
        for m in [
            Modulation::Dbpsk,
            Modulation::Dqpsk,
            Modulation::Cck,
            Modulation::OfdmLow,
            Modulation::OfdmHigh,
        ] {
            let low = snr_to_ber(0.0, m);
            let high = snr_to_ber(15.0, m);
            assert!(high < low, "{m:?}: {high} !< {low}");
        }
    }

    #[test]
    fn robust_modulations_outperform_fragile_ones_at_low_snr() {
        let snr = 2.0;
        assert!(snr_to_ber(snr, Modulation::Dbpsk) < snr_to_ber(snr, Modulation::OfdmHigh));
        assert!(snr_to_ber(snr, Modulation::Dbpsk) < snr_to_ber(snr, Modulation::Cck));
    }

    #[test]
    fn per_is_zero_and_one_at_extremes() {
        assert_eq!(packet_error_rate(40.0, 8_000, DataRate::Mbps1), 0.0);
        assert!(packet_error_rate(-20.0, 8_000, DataRate::Mbps54) > 0.999);
    }

    #[test]
    fn longer_frames_are_more_fragile() {
        let snr = 1.5;
        let short = packet_error_rate(snr, 400, DataRate::Mbps1);
        let long = packet_error_rate(snr, 12_000, DataRate::Mbps1);
        assert!(long > short);
    }

    #[test]
    fn modulation_for_rate_mapping() {
        assert_eq!(Modulation::for_rate(DataRate::Mbps1), Modulation::Dbpsk);
        assert_eq!(Modulation::for_rate(DataRate::Mbps11), Modulation::Cck);
        assert_eq!(Modulation::for_rate(DataRate::Mbps54), Modulation::OfdmHigh);
    }

    #[test]
    fn erfc_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!(erfc(3.0) < 1e-4);
        assert!((erfc(-3.0) - 2.0).abs() < 1e-4);
    }

    proptest! {
        #[test]
        fn prop_per_in_unit_interval(snr in -30.0f64..40.0, bits in 1u64..20_000) {
            for rate in DataRate::all() {
                let per = packet_error_rate(snr, bits, rate);
                prop_assert!((0.0..=1.0).contains(&per));
            }
        }

        #[test]
        fn prop_per_monotone_in_snr(snr in -20.0f64..30.0, delta in 0.0f64..10.0) {
            let low = packet_error_rate(snr, 8_000, DataRate::Mbps1);
            let high = packet_error_rate(snr + delta, 8_000, DataRate::Mbps1);
            prop_assert!(high <= low + 1e-12);
        }
    }
}
