//! Small-scale fading and shadowing.
//!
//! Two random components sit on top of the deterministic path loss:
//!
//! * **Log-normal shadowing** — slowly varying attenuation caused by
//!   buildings, parked cars and street furniture. It is *spatially
//!   coherent*: two packets transmitted a few metres apart see almost the
//!   same shadowing value. We model that coherence with a Gauss–Markov
//!   process over the distance travelled by the receiver, which is what
//!   creates the "lumpy" reception curves of the paper's Figures 3–5
//!   (stretches of several consecutive packets lost, rather than
//!   independent coin flips).
//! * **Fast (Rayleigh-style) fading** — per-frame multipath variation,
//!   modelled as an independent exponential power gain per frame.

use serde::{Deserialize, Serialize};
use sim_core::StreamRng;

/// A per-frame fading model, expressed as a random extra gain in dB
/// (negative values are fades).
pub trait FadingModel: std::fmt::Debug {
    /// Samples the fading gain in dB for one frame.
    fn sample_db(&self, rng: &mut StreamRng) -> f64;
}

/// The absence of fast fading.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoFading;

impl FadingModel for NoFading {
    fn sample_db(&self, _rng: &mut StreamRng) -> f64 {
        0.0
    }
}

/// Rayleigh-style fast fading: the power gain is exponentially distributed
/// with unit mean, i.e. `gain_db = 10 log10(Exp(1))`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RayleighFading;

impl FadingModel for RayleighFading {
    fn sample_db(&self, rng: &mut StreamRng) -> f64 {
        let gain = rng.exponential(1.0).max(1e-6);
        10.0 * gain.log10()
    }
}

/// Rician fast fading: a dominant line-of-sight component of relative power
/// `K` plus scattered multipath. The larger `K`, the shallower the fades; a
/// street-canyon link with the AP in view is typically K ≈ 4–8 dB, which is
/// what keeps mid-coverage losses in the paper's testbed at the 20–30 % level
/// rather than the 50 %+ a pure Rayleigh channel would produce.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RicianFading {
    /// The K factor in dB (ratio of line-of-sight to scattered power).
    pub k_db: f64,
}

impl RicianFading {
    /// Creates a Rician fading model with the given K factor in dB.
    pub fn new(k_db: f64) -> Self {
        RicianFading { k_db }
    }
}

impl FadingModel for RicianFading {
    fn sample_db(&self, rng: &mut StreamRng) -> f64 {
        let k = 10f64.powf(self.k_db / 10.0);
        // Complex gain = LOS component + scattered component, normalised so
        // that the mean power is 1: E[|h|^2] = K/(K+1) + 1/(K+1) = 1.
        let los = (k / (k + 1.0)).sqrt();
        let sigma = (1.0 / (2.0 * (k + 1.0))).sqrt();
        let re = los + sigma * rng.standard_normal();
        let im = sigma * rng.standard_normal();
        let power = (re * re + im * im).max(1e-9);
        10.0 * power.log10()
    }
}

/// Selects the per-frame fast-fading model of a channel configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum FadingKind {
    /// No fast fading (deterministic channel apart from shadowing).
    None,
    /// Rayleigh fading — rich scattering, no line-of-sight component.
    #[default]
    Rayleigh,
    /// Rician fading — a line-of-sight component of `k_db` dB over the
    /// scattered power, typical of street-canyon links with the AP in view.
    Rician {
        /// The K factor in dB.
        k_db: f64,
    },
}

impl FadingKind {
    /// Samples the per-frame fading gain in dB.
    pub fn sample_db(&self, rng: &mut StreamRng) -> f64 {
        match self {
            FadingKind::None => NoFading.sample_db(rng),
            FadingKind::Rayleigh => RayleighFading.sample_db(rng),
            FadingKind::Rician { k_db } => RicianFading::new(*k_db).sample_db(rng),
        }
    }
}

/// Spatially correlated log-normal shadowing.
///
/// The shadowing value is a Gauss–Markov (AR(1)) process indexed by the
/// distance the receiver has travelled: moving `decorrelation_m` metres
/// decorrelates the process to `1/e`.
///
/// # Examples
///
/// ```
/// use sim_core::StreamRng;
/// use vanet_radio::Shadowing;
///
/// let mut rng = StreamRng::derive(3, "shadowing");
/// let mut sh = Shadowing::new(6.0, 20.0);
/// let a = sh.sample_at(0.0, &mut rng);
/// let b = sh.sample_at(0.5, &mut rng);   // half a metre later: nearly identical
/// let c = sh.sample_at(500.0, &mut rng); // far away: essentially independent
/// assert!((a - b).abs() < 2.0);
/// let _ = c;
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Shadowing {
    /// Standard deviation of the shadowing in dB.
    pub sigma_db: f64,
    /// Decorrelation distance in metres.
    pub decorrelation_m: f64,
    state: Option<(f64, f64)>,
}

impl Shadowing {
    /// Creates a shadowing process with the given standard deviation (dB) and
    /// decorrelation distance (metres).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is negative or `decorrelation_m` is not positive.
    pub fn new(sigma_db: f64, decorrelation_m: f64) -> Self {
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        assert!(decorrelation_m > 0.0, "decorrelation distance must be positive");
        Shadowing { sigma_db, decorrelation_m, state: None }
    }

    /// Typical urban street shadowing: σ = 6 dB, 20 m decorrelation.
    pub fn urban() -> Self {
        Shadowing::new(6.0, 20.0)
    }

    /// Open highway shadowing: σ = 3 dB, 50 m decorrelation.
    pub fn highway() -> Self {
        Shadowing::new(3.0, 50.0)
    }

    /// Samples the shadowing value (dB) at a receiver that has travelled
    /// `position_m` metres along its trajectory. Calls must be made with
    /// non-decreasing positions for the correlation structure to be exact;
    /// out-of-order calls fall back to treating the step as its absolute
    /// distance.
    pub fn sample_at(&mut self, position_m: f64, rng: &mut StreamRng) -> f64 {
        match self.state {
            None => {
                let v = rng.normal(0.0, self.sigma_db);
                self.state = Some((position_m, v));
                v
            }
            Some((last_pos, last_val)) => {
                let step = (position_m - last_pos).abs();
                let rho = (-step / self.decorrelation_m).exp();
                let innovation_sigma = self.sigma_db * (1.0 - rho * rho).sqrt();
                let v = rho * last_val + rng.normal(0.0, innovation_sigma);
                self.state = Some((position_m, v));
                v
            }
        }
    }

    /// Forgets the process state (e.g. between experiment rounds).
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fading_is_zero() {
        let mut rng = StreamRng::derive(1, "nf");
        assert_eq!(NoFading.sample_db(&mut rng), 0.0);
    }

    #[test]
    fn rayleigh_mean_power_is_about_unity() {
        let mut rng = StreamRng::derive(2, "ray");
        let n = 20_000;
        let mean_power: f64 =
            (0..n).map(|_| 10f64.powf(RayleighFading.sample_db(&mut rng) / 10.0)).sum::<f64>()
                / n as f64;
        assert!((mean_power - 1.0).abs() < 0.05, "mean power {mean_power}");
        // Deep fades must exist.
        let deep = (0..n).filter(|_| RayleighFading.sample_db(&mut rng) < -10.0).count();
        assert!(deep > 0);
    }

    #[test]
    fn rician_mean_power_is_unity_and_fades_are_shallower_than_rayleigh() {
        let mut rng = StreamRng::derive(12, "rice");
        let rice = RicianFading::new(6.0);
        let n = 20_000;
        let mean_power: f64 =
            (0..n).map(|_| 10f64.powf(rice.sample_db(&mut rng) / 10.0)).sum::<f64>() / n as f64;
        assert!((mean_power - 1.0).abs() < 0.05, "mean power {mean_power}");
        let deep_rice = (0..n).filter(|_| rice.sample_db(&mut rng) < -10.0).count();
        let deep_rayleigh = (0..n).filter(|_| RayleighFading.sample_db(&mut rng) < -10.0).count();
        assert!(
            deep_rice * 4 < deep_rayleigh,
            "Rician K=6 dB must fade far less often ({deep_rice} vs {deep_rayleigh})"
        );
    }

    #[test]
    fn higher_k_means_shallower_fades() {
        let mut rng = StreamRng::derive(13, "rice-k");
        let n = 10_000;
        let deep = |k_db: f64, rng: &mut StreamRng| {
            let model = RicianFading::new(k_db);
            (0..n).filter(|_| model.sample_db(rng) < -6.0).count()
        };
        let low_k = deep(0.0, &mut rng);
        let high_k = deep(10.0, &mut rng);
        assert!(high_k < low_k, "K=10 dB ({high_k}) must fade less than K=0 dB ({low_k})");
    }

    #[test]
    fn shadowing_is_spatially_coherent() {
        let mut rng = StreamRng::derive(3, "sh");
        let mut sh = Shadowing::new(8.0, 20.0);
        // Correlation between consecutive samples 1 m apart should be high;
        // estimate it over a long walk.
        let mut prev = sh.sample_at(0.0, &mut rng);
        let mut num = 0.0;
        let mut den_a = 0.0;
        let mut den_b = 0.0;
        for i in 1..5_000 {
            let cur = sh.sample_at(i as f64, &mut rng);
            num += prev * cur;
            den_a += prev * prev;
            den_b += cur * cur;
            prev = cur;
        }
        let corr = num / (den_a.sqrt() * den_b.sqrt());
        assert!(corr > 0.85, "1 m correlation {corr}");
    }

    #[test]
    fn shadowing_long_run_variance_matches_sigma() {
        let mut rng = StreamRng::derive(4, "shvar");
        let mut sh = Shadowing::new(6.0, 10.0);
        // Sample every 100 m so draws are nearly independent.
        let n = 5_000;
        let draws: Vec<f64> = (0..n).map(|i| sh.sample_at(i as f64 * 100.0, &mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var.sqrt() - 6.0).abs() < 0.5, "sigma {}", var.sqrt());
    }

    #[test]
    fn reset_forgets_state() {
        let mut rng = StreamRng::derive(5, "reset");
        let mut sh = Shadowing::urban();
        let _ = sh.sample_at(0.0, &mut rng);
        sh.reset();
        assert_eq!(sh.state, None);
        let _ = sh.sample_at(1_000.0, &mut rng);
        assert!(sh.state.is_some());
    }

    #[test]
    #[should_panic(expected = "decorrelation")]
    fn zero_decorrelation_rejected() {
        let _ = Shadowing::new(3.0, 0.0);
    }

    #[test]
    fn presets_have_expected_ordering() {
        assert!(Shadowing::urban().sigma_db > Shadowing::highway().sigma_db);
    }
}
