//! The `VANETGEN1` scenario file: a generated scenario's identity, on disk.
//!
//! The file stores **only** the identity — generator name, gen seed, and
//! the canonical parameter vector — never the blueprint. Decoding
//! regenerates the world from scratch, which is what makes the format
//! future-proof against blueprint layout changes and keeps files tiny
//! (a campaign of thousands of scenarios is a few hundred kilobytes).
//!
//! The layout follows the `VANETFLEET1` shard files: a magic line, ordered
//! `key=value` headers, then one `param=` line per resolved parameter in
//! schema declaration order:
//!
//! ```text
//! VANETGEN1
//! generator=grid-city
//! gen_seed=0x0000000000000007
//! param=ap_rate_pps=f4014000000000000
//! param=n_cars=i2
//! ...
//! ```
//!
//! [`encode`] ∘ [`decode`] is the identity on well-formed files, and
//! [`decode`] ∘ [`encode`] regenerates the exact same scenario (same name,
//! same blueprint, same cache keys) — both properties are tested below.

use crate::generators;
use crate::params::{GenError, GenValue};
use crate::scenario::{instantiate_with, GenIdentity, GeneratedScenario};

/// First line of every generated-scenario file; bump on layout changes.
pub const GEN_MAGIC: &str = "VANETGEN1";

fn parse_error(line: usize, message: impl Into<String>) -> GenError {
    GenError::Parse { line, message: message.into() }
}

/// Renders a generated scenario's identity as a `VANETGEN1` file.
///
/// The rendering is a pure function of the identity: same `(generator,
/// params, seed)` → byte-identical file, on any platform, at any time.
pub fn encode(identity: &GenIdentity) -> String {
    let mut out = String::new();
    out.push_str(GEN_MAGIC);
    out.push('\n');
    out.push_str(&format!("generator={}\n", identity.generator));
    out.push_str(&format!("gen_seed={:#018x}\n", identity.seed));
    for (key, value) in identity.params.assignments() {
        out.push_str(&format!("param={key}={}\n", value.canonical()));
    }
    out
}

/// Parses a `VANETGEN1` file and regenerates the scenario it names.
///
/// Unassigned parameters take their schema defaults (resolution is what
/// defines the identity, so a hand-trimmed file and a full one naming the
/// same values decode to the same scenario). Unknown generators, unknown or
/// duplicated parameters, malformed canonical values and header violations
/// are all rejected with the 1-based line number.
///
/// # Errors
///
/// [`GenError::Parse`] describing the first offending line.
pub fn decode(text: &str) -> Result<GeneratedScenario, GenError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));

    let (line, magic) = lines.next().ok_or_else(|| parse_error(1, "empty file"))?;
    if magic != GEN_MAGIC {
        return Err(parse_error(line, format!("expected magic `{GEN_MAGIC}`, found `{magic}`")));
    }

    let mut generator = None;
    let mut seed = None;
    let mut assignments: Vec<(String, GenValue)> = Vec::new();

    for (line, text) in lines {
        if text.is_empty() {
            continue;
        }
        let (key, value) = text
            .split_once('=')
            .ok_or_else(|| parse_error(line, format!("expected `key=value`, found `{text}`")))?;
        match key {
            "generator" => {
                if generator.is_some() {
                    return Err(parse_error(line, "duplicate `generator` header"));
                }
                let found = generators::find(value)
                    .ok_or_else(|| parse_error(line, format!("unknown generator `{value}`")))?;
                generator = Some(found);
            }
            "gen_seed" => {
                if seed.is_some() {
                    return Err(parse_error(line, "duplicate `gen_seed` header"));
                }
                let hex = value.strip_prefix("0x").ok_or_else(|| {
                    parse_error(line, format!("gen_seed must be 0x-prefixed hex, found `{value}`"))
                })?;
                let parsed = u64::from_str_radix(hex, 16).map_err(|_| {
                    parse_error(line, format!("gen_seed must be 0x-prefixed hex, found `{value}`"))
                })?;
                seed = Some(parsed);
            }
            "param" => {
                let generator = generator.as_ref().ok_or_else(|| {
                    parse_error(line, "`param` lines must follow the `generator` header")
                })?;
                let (pkey, ptext) = value.split_once('=').ok_or_else(|| {
                    parse_error(line, format!("expected `param=key=value`, found `{text}`"))
                })?;
                let parsed = generator
                    .schema()
                    .parse_canonical_value(pkey, ptext)
                    .map_err(|e| parse_error(line, e.to_string()))?;
                if assignments.iter().any(|(k, _)| k == pkey) {
                    return Err(parse_error(line, format!("parameter `{pkey}` assigned twice")));
                }
                assignments.push((pkey.to_string(), parsed));
            }
            _ => return Err(parse_error(line, format!("unknown header `{key}`"))),
        }
    }

    let generator = generator.ok_or_else(|| parse_error(1, "missing `generator` header"))?;
    let seed = seed.ok_or_else(|| parse_error(1, "missing `gen_seed` header"))?;
    instantiate_with(&generator, &assignments, seed).map_err(|e| parse_error(1, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::instantiate;
    use vanet_scenarios::Scenario as _;

    fn sample() -> GeneratedScenario {
        instantiate(
            "highway-flow",
            &[
                ("road_length_m".to_string(), GenValue::Float(300.0)),
                ("n_cars".to_string(), GenValue::Int(2)),
                ("bidirectional".to_string(), GenValue::Bool(false)),
            ],
            0x5eed,
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_round_trips_bit_for_bit() {
        let scenario = sample();
        let text = encode(scenario.identity());
        assert!(text.starts_with("VANETGEN1\ngenerator=highway-flow\ngen_seed=0x"), "{text}");
        let decoded = decode(&text).unwrap();
        assert_eq!(decoded.name(), scenario.name());
        assert_eq!(decoded.identity(), scenario.identity());
        assert_eq!(decoded.blueprint(), scenario.blueprint());
        // Re-encoding the decoded scenario reproduces the file exactly.
        assert_eq!(encode(decoded.identity()), text);
    }

    #[test]
    fn partial_files_resolve_defaults_to_the_same_identity() {
        let scenario = sample();
        // A hand-written file naming only the non-default parameters.
        let trimmed = format!(
            "VANETGEN1\ngenerator=highway-flow\ngen_seed={:#018x}\n\
             param=road_length_m=f{:016x}\nparam=n_cars=i2\nparam=bidirectional=b0\n",
            0x5eed_u64,
            300.0f64.to_bits()
        );
        let decoded = decode(&trimmed).unwrap();
        assert_eq!(decoded.name(), scenario.name(), "defaults are part of the identity");
    }

    #[test]
    fn blank_lines_and_whitespace_are_tolerated() {
        let text = encode(sample().identity()).replace('\n', "\n\n");
        let padded: String = text.lines().map(|l| format!("  {l}  \n")).collect();
        assert_eq!(decode(&padded).unwrap().name(), sample().name());
    }

    #[test]
    fn decode_rejects_malformed_files() {
        let good = encode(sample().identity());
        let cases: Vec<(String, &str)> = vec![
            (String::new(), "empty file"),
            (good.replacen("VANETGEN1", "VANETGEN9", 1), "expected magic"),
            (
                good.replacen("generator=highway-flow", "generator=mars-rover", 1),
                "unknown generator",
            ),
            (good.replacen("gen_seed=0x", "gen_seed=", 1), "0x-prefixed hex"),
            (good.replacen("gen_seed=0x", "gen_seed=0xzz", 1), "0x-prefixed hex"),
            (format!("{good}generator=highway-flow\n"), "duplicate `generator`"),
            (format!("{good}gen_seed=0x0000000000000001\n"), "duplicate `gen_seed`"),
            (good.replacen("param=road_length_m=", "param=warp_factor=", 1), "no parameter"),
            (good.replacen("param=n_cars=i2", "param=n_cars=i2\nparam=n_cars=i2", 1), "twice"),
            (good.replacen("param=n_cars=i2", "param=n_cars=b1", 1), "expects"),
            (good.replacen("param=n_cars=i2", "param=n_cars=i999", 1), "must be in"),
            (good.replacen("param=n_cars=i2", "param=n_cars=banana", 1), "not a valid value"),
            (good.replacen("param=n_cars=i2", "param=n_cars", 1), "param=key=value"),
            (format!("{good}horizon=12\n"), "unknown header `horizon`"),
            (good.replacen("VANETGEN1\n", "VANETGEN1\nparam=n_cars=i2\n", 1), "must follow"),
            ("VANETGEN1\ngen_seed=0x0000000000000001\n".to_string(), "missing `generator`"),
            ("VANETGEN1\ngenerator=highway-flow\n".to_string(), "missing `gen_seed`"),
            (good.replacen("param=n_cars=i2", "just some text", 1), "key=value"),
        ];
        for (text, needle) in cases {
            let err = decode(&text).expect_err(&format!("accepted malformed file:\n{text}"));
            let message = err.to_string();
            assert!(
                message.contains(needle),
                "error `{message}` does not mention `{needle}` for:\n{text}"
            );
            assert!(matches!(err, GenError::Parse { .. }), "{err:?}");
        }
    }

    #[test]
    fn decode_reports_line_numbers() {
        let good = encode(sample().identity());
        let bad = good.replacen("param=n_cars=i2", "param=n_cars=i999", 1);
        let GenError::Parse { line, .. } = decode(&bad).unwrap_err() else {
            panic!("expected a parse error")
        };
        // Header is 3 lines; n_cars is the 2nd declared parameter.
        assert_eq!(line, 5, "line number should point at the offending param line");
    }
}
