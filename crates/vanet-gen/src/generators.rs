//! The generator catalogue: named, schema-checked world builders.
//!
//! Each [`Generator`] couples a [`GenSchema`] with a pure build function
//! `(resolved params, gen seed) → Blueprint`. All sampling happens inside
//! the build function from streams derived off the gen seed, so the same
//! `(generator, params, seed)` triple always freezes the same world — the
//! property `carq-cli gen` and the campaign layer rely on to regenerate any
//! scenario from its identity alone.

use rand::Rng;
use sim_core::{SimTime, StreamRng};
use vanet_geo::{kmh_to_ms, Point, Polyline};
use vanet_mac::MediumConfig;
use vanet_radio::{Building, ObstacleMap};

use crate::blueprint::{Blueprint, CarPlan};
use crate::params::{GenParamSpec, GenSchema, ResolvedParams};

/// A named scenario generator.
#[derive(Clone)]
pub struct Generator {
    /// The catalogue name (`grid-city`, `highway-flow`, `platoon-merge`).
    pub name: &'static str,
    /// One-line description for `carq-cli gen list`.
    pub description: &'static str,
    schema: GenSchema,
    build: fn(&ResolvedParams, u64) -> Blueprint,
}

impl std::fmt::Debug for Generator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Generator").field("name", &self.name).finish()
    }
}

impl Generator {
    /// The generator's parameter schema.
    pub fn schema(&self) -> &GenSchema {
        &self.schema
    }

    /// Freezes the world for `params` at `seed`. The result is a pure
    /// function of the inputs ([`Blueprint`]-level determinism is pinned by
    /// tests and the emit-twice CI check).
    pub fn blueprint(&self, params: &ResolvedParams, seed: u64) -> Blueprint {
        let blueprint = (self.build)(params, seed);
        blueprint.validate();
        blueprint
    }
}

/// Lookup is forgiving about separators and case, mirroring the scenario
/// registry (`grid-city`, `grid_city` and `GridCity` all resolve).
fn normalize(name: &str) -> String {
    name.chars().filter(|c| *c != '-' && *c != '_').flat_map(char::to_lowercase).collect()
}

/// Every generator in the catalogue, in presentation order.
pub fn all() -> Vec<Generator> {
    vec![grid_city(), highway_flow(), platoon_merge()]
}

/// Finds a generator by name (separator- and case-insensitive).
pub fn find(name: &str) -> Option<Generator> {
    let wanted = normalize(name);
    all().into_iter().find(|g| normalize(g.name) == wanted)
}

/// Shared load/traffic parameters every generator exposes.
fn load_specs(default_rate: f64) -> Vec<GenParamSpec> {
    vec![
        GenParamSpec::float(
            "ap_rate_pps",
            "AP sending rate per car (packets/s)",
            default_rate,
            0.1,
            50.0,
        ),
        GenParamSpec::int("payload_bytes", "payload per data packet in bytes", 300, 1, 65_535),
        GenParamSpec::int("rounds", "default round budget of the generated scenario", 2, 1, 1_000),
    ]
}

// ---------------------------------------------------------------------------
// grid-city: a street grid with random-waypoint walks and placed APs.
// ---------------------------------------------------------------------------

fn grid_city() -> Generator {
    let mut specs = vec![
        GenParamSpec::int("blocks_x", "city blocks along x", 2, 1, 6),
        GenParamSpec::int("blocks_y", "city blocks along y", 2, 1, 6),
        GenParamSpec::float("block_m", "block edge length in metres", 80.0, 40.0, 400.0),
        GenParamSpec::int("n_cars", "cars walking the street graph", 2, 1, 8),
        GenParamSpec::float("speed_kmh", "car cruise speed in km/h", 25.0, 5.0, 100.0),
        GenParamSpec::float("walk_m", "random-waypoint walk length per car", 300.0, 100.0, 5_000.0),
        GenParamSpec::choice(
            "ap_placement",
            "where the APs stand on the grid",
            "center",
            &["center", "corner", "perimeter"],
        ),
        GenParamSpec::int("n_aps", "number of access points", 1, 1, 4),
    ];
    specs.extend(load_specs(5.0));
    Generator {
        name: "grid-city",
        description: "street-grid city: random-waypoint walks past strategically placed APs, \
                      buildings shadowing every cross-block link",
        schema: GenSchema::new("grid-city", specs),
        build: build_grid_city,
    }
}

/// One random-waypoint walk over the grid's intersections, frozen as an
/// open polyline of at least `walk_m` metres. The walk never immediately
/// backtracks unless it is cornered.
fn grid_walk(
    blocks_x: u64,
    blocks_y: u64,
    block_m: f64,
    walk_m: f64,
    rng: &mut StreamRng,
) -> Polyline {
    let nx = blocks_x as i64;
    let ny = blocks_y as i64;
    let mut at = (rng.gen_range(0..nx + 1), rng.gen_range(0..ny + 1));
    let mut came_from: Option<(i64, i64)> = None;
    let mut vertices = vec![Point::new(at.0 as f64 * block_m, at.1 as f64 * block_m)];
    let mut walked = 0.0;
    while walked < walk_m {
        let candidates: Vec<(i64, i64)> = [(1, 0), (-1, 0), (0, 1), (0, -1)]
            .iter()
            .map(|(dx, dy)| (at.0 + dx, at.1 + dy))
            .filter(|(x, y)| (0..=nx).contains(x) && (0..=ny).contains(y))
            .filter(|next| Some(*next) != came_from)
            .collect();
        let next = candidates[rng.gen_range(0..candidates.len())];
        came_from = Some(at);
        at = next;
        vertices.push(Point::new(at.0 as f64 * block_m, at.1 as f64 * block_m));
        walked += block_m;
    }
    Polyline::open(vertices)
}

fn build_grid_city(params: &ResolvedParams, seed: u64) -> Blueprint {
    let blocks_x = params.u64("blocks_x");
    let blocks_y = params.u64("blocks_y");
    let block_m = params.f64("block_m");
    let n_cars = params.u64("n_cars") as usize;
    let speed_ms = kmh_to_ms(params.f64("speed_kmh"));
    let walk_m = params.f64("walk_m");
    let n_aps = params.u64("n_aps") as usize;
    let width = blocks_x as f64 * block_m;
    let height = blocks_y as f64 * block_m;

    // Every block's interior is a building that shadows cross-block links,
    // the same urban geometry trick as the hand-written testbed; the inset
    // keeps the streets themselves clear.
    let inset = (block_m * 0.08).min(8.0);
    let buildings: Vec<Building> = (0..blocks_x)
        .flat_map(|i| {
            (0..blocks_y).map(move |j| {
                let min = Point::new(i as f64 * block_m + inset, j as f64 * block_m + inset);
                let max =
                    Point::new((i + 1) as f64 * block_m - inset, (j + 1) as f64 * block_m - inset);
                Building::new(min, max, 30.0)
            })
        })
        .collect();
    let obstacles = ObstacleMap::from_buildings(buildings);
    let mut medium = MediumConfig::urban_testbed();
    medium.ap_vehicle.obstacles = obstacles.clone();
    medium.vehicle_vehicle.obstacles = obstacles;

    let ap_positions: Vec<Point> = match params.choice("ap_placement") {
        // Spread along the middle horizontal street, snapped to
        // intersections so the APs stand on the street grid.
        "center" => {
            let mid_y = blocks_y.div_ceil(2) as f64 * block_m;
            (0..n_aps)
                .map(|i| {
                    let frac = (i + 1) as f64 / (n_aps + 1) as f64;
                    let snapped = (frac * blocks_x as f64).round() * block_m;
                    Point::new(snapped.clamp(0.0, width), mid_y)
                })
                .collect()
        }
        "corner" => {
            let corners = [
                Point::new(0.0, 0.0),
                Point::new(width, height),
                Point::new(width, 0.0),
                Point::new(0.0, height),
            ];
            (0..n_aps).map(|i| corners[i % corners.len()]).collect()
        }
        "perimeter" => {
            let perimeter = Polyline::closed(vec![
                Point::new(0.0, 0.0),
                Point::new(width, 0.0),
                Point::new(width, height),
                Point::new(0.0, height),
            ]);
            let length = perimeter.length();
            (0..n_aps).map(|i| perimeter.point_at(length * i as f64 / n_aps as f64)).collect()
        }
        other => unreachable!("schema admits no placement `{other}`"),
    };

    let rng = StreamRng::derive(seed, "gen/grid-city");
    let cars = (0..n_cars)
        .map(|i| {
            let mut walk_rng = rng.substream(i as u64 + 1);
            CarPlan {
                path: grid_walk(blocks_x, blocks_y, block_m, walk_m, &mut walk_rng),
                speed_ms,
                start_offset_m: 0.0,
                start_time: SimTime::ZERO,
            }
        })
        .collect();

    Blueprint {
        cars,
        ap_positions,
        medium,
        ap_rate_pps: params.f64("ap_rate_pps"),
        payload_bytes: params.u64("payload_bytes").min(65_535) as u32,
        horizon: SimTime::from_secs_f64(walk_m / speed_ms + 10.0),
        rounds_default: params.u64("rounds").min(1_000) as u32,
    }
}

// ---------------------------------------------------------------------------
// highway-flow: a linear highway with (optionally) bidirectional traffic.
// ---------------------------------------------------------------------------

fn highway_flow() -> Generator {
    let mut specs = vec![
        GenParamSpec::float("road_length_m", "highway segment length", 600.0, 200.0, 10_000.0),
        GenParamSpec::int("n_cars", "cars per direction", 2, 1, 8),
        GenParamSpec::bool("bidirectional", "run an opposing flow on the second lane", true),
        GenParamSpec::float("speed_kmh", "nominal cruise speed in km/h", 80.0, 20.0, 200.0),
        GenParamSpec::float(
            "speed_jitter",
            "per-car speed jitter as a fraction of nominal",
            0.05,
            0.0,
            0.3,
        ),
        GenParamSpec::float("headway_m", "gap between successive cars", 25.0, 5.0, 100.0),
        GenParamSpec::float(
            "ap_spacing_m",
            "distance between roadside APs",
            400.0,
            100.0,
            10_000.0,
        ),
    ];
    specs.extend(load_specs(5.0));
    Generator {
        name: "highway-flow",
        description: "linear highway: platooned flows (optionally bidirectional, the paper's \
                      opposite-direction cooperation) past roadside APs",
        schema: GenSchema::new("highway-flow", specs),
        build: build_highway_flow,
    }
}

fn build_highway_flow(params: &ResolvedParams, seed: u64) -> Blueprint {
    let length = params.f64("road_length_m");
    let n_cars = params.u64("n_cars") as usize;
    let bidirectional = params.bool("bidirectional");
    let speed_ms = kmh_to_ms(params.f64("speed_kmh"));
    let jitter = params.f64("speed_jitter");
    let headway = params.f64("headway_m");
    let spacing = params.f64("ap_spacing_m");

    let forward = Polyline::open(vec![Point::new(0.0, 0.0), Point::new(length, 0.0)]);
    let reverse = Polyline::open(vec![Point::new(length, 4.0), Point::new(0.0, 4.0)]);

    let rng = StreamRng::derive(seed, "gen/highway-flow");
    let mut cars = Vec::new();
    let directions: &[Polyline] = if bidirectional { &[forward, reverse] } else { &[forward] };
    for (d, path) in directions.iter().enumerate() {
        for i in 0..n_cars {
            let mut car_rng = rng.substream((d * n_cars + i) as u64 + 1);
            let factor = 1.0 + jitter * (car_rng.gen_range(-1.0..1.0));
            cars.push(CarPlan {
                path: path.clone(),
                speed_ms: speed_ms * factor,
                start_offset_m: -(i as f64) * headway,
                start_time: SimTime::ZERO,
            });
        }
    }

    // Roadside APs every `spacing` metres, starting half a gap in, standing
    // 10 m off the carriageway.
    let mut ap_positions = Vec::new();
    let mut x = spacing / 2.0;
    while x < length && ap_positions.len() < 16 {
        ap_positions.push(Point::new(x, 10.0));
        x += spacing;
    }
    if ap_positions.is_empty() {
        ap_positions.push(Point::new(length / 2.0, 10.0));
    }

    // The slowest jittered car still has to clear the segment plus its
    // platoon offset before the horizon cuts the pass.
    let slowest = speed_ms * (1.0 - jitter).max(0.1);
    let horizon = (length + n_cars as f64 * headway) / slowest + 15.0;
    Blueprint {
        cars,
        ap_positions,
        medium: MediumConfig::highway(),
        ap_rate_pps: params.f64("ap_rate_pps"),
        payload_bytes: params.u64("payload_bytes").min(65_535) as u32,
        horizon: SimTime::from_secs_f64(horizon),
        rounds_default: params.u64("rounds").min(1_000) as u32,
    }
}

// ---------------------------------------------------------------------------
// platoon-merge: two feeder roads joining into a shared tail at an AP.
// ---------------------------------------------------------------------------

fn platoon_merge() -> Generator {
    let mut specs = vec![
        GenParamSpec::float(
            "feeder_m",
            "feeder road length before the merge",
            300.0,
            100.0,
            2_000.0,
        ),
        GenParamSpec::float("tail_m", "shared road length after the merge", 400.0, 100.0, 3_000.0),
        GenParamSpec::int("n_main", "cars on the main feeder", 2, 1, 6),
        GenParamSpec::int("n_ramp", "cars on the merging ramp", 1, 1, 6),
        GenParamSpec::float("speed_kmh", "cruise speed in km/h", 50.0, 10.0, 150.0),
        GenParamSpec::float("headway_m", "gap between successive cars", 20.0, 5.0, 100.0),
        GenParamSpec::float(
            "merge_gap_s",
            "how long after the main platoon the ramp flow starts",
            2.0,
            0.0,
            30.0,
        ),
    ];
    specs.extend(load_specs(5.0));
    Generator {
        name: "platoon-merge",
        description: "two platoons merging onto a shared road at an AP: cooperation across \
                      freshly merged neighbours",
        schema: GenSchema::new("platoon-merge", specs),
        build: build_platoon_merge,
    }
}

fn build_platoon_merge(params: &ResolvedParams, _seed: u64) -> Blueprint {
    let feeder = params.f64("feeder_m");
    let tail = params.f64("tail_m");
    let n_main = params.u64("n_main") as usize;
    let n_ramp = params.u64("n_ramp") as usize;
    let speed_ms = kmh_to_ms(params.f64("speed_kmh"));
    let headway = params.f64("headway_m");
    let merge_gap = params.f64("merge_gap_s");

    let main_path =
        Polyline::open(vec![Point::new(-feeder, 0.0), Point::new(0.0, 0.0), Point::new(tail, 0.0)]);
    // The ramp approaches at ~30 degrees and joins the same tail.
    let ramp_path = Polyline::open(vec![
        Point::new(-0.866 * feeder, -0.5 * feeder),
        Point::new(0.0, 0.0),
        Point::new(tail, 0.0),
    ]);

    let mut cars = Vec::new();
    for i in 0..n_main {
        cars.push(CarPlan {
            path: main_path.clone(),
            speed_ms,
            start_offset_m: -(i as f64) * headway,
            start_time: SimTime::ZERO,
        });
    }
    for i in 0..n_ramp {
        cars.push(CarPlan {
            path: ramp_path.clone(),
            speed_ms,
            start_offset_m: -(i as f64) * headway,
            start_time: SimTime::from_secs_f64(merge_gap),
        });
    }

    let horizon =
        (feeder + tail + (n_main.max(n_ramp) as f64) * headway) / speed_ms + merge_gap + 15.0;
    Blueprint {
        cars,
        ap_positions: vec![Point::new(0.0, 12.0)],
        medium: MediumConfig::highway(),
        ap_rate_pps: params.f64("ap_rate_pps"),
        payload_bytes: params.u64("payload_bytes").min(65_535) as u32,
        horizon: SimTime::from_secs_f64(horizon),
        rounds_default: params.u64("rounds").min(1_000) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_lists_three_generators_with_schemas() {
        let generators = all();
        let names: Vec<&str> = generators.iter().map(|g| g.name).collect();
        assert_eq!(names, vec!["grid-city", "highway-flow", "platoon-merge"]);
        for g in &generators {
            assert!(!g.description.is_empty());
            assert_eq!(g.schema().generator(), g.name);
            assert!(g.schema().params().len() >= 5, "{} schema too small", g.name);
        }
    }

    #[test]
    fn lookup_ignores_separators_and_case() {
        for alias in ["grid-city", "grid_city", "GRIDCITY"] {
            assert_eq!(find(alias).map(|g| g.name), Some("grid-city"), "{alias}");
        }
        assert!(find("mars-rover").is_none());
    }

    #[test]
    fn blueprints_are_pure_functions_of_params_and_seed() {
        for g in all() {
            let params = g.schema().resolve(&[]).unwrap();
            let a = g.blueprint(&params, 42);
            let b = g.blueprint(&params, 42);
            assert_eq!(a.cars.len(), b.cars.len(), "{}", g.name);
            for (ca, cb) in a.cars.iter().zip(&b.cars) {
                assert_eq!(ca.path.vertices(), cb.path.vertices(), "{}", g.name);
                assert_eq!(ca.speed_ms, cb.speed_ms, "{}", g.name);
                assert_eq!(ca.start_offset_m, cb.start_offset_m, "{}", g.name);
                assert_eq!(ca.start_time, cb.start_time, "{}", g.name);
            }
            assert_eq!(a.ap_positions, b.ap_positions, "{}", g.name);
            assert_eq!(a.horizon, b.horizon, "{}", g.name);
        }
    }

    #[test]
    fn grid_city_seed_varies_the_walks() {
        let g = find("grid-city").unwrap();
        let params = g.schema().resolve(&[]).unwrap();
        let a = g.blueprint(&params, 1);
        let b = g.blueprint(&params, 2);
        assert_ne!(
            a.cars[0].path.vertices(),
            b.cars[0].path.vertices(),
            "different seeds must walk different streets"
        );
        // Walks stay on the street grid and reach the requested length.
        let block = params.f64("block_m");
        for v in a.cars[0].path.vertices() {
            assert!((v.x / block).fract().abs() < 1e-9, "off-grid vertex {v:?}");
            assert!((v.y / block).fract().abs() < 1e-9, "off-grid vertex {v:?}");
        }
        assert!(a.cars[0].path.length() >= params.f64("walk_m"));
    }

    #[test]
    fn highway_flow_respects_direction_and_ap_spacing() {
        let g = find("highway-flow").unwrap();
        let one_way = g
            .schema()
            .resolve(&[
                ("bidirectional".to_string(), crate::GenValue::Bool(false)),
                ("road_length_m".to_string(), crate::GenValue::Float(1_000.0)),
                ("ap_spacing_m".to_string(), crate::GenValue::Float(250.0)),
            ])
            .unwrap();
        let bp = g.blueprint(&one_way, 7);
        assert_eq!(bp.cars.len(), 2, "one direction only");
        assert_eq!(bp.ap_positions.len(), 4, "1000 m at 250 m spacing");
        let two_way = g
            .schema()
            .resolve(&[("bidirectional".to_string(), crate::GenValue::Bool(true))])
            .unwrap();
        let bp = g.blueprint(&two_way, 7);
        assert_eq!(bp.cars.len(), 4, "both directions");
        // The reverse flow drives the opposite way.
        let first = bp.cars[0].path.vertices();
        let last = bp.cars[3].path.vertices();
        assert!(first[0].x < first[1].x && last[0].x > last[1].x);
    }

    #[test]
    fn platoon_merge_staggers_the_ramp_flow() {
        let g = find("platoon-merge").unwrap();
        let params = g.schema().resolve(&[]).unwrap();
        let bp = g.blueprint(&params, 3);
        assert_eq!(bp.cars.len(), 3, "2 main + 1 ramp by default");
        assert_eq!(bp.cars[0].start_time, SimTime::ZERO);
        assert!(bp.cars[2].start_time > SimTime::ZERO, "ramp starts later");
        // Both flows end on the same tail.
        let main_end = *bp.cars[0].path.vertices().last().unwrap();
        let ramp_end = *bp.cars[2].path.vertices().last().unwrap();
        assert_eq!(main_end, ramp_end);
    }
}
