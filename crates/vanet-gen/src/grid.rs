//! Grid expansion: one generator, a few value axes, thousands of scenarios.
//!
//! A [`GenGrid`] is the campaign front-end: it names a generator, gives
//! some of its parameters *lists* of values (every unlisted parameter keeps
//! its default), and optionally asks for seed replicas. Expansion takes the
//! cartesian product, derives each scenario's gen seed *from the campaign
//! master seed and the scenario's own canonical parameters* (see
//! [`scenario_seed`]), and instantiates the lot. Two consequences worth
//! spelling out:
//!
//! * the expansion order is deterministic (axis declaration order ×
//!   declaration order of values × replica index), so shard plans built
//!   over the expansion are stable;
//! * a scenario's identity does not depend on its position in the grid —
//!   growing the grid later, or re-expanding a subset, regenerates the
//!   exact same scenarios and therefore hits the exact same cache entries.

use sim_core::StreamRng;

use rand::RngCore as _;

use crate::generators::{self, Generator};
use crate::params::{GenError, GenValue};
use crate::scenario::{instantiate_with, GenIdentity, GeneratedScenario};

/// Derives the gen seed of one grid cell from the campaign master seed, the
/// cell's canonical parameter rendering and the replica index.
///
/// Seeding off the canonical parameters (not the grid position) is what
/// keeps identities stable under grid growth: adding an axis value later
/// changes other cells' positions but not their parameters, so their seeds
/// — and hence their identities and cache keys — stay put.
pub fn scenario_seed(master_seed: u64, canonical_params: &str, replica: u32) -> u64 {
    StreamRng::derive(master_seed, format!("gen.scenario/{canonical_params}#r{replica}")).next_u64()
}

/// A generator plus value axes: the declarative form of a campaign's
/// scenario population.
#[derive(Debug, Clone)]
pub struct GenGrid {
    generator: Generator,
    axes: Vec<(&'static str, Vec<GenValue>)>,
    replicas: u32,
}

impl GenGrid {
    /// Starts a grid over the named generator.
    ///
    /// # Errors
    ///
    /// [`GenError::UnknownGenerator`] if the name is not in the catalogue.
    pub fn new(generator: &str) -> Result<Self, GenError> {
        let generator = generators::find(generator)
            .ok_or_else(|| GenError::UnknownGenerator(generator.to_string()))?;
        Ok(GenGrid { generator, axes: Vec::new(), replicas: 1 })
    }

    /// The generator this grid expands.
    pub fn generator(&self) -> &Generator {
        &self.generator
    }

    /// Adds a value axis for `key`, parsing each comma-separated element in
    /// human form (`n_cars=1,2,4`). Repeated values are collapsed — every
    /// expanded scenario is distinct by construction.
    ///
    /// # Errors
    ///
    /// Unknown keys, unparsable or out-of-range elements, an empty list, or
    /// a key that already has an axis.
    pub fn axis(mut self, key: &str, csv: &str) -> Result<Self, GenError> {
        let spec_key = self
            .generator
            .schema()
            .params()
            .iter()
            .find(|s| s.key() == key)
            .map(|s| s.key())
            .ok_or_else(|| GenError::Unknown {
                generator: self.generator.name,
                key: key.to_string(),
            })?;
        let mut values = Vec::new();
        for element in csv.split(',') {
            let element = element.trim();
            if element.is_empty() {
                continue;
            }
            let value = self.generator.schema().parse_value(key, element)?;
            if !values.contains(&value) {
                values.push(value);
            }
        }
        if values.is_empty() {
            return Err(GenError::BadValue {
                generator: self.generator.name,
                key: key.to_string(),
                text: csv.to_string(),
            });
        }
        if self.axes.iter().any(|(k, _)| *k == spec_key) {
            return Err(GenError::Duplicate { generator: self.generator.name, key: spec_key });
        }
        self.axes.push((spec_key, values));
        Ok(self)
    }

    /// Expands every grid cell `n` times with independent gen seeds —
    /// the cheap way to populate a large campaign from a small grid.
    pub fn with_replicas(mut self, n: u32) -> Self {
        self.replicas = n.max(1);
        self
    }

    /// The number of scenarios this grid expands to.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product::<usize>() * self.replicas as usize
    }

    /// Whether the grid expands to nothing (never: an axis-less grid is the
    /// single all-defaults cell).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into identities, in deterministic order (cartesian
    /// product in axis declaration order, replicas innermost).
    ///
    /// # Errors
    ///
    /// Propagates schema resolution errors (unreachable for axes built
    /// through [`GenGrid::axis`], which validates eagerly).
    pub fn identities(&self, master_seed: u64) -> Result<Vec<GenIdentity>, GenError> {
        let mut out = Vec::with_capacity(self.len());
        let mut indices = vec![0usize; self.axes.len()];
        loop {
            let assignments: Vec<(String, GenValue)> = self
                .axes
                .iter()
                .zip(&indices)
                .map(|((key, values), i)| ((*key).to_string(), values[*i]))
                .collect();
            let params = self.generator.schema().resolve(&assignments)?;
            let canon = params.canonical();
            for replica in 0..self.replicas {
                out.push(GenIdentity {
                    generator: self.generator.name,
                    params: params.clone(),
                    seed: scenario_seed(master_seed, &canon, replica),
                });
            }
            // Odometer increment over the axes, last axis fastest.
            let mut axis = self.axes.len();
            loop {
                if axis == 0 {
                    return Ok(out);
                }
                axis -= 1;
                indices[axis] += 1;
                if indices[axis] < self.axes[axis].1.len() {
                    break;
                }
                indices[axis] = 0;
            }
        }
    }

    /// Expands the grid into instantiated scenarios (see
    /// [`GenGrid::identities`] for the ordering contract).
    ///
    /// # Errors
    ///
    /// As [`GenGrid::identities`].
    pub fn expand(&self, master_seed: u64) -> Result<Vec<GeneratedScenario>, GenError> {
        self.identities(master_seed)?
            .into_iter()
            .map(|id| instantiate_with(&self.generator, &owned(&id), id.seed))
            .collect()
    }
}

/// Re-keys an identity's resolved assignments into the owned form
/// `instantiate_with` takes.
fn owned(identity: &GenIdentity) -> Vec<(String, GenValue)> {
    identity.params.assignments().iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn grid() -> GenGrid {
        GenGrid::new("highway-flow")
            .unwrap()
            .axis("n_cars", "1,2")
            .unwrap()
            .axis("speed_kmh", "40, 80, 120")
            .unwrap()
    }

    #[test]
    fn expansion_is_a_deterministic_cartesian_product() {
        let g = grid();
        assert_eq!(g.len(), 6);
        let a = g.identities(9).unwrap();
        let b = g.identities(9).unwrap();
        assert_eq!(a, b, "expansion must be deterministic");
        assert_eq!(a.len(), 6);
        let distinct: BTreeSet<String> = a.iter().map(GenIdentity::canonical).collect();
        assert_eq!(distinct.len(), 6, "every cell is a distinct identity");
        // Last axis fastest: the first two cells differ in speed, not cars.
        assert_eq!(a[0].params.u64("n_cars"), a[1].params.u64("n_cars"));
        assert_ne!(a[0].params.f64("speed_kmh"), a[1].params.f64("speed_kmh"));
    }

    #[test]
    fn replicas_multiply_cells_with_independent_seeds() {
        let g = grid().with_replicas(3);
        assert_eq!(g.len(), 18);
        let ids = g.identities(9).unwrap();
        let seeds: BTreeSet<u64> = ids.iter().map(|id| id.seed).collect();
        assert_eq!(seeds.len(), 18, "replica seeds must not collide");
        // Replicas of one cell share parameters.
        assert_eq!(ids[0].params, ids[1].params);
        assert_ne!(ids[0].seed, ids[1].seed);
    }

    #[test]
    fn identities_survive_grid_growth() {
        let small = grid().identities(9).unwrap();
        let small_names: BTreeSet<String> = small.iter().map(GenIdentity::scenario_name).collect();
        // Growing an axis keeps every existing cell's identity (and hence
        // its cache entries) intact — seeds hang off the canonical params,
        // not the grid position.
        let grown = GenGrid::new("highway-flow")
            .unwrap()
            .axis("n_cars", "1,2,4")
            .unwrap()
            .axis("speed_kmh", "40, 80, 120")
            .unwrap()
            .identities(9)
            .unwrap();
        let grown_names: BTreeSet<String> = grown.iter().map(GenIdentity::scenario_name).collect();
        assert_eq!(grown_names.len(), 9);
        assert!(small_names.is_subset(&grown_names), "growth must not move existing cells");
        // A different master seed moves every cell...
        let moved = grid().identities(10).unwrap();
        let moved_names: BTreeSet<String> = moved.iter().map(GenIdentity::scenario_name).collect();
        assert!(small_names.is_disjoint(&moved_names), "master seed is part of every identity");
        // ...while the same master seed reproduces them exactly.
        let again: BTreeSet<String> =
            grid().identities(9).unwrap().iter().map(GenIdentity::scenario_name).collect();
        assert_eq!(small_names, again);
    }

    #[test]
    fn expand_instantiates_matching_scenarios() {
        use vanet_scenarios::Scenario as _;
        let g = GenGrid::new("platoon-merge").unwrap().axis("n_ramp", "1,2").unwrap();
        let ids = g.identities(4).unwrap();
        let scenarios = g.expand(4).unwrap();
        assert_eq!(ids.len(), scenarios.len());
        for (id, scenario) in ids.iter().zip(&scenarios) {
            assert_eq!(scenario.name(), id.scenario_name());
            assert_eq!(scenario.identity(), id);
        }
    }

    #[test]
    fn axis_validation_rejects_bad_specs() {
        let base = || GenGrid::new("highway-flow").unwrap();
        assert!(matches!(GenGrid::new("mars"), Err(GenError::UnknownGenerator(_))));
        assert!(matches!(base().axis("warp", "1"), Err(GenError::Unknown { .. })));
        assert!(matches!(base().axis("n_cars", "banana"), Err(GenError::BadValue { .. })));
        assert!(matches!(base().axis("n_cars", "999"), Err(GenError::Range { .. })));
        assert!(matches!(base().axis("n_cars", ""), Err(GenError::BadValue { .. })));
        let dup = base().axis("n_cars", "1").unwrap().axis("n_cars", "2");
        assert!(matches!(dup, Err(GenError::Duplicate { .. })));
        // Repeated values collapse instead of duplicating identities.
        let g = base().axis("n_cars", "2,2,2").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn axisless_grid_is_the_single_default_cell() {
        let g = GenGrid::new("grid-city").unwrap();
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
        let ids = g.identities(1).unwrap();
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0].params, g.generator().schema().resolve(&[]).unwrap());
    }
}
