//! The [`Blueprint`]: a generated world, fully realised and frozen.
//!
//! Generators do all their sampling at *generation* time — street-graph
//! walks, per-car speed jitter, AP placement — and freeze the result into a
//! `Blueprint` of plain polylines and positions. The per-round simulation
//! then consumes the blueprint deterministically, which keeps the
//! `ScenarioRun::run_round(round, seed)` purity contract intact: two
//! scenarios with the same `(generator, params, seed)` identity carry
//! byte-identical blueprints, and a round's randomness (shadowing, protocol
//! jitter) still derives entirely from the round seed.

use sim_core::SimTime;
use vanet_geo::{Point, Polyline};
use vanet_mac::MediumConfig;

/// One car's frozen trajectory plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CarPlan {
    /// The road the car follows.
    pub path: Polyline,
    /// Cruise speed in m/s (already jittered, if the generator jitters).
    pub speed_ms: f64,
    /// Signed starting offset along the path in metres (negative: the car
    /// enters the path after a delay, platoon-follower style).
    pub start_offset_m: f64,
    /// When the car starts moving.
    pub start_time: SimTime,
}

/// A generated world: everything a round needs except the round seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Blueprint {
    /// The cars, in platoon/flow order.
    pub cars: Vec<CarPlan>,
    /// Fixed access-point positions.
    pub ap_positions: Vec<Point>,
    /// The medium template (obstacles applied; rounds stamp shadowing
    /// seeds).
    pub medium: MediumConfig,
    /// AP sending rate per car in packets per second.
    pub ap_rate_pps: f64,
    /// Data payload per packet in bytes.
    pub payload_bytes: u32,
    /// Simulation horizon of one round.
    pub horizon: SimTime,
    /// Default round budget of the scenario's runtime schema.
    pub rounds_default: u32,
}

impl Blueprint {
    /// Sanity-checks the generated world; generator bugs should fail here,
    /// loudly, not as a wedged simulation.
    ///
    /// # Panics
    ///
    /// Panics on an empty world, non-positive speeds, empty paths, a
    /// non-positive horizon or rate, or a zero round budget.
    pub fn validate(&self) {
        assert!(!self.cars.is_empty(), "a generated scenario needs at least one car");
        assert!(!self.ap_positions.is_empty(), "a generated scenario needs at least one AP");
        for (i, car) in self.cars.iter().enumerate() {
            assert!(car.speed_ms > 0.0, "car {i} has non-positive speed {}", car.speed_ms);
            assert!(car.path.length() > 0.0, "car {i} has a degenerate path");
        }
        assert!(self.ap_rate_pps > 0.0, "AP rate must be positive");
        assert!(self.payload_bytes >= 1, "payload must be at least one byte");
        assert!(self.horizon > SimTime::ZERO, "the round horizon must be positive");
        assert!(self.rounds_default >= 1, "the default round budget must be positive");
    }
}
