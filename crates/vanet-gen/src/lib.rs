//! # vanet-gen — procedural scenario generation for the C-ARQ platform
//!
//! The built-in scenarios reproduce the paper's three hand-written
//! experiments. This crate mass-produces *new* ones: composable,
//! deterministic world generators whose output is a first-class
//! [`Scenario`](vanet_scenarios::Scenario) — sweepable, traceable,
//! verifiable and cacheable exactly like the built-ins.
//!
//! ## The identity contract
//!
//! A generated scenario is fully determined by its **identity**: the triple
//! `(generator name, canonical generator parameters, gen seed)` rendered by
//! [`GenIdentity::canonical`]. Everything else is derived:
//!
//! * the world (street graph, car paths, AP positions, channel config) is
//!   frozen by [`Generator::blueprint`] — every sample drawn from streams
//!   derived off the gen seed, so regeneration is bit-exact;
//! * the scenario *name* is `gen/{generator}/{id16}` where `id16` hashes
//!   the canonical identity — the name feeds the runtime
//!   [`ParamSchema`](vanet_scenarios::ParamSchema) fingerprint, so the
//!   existing content-addressed round cache distinguishes every generated
//!   world with **zero cache-layer changes**;
//! * the `VANETGEN1` file ([`encode`]/[`decode`]) stores only the identity
//!   and regenerates on load.
//!
//! ## The pieces
//!
//! * [`generators`] — the catalogue: `grid-city` (street grids, building
//!   shadowing, random-waypoint walks, AP placement strategies),
//!   `highway-flow` (bidirectional platooned flows past roadside APs — the
//!   paper's opposite-direction cooperation at scale) and `platoon-merge`
//!   (two flows joining at an AP);
//! * [`GenSchema`]/[`GenValue`] — the typed, documented, range-checked
//!   generator parameter namespace with the same lossless canonical
//!   encoding discipline as the runtime sweep parameters;
//! * [`GenGrid`] — campaign expansion: value axes × seed replicas →
//!   thousands of distinct identities, each seeded from the campaign
//!   master seed and its own canonical parameters (stable under grid
//!   growth);
//! * [`instantiate`] — `(generator, assignments, seed)` →
//!   [`GeneratedScenario`].
//!
//! ## Example
//!
//! ```rust,no_run
//! use vanet_gen::{instantiate, GenValue};
//! use vanet_scenarios::{run_point, Scenario, SweepPoint};
//!
//! let scenario = instantiate(
//!     "highway-flow",
//!     &[("n_cars".to_string(), GenValue::Int(3))],
//!     0x2008_1cdc,
//! )
//! .expect("schema-valid request");
//! println!("{}", scenario.name()); // gen/highway-flow/<16-hex identity>
//! let (_, summary) = run_point(&scenario, &SweepPoint::empty(), 1, 1).unwrap();
//! println!("loss after coop: {:.1}%", summary.get("loss_after_pct_mean").unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blueprint;
pub mod file;
pub mod generators;
pub mod grid;
pub mod params;
pub mod scenario;

pub use blueprint::{Blueprint, CarPlan};
pub use file::{decode, encode, GEN_MAGIC};
pub use generators::Generator;
pub use grid::{scenario_seed, GenGrid};
pub use params::{GenError, GenParamSpec, GenSchema, GenValue, ResolvedParams};
pub use scenario::{instantiate, instantiate_with, GenIdentity, GeneratedRun, GeneratedScenario};
