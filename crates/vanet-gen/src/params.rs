//! The generator parameter vocabulary: [`GenValue`], [`GenParamSpec`] and
//! [`GenSchema`].
//!
//! Generator parameters are deliberately *not* the runtime [`Param`]
//! vocabulary of `vanet-scenarios`: that enum is closed over the knobs a
//! configured experiment sweeps (speed, rate, cooperation, …), while
//! generator parameters describe *world construction* — street-grid
//! dimensions, AP placement strategies, merge geometry. They live in their
//! own string-keyed, schema-checked namespace with the same lossless
//! canonical encoding discipline, because the canonical rendering of the
//! generator parameters is one third of a generated scenario's identity
//! (see [`GenIdentity`](crate::GenIdentity)).
//!
//! [`Param`]: vanet_scenarios::Param

use std::fmt;

/// Why a generation request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The named generator is not in the catalogue.
    UnknownGenerator(String),
    /// The generator's schema does not declare this parameter.
    Unknown {
        /// The generator whose schema rejected the parameter.
        generator: &'static str,
        /// The offending key.
        key: String,
    },
    /// The same parameter was assigned twice.
    Duplicate {
        /// The generator whose schema rejected the assignment.
        generator: &'static str,
        /// The duplicated key.
        key: &'static str,
    },
    /// The assigned value has the wrong kind for the parameter.
    Type {
        /// The generator whose schema rejected the value.
        generator: &'static str,
        /// The mistyped parameter.
        key: &'static str,
        /// What the schema expected (e.g. `"float"`, `"one of center, …"`).
        expected: String,
    },
    /// The assigned value is outside the parameter's declared range.
    Range {
        /// The generator whose schema rejected the value.
        generator: &'static str,
        /// The out-of-range parameter.
        key: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A value failed to parse at all.
    BadValue {
        /// The generator whose schema rejected the text.
        generator: &'static str,
        /// The parameter the text was meant for.
        key: String,
        /// The unparseable text.
        text: String,
    },
    /// A `VANETGEN1` scenario file failed to parse; `line` is 1-based.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::UnknownGenerator(name) => {
                write!(f, "unknown generator `{name}` (see `carq-cli gen list`)")
            }
            GenError::Unknown { generator, key } => {
                write!(f, "generator `{generator}` has no parameter `{key}`")
            }
            GenError::Duplicate { generator, key } => {
                write!(f, "generator `{generator}`: parameter `{key}` assigned twice")
            }
            GenError::Type { generator, key, expected } => {
                write!(f, "generator `{generator}`: parameter `{key}` expects {expected}")
            }
            GenError::Range { generator, key, detail } => {
                write!(f, "generator `{generator}`: parameter `{key}` {detail}")
            }
            GenError::BadValue { generator, key, text } => {
                write!(f, "generator `{generator}`: `{text}` is not a valid value for `{key}`")
            }
            GenError::Parse { line, message } => {
                write!(f, "scenario file line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// One value of a generator parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenValue {
    /// A real-valued parameter (lengths, speeds, rates).
    Float(f64),
    /// An integral parameter (counts).
    Int(u64),
    /// An on/off parameter.
    Bool(bool),
    /// A named strategy drawn from a closed choice list; the `&'static str`
    /// is always one of the owning spec's [`GenParamSpec::choices`].
    Choice(&'static str),
}

impl GenValue {
    /// A **lossless** rendering used in scenario identities, `VANETGEN1`
    /// files and campaign shard files — the same discipline as
    /// `ParamValue::canonical` in `vanet-scenarios`: floats render as their
    /// IEEE-754 bit pattern so nearby values never collapse onto one
    /// identity.
    pub fn canonical(&self) -> String {
        match self {
            GenValue::Float(x) => format!("f{:016x}", x.to_bits()),
            GenValue::Int(x) => format!("i{x}"),
            GenValue::Bool(x) => format!("b{}", u8::from(*x)),
            GenValue::Choice(name) => (*name).to_string(),
        }
    }

    /// The float behind this value, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            GenValue::Float(x) => Some(*x),
            GenValue::Int(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The integer behind this value, if integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            GenValue::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean behind this value, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            GenValue::Bool(x) => Some(*x),
            _ => None,
        }
    }

    /// The choice name behind this value, if a choice.
    pub fn as_choice(&self) -> Option<&'static str> {
        match self {
            GenValue::Choice(name) => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for GenValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Fixed decimals keep rendered listings byte-stable.
            GenValue::Float(x) => write!(f, "{x:.3}"),
            GenValue::Int(x) => write!(f, "{x}"),
            GenValue::Bool(x) => write!(f, "{x}"),
            GenValue::Choice(name) => f.write_str(name),
        }
    }
}

/// The declared shape of one generator parameter.
#[derive(Debug, Clone)]
pub struct GenParamSpec {
    key: &'static str,
    doc: &'static str,
    default: GenValue,
    /// Inclusive numeric range for float/int parameters (unused otherwise).
    min: f64,
    max: f64,
    /// The closed vocabulary for choice parameters (empty otherwise).
    choices: &'static [&'static str],
}

impl GenParamSpec {
    /// A real-valued parameter with an inclusive range.
    pub fn float(key: &'static str, doc: &'static str, default: f64, min: f64, max: f64) -> Self {
        GenParamSpec { key, doc, default: GenValue::Float(default), min, max, choices: &[] }
    }

    /// An integral parameter with an inclusive range.
    pub fn int(key: &'static str, doc: &'static str, default: u64, min: u64, max: u64) -> Self {
        GenParamSpec {
            key,
            doc,
            default: GenValue::Int(default),
            min: min as f64,
            max: max as f64,
            choices: &[],
        }
    }

    /// An on/off parameter.
    pub fn bool(key: &'static str, doc: &'static str, default: bool) -> Self {
        GenParamSpec {
            key,
            doc,
            default: GenValue::Bool(default),
            min: 0.0,
            max: 1.0,
            choices: &[],
        }
    }

    /// A strategy parameter over a closed choice list. The default must be
    /// one of the choices (checked by [`GenSchema::new`]).
    pub fn choice(
        key: &'static str,
        doc: &'static str,
        default: &'static str,
        choices: &'static [&'static str],
    ) -> Self {
        GenParamSpec { key, doc, default: GenValue::Choice(default), min: 0.0, max: 0.0, choices }
    }

    /// The parameter's key.
    pub fn key(&self) -> &'static str {
        self.key
    }

    /// One-line description.
    pub fn doc(&self) -> &'static str {
        self.doc
    }

    /// The default value used when a request does not assign the parameter.
    pub fn default_value(&self) -> GenValue {
        self.default
    }

    /// The choice vocabulary (empty unless this is a choice parameter).
    pub fn choices(&self) -> &'static [&'static str] {
        self.choices
    }

    /// Human-readable kind + range description for listings.
    pub fn render_kind(&self) -> String {
        match self.default {
            GenValue::Float(_) => format!("float in [{}, {}]", self.min, self.max),
            GenValue::Int(_) => format!("int in [{}, {}]", self.min as u64, self.max as u64),
            GenValue::Bool(_) => "bool".to_string(),
            GenValue::Choice(_) => format!("one of {}", self.choices.join(", ")),
        }
    }

    /// Checks `value` against this spec's kind and range.
    fn check(&self, generator: &'static str, value: GenValue) -> Result<GenValue, GenError> {
        let type_error = || GenError::Type {
            generator,
            key: self.key,
            expected: match self.default {
                GenValue::Float(_) => "a float".to_string(),
                GenValue::Int(_) => "an integer".to_string(),
                GenValue::Bool(_) => "a boolean".to_string(),
                GenValue::Choice(_) => format!("one of {}", self.choices.join(", ")),
            },
        };
        match (self.default, value) {
            (GenValue::Float(_), GenValue::Float(x)) => {
                if !x.is_finite() || x < self.min || x > self.max {
                    return Err(GenError::Range {
                        generator,
                        key: self.key,
                        detail: format!("must be in [{}, {}], got {x}", self.min, self.max),
                    });
                }
                Ok(value)
            }
            // Integers are accepted where floats are expected (`speed=20`).
            (GenValue::Float(_), GenValue::Int(x)) => {
                self.check(generator, GenValue::Float(x as f64))
            }
            (GenValue::Int(_), GenValue::Int(x)) => {
                if (x as f64) < self.min || (x as f64) > self.max {
                    return Err(GenError::Range {
                        generator,
                        key: self.key,
                        detail: format!(
                            "must be in [{}, {}], got {x}",
                            self.min as u64, self.max as u64
                        ),
                    });
                }
                Ok(value)
            }
            (GenValue::Bool(_), GenValue::Bool(_)) => Ok(value),
            (GenValue::Choice(_), GenValue::Choice(name)) => {
                // Canonicalize onto the spec's own `&'static str` so equal
                // choices are pointer-stable regardless of parse origin.
                let interned = self.choices.iter().find(|c| **c == name).ok_or_else(type_error)?;
                Ok(GenValue::Choice(interned))
            }
            _ => Err(type_error()),
        }
    }

    /// Parses a value in *human* form: `2.5`, `3`, `on`/`off`, or a choice
    /// word — the spelling CLI users type.
    fn parse_human(&self, generator: &'static str, text: &str) -> Result<GenValue, GenError> {
        let bad = || GenError::BadValue { generator, key: self.key.to_string(), text: text.into() };
        match self.default {
            GenValue::Float(_) => text.parse().map(GenValue::Float).map_err(|_| bad()),
            GenValue::Int(_) => text.parse().map(GenValue::Int).map_err(|_| bad()),
            GenValue::Bool(_) => match text {
                "on" | "true" | "1" => Ok(GenValue::Bool(true)),
                "off" | "false" | "0" => Ok(GenValue::Bool(false)),
                _ => Err(bad()),
            },
            GenValue::Choice(_) => self
                .choices
                .iter()
                .find(|c| **c == text)
                .map(|c| GenValue::Choice(c))
                .ok_or_else(bad),
        }
    }

    /// Parses a [`GenValue::canonical`] rendering back — the exact inverse,
    /// so identities serialized into `VANETGEN1` and campaign shard files
    /// round-trip bit-for-bit.
    fn parse_canonical(&self, generator: &'static str, text: &str) -> Result<GenValue, GenError> {
        let bad = || GenError::BadValue { generator, key: self.key.to_string(), text: text.into() };
        match text {
            "b0" => return self.check(generator, GenValue::Bool(false)),
            "b1" => return self.check(generator, GenValue::Bool(true)),
            _ => {}
        }
        if let Some(hex) = text.strip_prefix('f') {
            if hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                let bits = u64::from_str_radix(hex, 16).map_err(|_| bad())?;
                return self.check(generator, GenValue::Float(f64::from_bits(bits)));
            }
        }
        if let Some(digits) = text.strip_prefix('i') {
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                let x: u64 = digits.parse().map_err(|_| bad())?;
                return self.check(generator, GenValue::Int(x));
            }
        }
        // Anything else can only be a choice word.
        if matches!(self.default, GenValue::Choice(_)) {
            return self.parse_human(generator, text).and_then(|v| self.check(generator, v));
        }
        Err(bad())
    }
}

/// A generator's declared parameters: keys, kinds, docs, defaults, ranges.
///
/// The schema is the contract that makes generated scenarios regenerable:
/// [`GenSchema::resolve`] turns any assignment list into the *fully
/// resolved* declaration-order parameter vector, and
/// [`ResolvedParams::canonical`] renders it losslessly — the rendering that
/// feeds the scenario identity and therefore every cache key downstream.
#[derive(Debug, Clone)]
pub struct GenSchema {
    generator: &'static str,
    specs: Vec<GenParamSpec>,
}

impl GenSchema {
    /// Builds a schema.
    ///
    /// # Panics
    ///
    /// Panics if a key is declared twice or a default violates its own spec
    /// — generator-author errors that must fail loudly at construction.
    pub fn new(generator: &'static str, specs: Vec<GenParamSpec>) -> Self {
        for (i, spec) in specs.iter().enumerate() {
            assert!(
                !specs[..i].iter().any(|s| s.key == spec.key),
                "generator `{generator}` declares parameter `{}` twice",
                spec.key
            );
            assert!(
                spec.check(generator, spec.default).is_ok(),
                "generator `{generator}`: default for `{}` violates its own spec",
                spec.key
            );
        }
        GenSchema { generator, specs }
    }

    /// The generator this schema belongs to.
    pub fn generator(&self) -> &'static str {
        self.generator
    }

    /// The declared parameters, in declaration order.
    pub fn params(&self) -> &[GenParamSpec] {
        &self.specs
    }

    fn spec_for(&self, key: &str) -> Result<&GenParamSpec, GenError> {
        self.specs
            .iter()
            .find(|s| s.key == key)
            .ok_or_else(|| GenError::Unknown { generator: self.generator, key: key.to_string() })
    }

    /// Parses one human-form value (`2.5`, `3`, `on`, a choice word) for
    /// the named parameter.
    pub fn parse_value(&self, key: &str, text: &str) -> Result<GenValue, GenError> {
        let spec = self.spec_for(key)?;
        spec.parse_human(self.generator, text).and_then(|v| spec.check(self.generator, v))
    }

    /// Parses one canonical-form value (`f…`, `i…`, `b0`/`b1`, a choice
    /// word) for the named parameter.
    pub fn parse_canonical_value(&self, key: &str, text: &str) -> Result<GenValue, GenError> {
        let spec = self.spec_for(key)?;
        spec.parse_canonical(self.generator, text)
    }

    /// Validates `assignments` and resolves them against the defaults into
    /// the full declaration-order parameter vector.
    ///
    /// # Errors
    ///
    /// Unknown keys, duplicated keys, kind mismatches and out-of-range
    /// values, each naming the generator and parameter.
    pub fn resolve(&self, assignments: &[(String, GenValue)]) -> Result<ResolvedParams, GenError> {
        // Validate every assignment up front so errors name the user's key.
        for (i, (key, value)) in assignments.iter().enumerate() {
            let spec = self.spec_for(key)?;
            if assignments[..i].iter().any(|(k, _)| k == key) {
                return Err(GenError::Duplicate { generator: self.generator, key: spec.key });
            }
            spec.check(self.generator, *value)?;
        }
        let resolved = self
            .specs
            .iter()
            .map(|spec| {
                let value = assignments
                    .iter()
                    .find(|(k, _)| k == spec.key)
                    .map(|(_, v)| spec.check(self.generator, *v).expect("validated above"))
                    .unwrap_or(spec.default);
                (spec.key, value)
            })
            .collect();
        Ok(ResolvedParams { assignments: resolved })
    }
}

/// A fully resolved generator parameter vector: every declared parameter
/// present, in declaration order — the canonical-identity form.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedParams {
    assignments: Vec<(&'static str, GenValue)>,
}

impl ResolvedParams {
    /// The assignments, in schema declaration order.
    pub fn assignments(&self) -> &[(&'static str, GenValue)] {
        &self.assignments
    }

    /// The lossless `key=canonical;key=canonical` rendering (declaration
    /// order, every parameter present) that feeds the scenario identity.
    pub fn canonical(&self) -> String {
        self.assignments
            .iter()
            .map(|(key, value)| format!("{key}={}", value.canonical()))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// The value of the named parameter. Resolution guarantees presence.
    ///
    /// # Panics
    ///
    /// Panics if the key was never declared — a generator-author error.
    pub fn get(&self, key: &str) -> GenValue {
        self.assignments
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("generator parameter `{key}` not in resolved set"))
    }

    /// The named float parameter (integral values widen).
    ///
    /// # Panics
    ///
    /// Panics on a missing key or non-numeric kind.
    pub fn f64(&self, key: &str) -> f64 {
        self.get(key).as_f64().unwrap_or_else(|| panic!("parameter `{key}` is not numeric"))
    }

    /// The named integer parameter.
    ///
    /// # Panics
    ///
    /// Panics on a missing key or non-integral kind.
    pub fn u64(&self, key: &str) -> u64 {
        self.get(key).as_u64().unwrap_or_else(|| panic!("parameter `{key}` is not an integer"))
    }

    /// The named boolean parameter.
    ///
    /// # Panics
    ///
    /// Panics on a missing key or non-boolean kind.
    pub fn bool(&self, key: &str) -> bool {
        self.get(key).as_bool().unwrap_or_else(|| panic!("parameter `{key}` is not a boolean"))
    }

    /// The named choice parameter.
    ///
    /// # Panics
    ///
    /// Panics on a missing key or non-choice kind.
    pub fn choice(&self, key: &str) -> &'static str {
        self.get(key).as_choice().unwrap_or_else(|| panic!("parameter `{key}` is not a choice"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> GenSchema {
        GenSchema::new(
            "test-gen",
            vec![
                GenParamSpec::float("length_m", "road length", 600.0, 100.0, 5_000.0),
                GenParamSpec::int("n_cars", "car count", 2, 1, 8),
                GenParamSpec::bool("bidirectional", "two-way traffic", true),
                GenParamSpec::choice("ap_placement", "AP strategy", "center", &["center", "ring"]),
            ],
        )
    }

    #[test]
    fn canonical_values_are_lossless_and_round_trip() {
        assert_eq!(GenValue::Float(600.0).canonical(), format!("f{:016x}", 600.0f64.to_bits()));
        assert_eq!(GenValue::Int(3).canonical(), "i3");
        assert_eq!(GenValue::Bool(false).canonical(), "b0");
        assert_eq!(GenValue::Choice("ring").canonical(), "ring");
        let s = schema();
        for (key, value) in [
            ("length_m", GenValue::Float(123.456_789)),
            ("n_cars", GenValue::Int(7)),
            ("bidirectional", GenValue::Bool(false)),
            ("ap_placement", GenValue::Choice("ring")),
        ] {
            let parsed = s.parse_canonical_value(key, &value.canonical()).unwrap();
            assert_eq!(parsed, value, "round-trip of `{key}`");
        }
        // Nearby floats stay distinct in canonical form.
        assert_ne!(GenValue::Float(20.0).canonical(), GenValue::Float(20.000_000_1).canonical());
    }

    #[test]
    fn human_parsing_accepts_cli_spellings() {
        let s = schema();
        assert_eq!(s.parse_value("length_m", "450.5").unwrap(), GenValue::Float(450.5));
        assert_eq!(s.parse_value("n_cars", "3").unwrap(), GenValue::Int(3));
        assert_eq!(s.parse_value("bidirectional", "off").unwrap(), GenValue::Bool(false));
        assert_eq!(s.parse_value("ap_placement", "ring").unwrap(), GenValue::Choice("ring"));
        assert!(matches!(s.parse_value("length_m", "wide"), Err(GenError::BadValue { .. })));
        assert!(matches!(s.parse_value("ap_placement", "moon"), Err(GenError::BadValue { .. })));
        assert!(matches!(s.parse_value("warp", "1"), Err(GenError::Unknown { .. })));
    }

    #[test]
    fn resolve_fills_defaults_in_declaration_order() {
        let s = schema();
        let resolved = s.resolve(&[("n_cars".to_string(), GenValue::Int(5))]).unwrap();
        let keys: Vec<&str> = resolved.assignments().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["length_m", "n_cars", "bidirectional", "ap_placement"]);
        assert_eq!(resolved.u64("n_cars"), 5);
        assert_eq!(resolved.f64("length_m"), 600.0);
        assert!(resolved.bool("bidirectional"));
        assert_eq!(resolved.choice("ap_placement"), "center");
        assert_eq!(
            resolved.canonical(),
            format!(
                "length_m=f{:016x};n_cars=i5;bidirectional=b1;ap_placement=center",
                600.0f64.to_bits()
            )
        );
    }

    #[test]
    fn resolve_rejects_bad_assignments() {
        let s = schema();
        let unknown = s.resolve(&[("warp".to_string(), GenValue::Int(1))]);
        assert!(matches!(unknown, Err(GenError::Unknown { .. })), "{unknown:?}");
        let dup = s.resolve(&[
            ("n_cars".to_string(), GenValue::Int(1)),
            ("n_cars".to_string(), GenValue::Int(2)),
        ]);
        assert!(matches!(dup, Err(GenError::Duplicate { .. })), "{dup:?}");
        let range = s.resolve(&[("n_cars".to_string(), GenValue::Int(99))]);
        assert!(matches!(range, Err(GenError::Range { .. })), "{range:?}");
        let kind = s.resolve(&[("n_cars".to_string(), GenValue::Bool(true))]);
        assert!(matches!(kind, Err(GenError::Type { .. })), "{kind:?}");
        // Ints widen into float slots; the reverse does not hold.
        assert!(s.resolve(&[("length_m".to_string(), GenValue::Int(500))]).is_ok());
        assert!(s.resolve(&[("n_cars".to_string(), GenValue::Float(2.0))]).is_err());
    }

    #[test]
    fn errors_render_with_generator_and_key() {
        let s = schema();
        let err = s.resolve(&[("warp".to_string(), GenValue::Int(1))]).unwrap_err();
        assert!(err.to_string().contains("test-gen"), "{err}");
        assert!(err.to_string().contains("warp"), "{err}");
        let err = GenError::UnknownGenerator("mars".into());
        assert!(err.to_string().contains("gen list"), "{err}");
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_spec_keys_rejected() {
        let _ = GenSchema::new(
            "dup",
            vec![GenParamSpec::int("a", "", 1, 0, 2), GenParamSpec::int("a", "", 1, 0, 2)],
        );
    }

    #[test]
    #[should_panic(expected = "violates its own spec")]
    fn invalid_default_rejected() {
        let _ = GenSchema::new("bad", vec![GenParamSpec::choice("s", "", "x", &["y", "z"])]);
    }
}
