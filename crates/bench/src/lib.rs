//! Shared helpers for the reproduction bench harness.
//!
//! Every bench target in this crate regenerates one table or figure of the
//! paper (or one ablation from `DESIGN.md`) and prints the same rows/series
//! the paper reports. The heavy lifting lives in `vanet-scenarios` behind
//! the unified `Scenario` API; this crate only provides the common
//! plumbing: round-count selection, shared experiment execution and a tiny
//! wall-clock timer so each bench also reports how long the regeneration
//! took.
//!
//! The number of simulated rounds defaults to the paper's 30 and can be
//! lowered for quick runs with the `CARQ_BENCH_ROUNDS` environment variable.

use std::time::Instant;

use vanet_scenarios::run_rounds;
use vanet_scenarios::urban::{UrbanConfig, UrbanRun};
use vanet_stats::RoundReport;

/// The master seed every bench runs with (the paper's year + venue).
pub const BENCH_SEED: u64 = 0x2008_1cdc;

/// Number of rounds to simulate: `CARQ_BENCH_ROUNDS` or the paper's 30.
pub fn bench_rounds() -> u32 {
    std::env::var("CARQ_BENCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|r| *r > 0)
        .unwrap_or(30)
}

/// Runs the urban testbed at `config` (rounds in parallel on all cores) and
/// returns the per-round reports together with the wall-clock seconds it
/// took.
pub fn run_urban(config: UrbanConfig) -> (Vec<RoundReport>, f64) {
    let started = Instant::now();
    let run = UrbanRun::new(config);
    let reports = run_rounds(&run, BENCH_SEED, 0);
    (reports, started.elapsed().as_secs_f64())
}

/// Runs the paper-testbed configuration with the bench round count.
pub fn run_paper_testbed() -> (Vec<RoundReport>, f64) {
    run_urban(UrbanConfig::paper_testbed().with_rounds(bench_rounds()))
}

/// Prints a standard bench header.
pub fn print_header(target: &str, reproduces: &str) {
    println!("==================================================================");
    println!("bench target : {target}");
    println!("reproduces   : {reproduces}");
    println!("rounds       : {}", bench_rounds());
    println!("==================================================================");
}

/// Prints the standard bench footer with the elapsed wall-clock time.
pub fn print_footer(elapsed_secs: f64) {
    println!("------------------------------------------------------------------");
    println!("regenerated in {elapsed_secs:.1} s of wall-clock time");
    println!();
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_round_count_matches_paper() {
        // The env var is not set in unit tests, so the paper's 30 applies.
        if std::env::var("CARQ_BENCH_ROUNDS").is_err() {
            assert_eq!(super::bench_rounds(), 30);
        }
    }
}
