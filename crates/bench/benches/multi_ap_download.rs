//! Extension A4: number of AP visits needed to finish a file download.
//!
//! §6 of the paper asks "how the presented loss reduction can reduce the
//! number of APs that a vehicular node needs to visit to download a file".
//! This bench runs the multi-AP download experiment with and without
//! Cooperative ARQ and reports the AP-visit count per car. The AP visits
//! simulate in parallel waves; the per-car accounting is a deterministic
//! fold over the per-visit reports.

use bench::{print_footer, print_header, BENCH_SEED};
use std::time::Instant;
use vanet_scenarios::multi_ap::{MultiApConfig, MultiApRun};
use vanet_scenarios::run_rounds;

fn file_blocks() -> u32 {
    std::env::var("CARQ_BENCH_FILE_BLOCKS").ok().and_then(|v| v.parse().ok()).unwrap_or(1_500)
}

fn main() {
    print_header(
        "multi_ap_download",
        "A4 — AP visits needed to download a file, with and without C-ARQ (§6)",
    );
    let started = Instant::now();
    let blocks = file_blocks();
    println!("file size: {blocks} blocks of 1000 bytes per car\n");
    println!("{:<24} {:>8} {:>14} {:>22}", "configuration", "car", "AP visits", "blocks per visit");
    for (label, cooperative) in [("with C-ARQ", true), ("without cooperation", false)] {
        let mut config = MultiApConfig::default_download().with_file_blocks(blocks);
        if !cooperative {
            config = config.without_cooperation();
        }
        let run = MultiApRun::new(config);
        let reports = run_rounds(&run, BENCH_SEED, 0);
        for outcome in run.outcomes(&reports) {
            let visits = outcome
                .passes_needed
                .map(|p| p.to_string())
                .unwrap_or_else(|| "unfinished".to_string());
            println!(
                "{label:<24} {:>8} {visits:>14} {:>22.1}",
                outcome.car.to_string(),
                outcome.mean_blocks_per_pass
            );
        }
    }
    println!("\nexpected shape: the cooperative platoon completes the download in fewer AP");
    println!("visits because each pass delivers more usable blocks per car.");
    print_footer(started.elapsed().as_secs_f64());
}
