//! P1: performance of the simulation substrate itself (criterion benches).
//!
//! These benches do not reproduce a table of the paper; they document the
//! cost of the building blocks the reproduction rests on — event-queue
//! throughput, channel sampling, medium broadcast fan-out and one full
//! urban round — so that regressions in the substrate are caught.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sim_core::{EventQueue, Model, Scheduler, SimDuration, SimTime, Simulation, StreamRng};
use vanet_geo::Point;
use vanet_mac::{Destination, Frame, Medium, MediumConfig, NodeId, RadioClass};
use vanet_radio::{ChannelModel, DataRate, RadioChannel, RadioConfig};
use vanet_scenarios::round_seed;
use vanet_scenarios::urban::{UrbanConfig, UrbanRun};
use vanet_scenarios::ScenarioRun as _;

/// A model that reschedules itself a fixed number of times.
struct Countdown {
    remaining: u64,
}

impl Model for Countdown {
    type Event = ();
    fn handle(&mut self, _now: SimTime, _event: (), scheduler: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            scheduler.schedule_in(SimDuration::from_micros(10), ());
        }
    }
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut queue| {
                for i in 0..10_000u64 {
                    queue.push(SimTime::from_nanos(i * 37 % 5_000), i);
                }
                while queue.pop().is_some() {}
                queue
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulation_loop(c: &mut Criterion) {
    c.bench_function("simulation_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Countdown { remaining: 100_000 });
            sim.schedule_at(SimTime::ZERO, ());
            sim.run();
            sim.processed_events()
        })
    });
}

fn bench_channel_sampling(c: &mut Criterion) {
    let channel = RadioChannel::new(RadioConfig::urban_2_4ghz());
    c.bench_function("channel_sample_10k", |b| {
        let mut rng = StreamRng::derive(1, "bench-channel");
        b.iter(|| {
            let mut received = 0u32;
            for i in 0..10_000u32 {
                let d = 10.0 + f64::from(i % 200);
                let verdict = channel.sample_reception(
                    Point::ORIGIN,
                    Point::new(d, 0.0),
                    8_000,
                    DataRate::Mbps1,
                    &mut rng,
                );
                received += u32::from(verdict.received);
            }
            received
        })
    });
}

fn bench_medium_broadcast(c: &mut Criterion) {
    c.bench_function("medium_broadcast_20_receivers", |b| {
        let mut medium = Medium::new(MediumConfig::urban_testbed());
        medium.register_node(NodeId::new(0), RadioClass::AccessPoint);
        medium.update_position(NodeId::new(0), Point::new(0.0, 18.0));
        for i in 1..=20u32 {
            medium.register_node(NodeId::new(i), RadioClass::Vehicle);
            medium.update_position(NodeId::new(i), Point::new(f64::from(i) * 15.0, 0.0));
        }
        let mut rng = StreamRng::derive(2, "bench-medium");
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_millis(10);
            let frame = Frame::new(NodeId::new(0), Destination::Broadcast, 1_000, 0u32);
            medium.transmit(t, &frame, DataRate::Mbps1, &mut rng).deliveries.len()
        })
    });
}

fn bench_urban_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("urban");
    group.sample_size(10);
    group.bench_function("one_full_round", |b| {
        let run = UrbanRun::new(UrbanConfig::paper_testbed().with_rounds(1));
        let mut round = 0;
        b.iter(|| {
            round += 1;
            run.run_round(round, round_seed(bench::BENCH_SEED, round))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_simulation_loop,
    bench_channel_sampling,
    bench_medium_broadcast,
    bench_urban_round
);
criterion_main!(benches);
