//! Reproduces **Figures 3, 4 and 5** of the paper: the probability of
//! reception, versus packet number, of the packets addressed to car 1 / 2 / 3
//! as observed (promiscuously) at each of the three cars, averaged over the
//! rounds.
//!
//! The paper's figures show three regions: the destination enters coverage
//! before (or after) its platoon mates, so at the beginning / end of its
//! window the *other* cars have better reception — which is exactly the
//! diversity the Cooperative ARQ exploits.

use bench::{bench_rounds, print_footer, print_header, run_paper_testbed};
use vanet_mac::NodeId;
use vanet_stats::{into_round_results, reception_series, render_series_csv};

fn main() {
    print_header(
        "fig_reception",
        "Figures 3-5 — probability of reception of packets addressed to each car",
    );
    let (reports, elapsed) = run_paper_testbed();
    let results = into_round_results(reports);
    let cars = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
    for (figure, flow) in (3..=5).zip(cars) {
        println!("--- Figure {figure}: packets addressed to {flow} ---");
        let series: Vec<_> =
            cars.iter().map(|observer| reception_series(&results, flow, *observer)).collect();
        // Region summary (thirds of the window), then the full CSV.
        for (label, s) in ["Rx in car 1", "Rx in car 2", "Rx in car 3"].iter().zip(&series) {
            if s.is_empty() {
                continue;
            }
            let third = s.len() / 3;
            let mean = |points: &[vanet_stats::SeriesPoint]| {
                if points.is_empty() {
                    0.0
                } else {
                    points.iter().map(|p| p.probability).sum::<f64>() / points.len() as f64
                }
            };
            println!(
                "{label:<12}  Region I: {:.2}   Region II: {:.2}   Region III: {:.2}",
                mean(&s[..third]),
                mean(&s[third..2 * third]),
                mean(&s[2 * third..]),
            );
        }
        let csv = render_series_csv(&["rx_in_car1", "rx_in_car2", "rx_in_car3"], &series);
        println!("{csv}");
    }
    println!("({} rounds averaged per point)", bench_rounds());
    print_footer(elapsed);
}
