//! Reproduces **Table 1** of the paper: average number of packets transmitted
//! by the AP, lost before cooperation and lost after cooperation, per car,
//! over the 30 rounds of the urban testbed.
//!
//! Paper values for reference: car 1 130.4 / 30.5 (23.4 %) / 13.7 (10.5 %),
//! car 2 143.0 / 38.4 (26.9 %) / 24.8 (17.3 %),
//! car 3 121.4 / 34.7 (28.6 %) / 19.1 (15.7 %).

use bench::{print_footer, print_header, run_paper_testbed};
use vanet_stats::{into_round_results, render_table1, table1};

fn main() {
    print_header("table1", "Table 1 — packets received and lost in the three cars");
    let (reports, elapsed) = run_paper_testbed();
    let rows = table1(&into_round_results(reports));
    println!("{}", render_table1(&rows));
    println!("paper reference:");
    println!("  car 1: 130.4 tx, 30.5 lost before (23.4%), 13.7 lost after (10.5%)");
    println!("  car 2: 143.0 tx, 38.4 lost before (26.9%), 24.8 lost after (17.3%)");
    println!("  car 3: 121.4 tx, 34.7 lost before (28.6%), 19.1 lost after (15.7%)");
    for row in &rows {
        println!(
            "  measured {}: loss reduced {:.0}% by cooperation",
            row.car,
            row.loss_reduction() * 100.0
        );
    }
    print_footer(elapsed);
}
