//! Ablation A3: AP-side retransmission ARQ versus Cooperative ARQ.
//!
//! §3.2 of the paper argues for disabling AP retransmissions: "We avoid
//! retransmissions at the hope that other cars in the platoon will receive
//! packets incorrectly received by the destination […] In this way the
//! channel can be used by the AP to transmit as much new data addressed to
//! the cars as possible". This bench quantifies that trade-off: an AP that
//! spends part of its coverage-time slots retransmitting (with idealised
//! loss feedback) delivers fewer *distinct* packets per pass than one that
//! only sends fresh data and lets the platoon repair losses cooperatively.

use bench::{bench_rounds, print_footer, print_header, run_urban};
use vanet_dtn::ApSchedulingPolicy;
use vanet_scenarios::urban::UrbanConfig;
use vanet_stats::{into_round_results, table1};

fn main() {
    print_header(
        "ablation_retransmission",
        "A3 — AP-side retransmission ARQ vs C-ARQ (discussion of §3.2)",
    );
    let rounds = bench_rounds().min(15);
    let configs: [(&str, ApSchedulingPolicy, bool); 3] = [
        ("fresh data + C-ARQ (paper)", ApSchedulingPolicy::FreshDataOnly, true),
        (
            "AP retransmissions, no coop",
            ApSchedulingPolicy::RetransmitUnacked { retransmit_ratio: 0.5 },
            false,
        ),
        (
            "AP retransmissions + C-ARQ",
            ApSchedulingPolicy::RetransmitUnacked { retransmit_ratio: 0.5 },
            true,
        ),
    ];
    let mut total_elapsed = 0.0;
    println!(
        "{:<30} {:>16} {:>14} {:>14}",
        "configuration", "fresh pkts sent", "loss before", "loss after"
    );
    for (label, policy, cooperation) in configs {
        let mut config = UrbanConfig::paper_testbed().with_rounds(rounds);
        config.ap_policy = policy;
        config.cooperation_enabled = cooperation;
        let (reports, elapsed) = run_urban(config);
        total_elapsed += elapsed;
        let rows = table1(&into_round_results(reports));
        let tx = rows.iter().map(|r| r.tx_by_ap.mean).sum::<f64>() / rows.len().max(1) as f64;
        let before = rows.iter().map(|r| r.loss_pct_before).sum::<f64>() / rows.len().max(1) as f64;
        let after = rows.iter().map(|r| r.loss_pct_after).sum::<f64>() / rows.len().max(1) as f64;
        println!("{label:<30} {tx:>16.1} {before:>13.1}% {after:>13.1}%");
    }
    println!("\nexpected shape: AP retransmissions reduce the loss percentage a little but");
    println!("also reduce the number of distinct packets the AP can deliver per pass;");
    println!("C-ARQ achieves the loss reduction without sacrificing fresh-data goodput.");
    print_footer(total_elapsed);
}
