//! P2: cost of a sweep against a cold vs. a warm round cache.
//!
//! Runs the same small urban sweep three times through one on-disk
//! `SweepCache` — cache-less baseline, cold cache (everything simulates
//! and is written back), warm cache (everything replays from the journal)
//! — and reports the elapsed time and `run_round` call count of each. The
//! warm pass must make **zero** `run_round` calls and export byte-identical
//! CSV, which this bench re-checks on the way; the elapsed ratio is the
//! price of a re-run after the cache exists (journal decode + aggregation
//! only).
//!
//! Rounds per point default to 1 and can be raised with
//! `CARQ_BENCH_ROUNDS` for a heavier, more realistic load.

use std::sync::Arc;

use bench::{print_footer, print_header};
use vanet_cache::SweepCache;
use vanet_scenarios::urban::UrbanConfig;
use vanet_scenarios::UrbanScenario;
use vanet_sweep::{Param, ParamValue, SweepEngine, SweepSpec};

fn rounds_per_point() -> u32 {
    std::env::var("CARQ_BENCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|r| *r > 0)
        .unwrap_or(1)
}

fn main() {
    print_header("cache_resume", "sweep cost against a cold vs. warm round cache");
    let rounds = rounds_per_point();
    println!("rounds/point : {rounds} (this bench defaults to 1, not the paper's 30)");
    let scenario = UrbanScenario::new(UrbanConfig::paper_testbed().with_rounds(rounds));
    let spec = SweepSpec::new(0x5eed)
        .axis(
            Param::SpeedKmh,
            vec![ParamValue::Float(10.0), ParamValue::Float(20.0), ParamValue::Float(30.0)],
        )
        .axis(Param::NCars, vec![ParamValue::Int(2), ParamValue::Int(3)]);

    let dir = std::env::temp_dir().join(format!("carq-bench-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = Arc::new(SweepCache::open(&dir).expect("cache opens"));
    let started = std::time::Instant::now();

    println!("{:>10} {:>14} {:>11} {:>9}", "pass", "elapsed (s)", "simulated", "cached");
    let mut reference_csv: Option<String> = None;
    for (pass, engine) in [
        ("baseline", SweepEngine::new(0)),
        ("cold", SweepEngine::new(0).with_cache(cache.clone())),
        ("warm", SweepEngine::new(0).with_cache(cache.clone())),
    ] {
        let result = engine.run(&scenario, &spec).expect("schema-valid sweep");
        println!(
            "{:>10} {:>14.2} {:>11} {:>9}",
            pass,
            result.elapsed.as_secs_f64(),
            result.rounds_simulated,
            result.rounds_cached,
        );
        if pass == "warm" {
            assert_eq!(result.rounds_simulated, 0, "warm pass must make no run_round calls");
        }
        let csv = result.to_csv();
        match &reference_csv {
            None => reference_csv = Some(csv),
            Some(reference) => {
                assert_eq!(reference, &csv, "CSV must be identical with and without the cache")
            }
        }
    }
    let stats = cache.stats();
    println!(
        "journal      : {} record(s), {} byte(s) at {}",
        stats.entries,
        stats.file_bytes,
        cache.journal_path().display()
    );
    println!("determinism  : CSV identical across baseline/cold/warm passes");
    std::fs::remove_dir_all(&dir).ok();
    print_footer(started.elapsed().as_secs_f64());
}
