//! Context experiment (E8): drive-thru losses at highway speeds.
//!
//! The paper motivates C-ARQ with the measurements of its reference \[1\]:
//! "vehicles passing in front of an AP moving at different speeds have losses
//! on the order of 50-60% depending on the nominal sending rate and vehicle
//! speed". This bench sweeps speed × sending rate for a single car through
//! the `highway` scenario and prints the per-pass loss percentage, then
//! shows how a three-car cooperating platoon changes the picture.

use bench::{print_footer, print_header, BENCH_SEED};
use std::time::Instant;
use vanet_scenarios::{HighwayScenario, Param, ParamValue, SweepPoint};
use vanet_sweep::{SweepEngine, SweepSpec};

fn passes() -> u32 {
    std::env::var("CARQ_BENCH_PASSES").ok().and_then(|v| v.parse().ok()).unwrap_or(8)
}

fn floats(xs: &[f64]) -> Vec<ParamValue> {
    xs.iter().map(|x| ParamValue::Float(*x)).collect()
}

fn main() {
    print_header("highway_losses", "drive-thru loss levels cited from reference [1] (§1, §3)");
    let started = Instant::now();
    let scenario = HighwayScenario::drive_thru();
    let engine = SweepEngine::new(0);

    println!("single car, no cooperation:");
    let spec = SweepSpec::new(BENCH_SEED)
        .axis(Param::SpeedKmh, floats(&[60.0, 80.0, 100.0, 120.0]))
        .axis(Param::ApRatePps, floats(&[5.0, 10.0]))
        .axis(Param::Rounds, vec![ParamValue::Int(u64::from(passes()))]);
    let result = engine.run(&scenario, &spec).expect("schema-valid sweep");
    println!("{:>12} {:>10} {:>18} {:>10}", "speed", "rate", "window packets", "loss");
    for (point, summary) in result.points.iter().zip(&result.summaries) {
        println!(
            "{:>9.0} km/h {:>7.0}/s {:>18.1} {:>9.1}%",
            point.get(Param::SpeedKmh).and_then(|v| v.as_f64()).unwrap(),
            point.get(Param::ApRatePps).and_then(|v| v.as_f64()).unwrap(),
            summary.get("tx_window_mean").unwrap(),
            summary.get("loss_before_pct_mean").unwrap(),
        );
    }

    println!("\nthree-car cooperating platoon on the same road:");
    println!("{:>12} {:>18} {:>14} {:>14}", "speed", "window packets", "loss before", "loss after");
    for speed in [60.0, 100.0, 120.0] {
        let point = SweepPoint::new(vec![
            (Param::SpeedKmh, ParamValue::Float(speed)),
            (Param::NCars, ParamValue::Int(3)),
            (Param::Cooperation, ParamValue::Bool(true)),
            (Param::Rounds, ParamValue::Int(u64::from(passes()))),
        ]);
        let (_, summary) = vanet_scenarios::run_point(&scenario, &point, BENCH_SEED, 0)
            .expect("schema-valid point");
        println!(
            "{:>9.0} km/h {:>18.1} {:>13.1}% {:>13.1}%",
            speed,
            summary.get("tx_window_mean").unwrap(),
            summary.get("loss_before_pct_mean").unwrap(),
            summary.get("loss_after_pct_mean").unwrap(),
        );
    }
    print_footer(started.elapsed().as_secs_f64());
}
