//! Context experiment (E8): drive-thru losses at highway speeds.
//!
//! The paper motivates C-ARQ with the measurements of its reference [1]:
//! "vehicles passing in front of an AP moving at different speeds have losses
//! on the order of 50-60% depending on the nominal sending rate and vehicle
//! speed". This bench sweeps speed × sending rate for a single car and prints
//! the per-pass loss percentage, then shows how a three-car cooperating
//! platoon changes the picture.

use bench::{print_footer, print_header};
use std::time::Instant;
use vanet_scenarios::highway::{HighwayConfig, HighwayExperiment};

fn passes() -> u32 {
    std::env::var("CARQ_BENCH_PASSES").ok().and_then(|v| v.parse().ok()).unwrap_or(8)
}

fn main() {
    print_header("highway_losses", "drive-thru loss levels cited from reference [1] (§1, §3)");
    let started = Instant::now();

    println!("single car, no cooperation:");
    println!("{:>12} {:>10} {:>18} {:>10}", "speed", "rate", "window packets", "loss");
    for speed in [60.0, 80.0, 100.0, 120.0] {
        for rate in [5.0, 10.0] {
            let obs = HighwayExperiment::new(
                HighwayConfig::drive_thru_reference()
                    .with_speed_kmh(speed)
                    .with_rate_pps(rate)
                    .with_passes(passes()),
            )
            .run();
            println!(
                "{:>9.0} km/h {:>7.0}/s {:>18.1} {:>9.1}%",
                obs.speed_kmh, obs.ap_rate_pps, obs.mean_window_packets, obs.loss_pct_before
            );
        }
    }

    println!("\nthree-car cooperating platoon on the same road:");
    println!("{:>12} {:>18} {:>14} {:>14}", "speed", "window packets", "loss before", "loss after");
    for speed in [60.0, 100.0, 120.0] {
        let obs = HighwayExperiment::new(
            HighwayConfig::drive_thru_reference()
                .with_speed_kmh(speed)
                .with_cooperating_platoon(3)
                .with_passes(passes()),
        )
        .run();
        println!(
            "{:>9.0} km/h {:>18.1} {:>13.1}% {:>13.1}%",
            obs.speed_kmh, obs.mean_window_packets, obs.loss_pct_before, obs.loss_pct_after
        );
    }
    print_footer(started.elapsed().as_secs_f64());
}
