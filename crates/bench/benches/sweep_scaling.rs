//! P1: throughput of the sweep engine vs worker count.
//!
//! Runs the same small urban sweep at 1, 2, 4 and 8 worker threads and
//! reports points/second for each, re-checking on the way that the exported
//! CSV is byte-identical at every thread count (the engine's core
//! guarantee) — with intra-point round parallelism engaged whenever the
//! thread budget exceeds the point count. On a single-core container the
//! scaling is flat by construction; on real hardware this bench documents
//! the speedup every future scaling PR should preserve.
//!
//! Rounds per point default to 1 and can be raised with
//! `CARQ_BENCH_ROUNDS` for a heavier, more realistic load.

use bench::{print_footer, print_header};
use vanet_scenarios::urban::UrbanConfig;
use vanet_scenarios::UrbanScenario;
use vanet_sweep::{Param, ParamValue, SweepEngine, SweepSpec};

fn rounds_per_point() -> u32 {
    std::env::var("CARQ_BENCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|r| *r > 0)
        .unwrap_or(1)
}

fn main() {
    print_header("sweep_scaling", "sweep-engine throughput vs worker count");
    let rounds = rounds_per_point();
    println!("rounds/point : {rounds} (this bench defaults to 1, not the paper's 30)");
    let scenario = UrbanScenario::new(UrbanConfig::paper_testbed().with_rounds(rounds));
    let spec = SweepSpec::new(0x5eed)
        .axis(
            Param::SpeedKmh,
            vec![ParamValue::Float(10.0), ParamValue::Float(20.0), ParamValue::Float(30.0)],
        )
        .axis(Param::NCars, vec![ParamValue::Int(2), ParamValue::Int(3)])
        .axis(Param::Cooperation, vec![ParamValue::Bool(true), ParamValue::Bool(false)]);

    println!("{:>8} {:>10} {:>14} {:>10}", "threads", "points", "elapsed (s)", "points/s");
    let started = std::time::Instant::now();
    let mut reference_csv: Option<String> = None;
    for threads in [1usize, 2, 4, 8] {
        let result = SweepEngine::new(threads).run(&scenario, &spec).expect("schema-valid sweep");
        println!(
            "{:>8} {:>10} {:>14.2} {:>10.2}",
            threads,
            result.len(),
            result.elapsed.as_secs_f64(),
            result.points_per_second(),
        );
        let csv = result.to_csv();
        match &reference_csv {
            None => reference_csv = Some(csv),
            Some(reference) => {
                assert_eq!(reference, &csv, "CSV must be identical at every thread count")
            }
        }
    }
    println!("determinism: CSV identical across all thread counts");
    print_footer(started.elapsed().as_secs_f64());
}
