//! Ablation A1: per-packet REQUESTs (the prototype's behaviour) versus the
//! batched-REQUEST optimisation sketched in §3.3 of the paper ("one
//! optimization that arises directly is to include in the REQUEST messages
//! all the missing packets, instead of sending a REQUEST for each one").
//!
//! The bench compares, for the same urban testbed workload:
//!   * residual losses after cooperation (recovery quality),
//!   * number of REQUEST frames and cooperative retransmissions sent
//!     (protocol overhead).

use bench::{bench_rounds, print_footer, print_header, run_urban};
use carq::{CarqConfig, RequestStrategy};
use vanet_scenarios::urban::UrbanConfig;
use vanet_stats::{counter_total, into_round_results, table1};

fn run_with(strategy: RequestStrategy) -> (f64, f64, f64, f64, f64) {
    let carq = match strategy {
        RequestStrategy::PerPacket => CarqConfig::paper_prototype(),
        RequestStrategy::Batched => CarqConfig::paper_prototype().with_batched_requests(),
    };
    let config = UrbanConfig::paper_testbed().with_rounds(bench_rounds()).with_carq(carq);
    let (reports, elapsed) = run_urban(config);
    let requests = counter_total(&reports, "requests_sent");
    let coop_sent = counter_total(&reports, "coop_data_sent");
    let rows = table1(&into_round_results(reports));
    let mean_before =
        rows.iter().map(|r| r.loss_pct_before).sum::<f64>() / rows.len().max(1) as f64;
    let mean_after = rows.iter().map(|r| r.loss_pct_after).sum::<f64>() / rows.len().max(1) as f64;
    (mean_before, mean_after, requests, coop_sent, elapsed)
}

fn main() {
    print_header(
        "ablation_batch_request",
        "A1 — per-packet REQUESTs vs the batched-REQUEST optimisation (§3.3)",
    );
    let mut total_elapsed = 0.0;
    println!(
        "{:<14} {:>14} {:>14} {:>16} {:>16}",
        "strategy", "loss before", "loss after", "REQUEST frames", "coop-data frames"
    );
    for (label, strategy) in
        [("per-packet", RequestStrategy::PerPacket), ("batched", RequestStrategy::Batched)]
    {
        let (before, after, requests, coop_data, elapsed) = run_with(strategy);
        total_elapsed += elapsed;
        println!("{label:<14} {before:>13.1}% {after:>13.1}% {requests:>16} {coop_data:>16}");
    }
    println!("\nexpected shape: both strategies recover a similar fraction of the losses,");
    println!("but the batched variant needs roughly one REQUEST frame per recovery cycle");
    println!("instead of one per missing packet.");
    print_footer(total_elapsed);
}
