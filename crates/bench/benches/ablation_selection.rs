//! Ablation A2: cooperator-selection strategies.
//!
//! The paper leaves "an algorithm for selecting the optimal cooperators" as
//! future work (§6) — its prototype simply recruits every one-hop neighbour.
//! This bench compares the provided policies on a larger (five-car) platoon,
//! where limiting the cooperator set trades recovery quality against
//! response traffic.

use bench::{bench_rounds, print_footer, print_header, run_urban};
use carq::{CarqConfig, SelectionStrategy};
use vanet_scenarios::urban::UrbanConfig;
use vanet_stats::{counter_total, into_round_results, table1};

fn main() {
    print_header(
        "ablation_selection",
        "A2 — cooperator-selection strategies (future work of §6) on a 5-car platoon",
    );
    let strategies: [(&str, SelectionStrategy); 4] = [
        ("all neighbours", SelectionStrategy::AllNeighbours),
        ("first heard, k=1", SelectionStrategy::FirstHeard { k: 1 }),
        ("first heard, k=2", SelectionStrategy::FirstHeard { k: 2 }),
        ("strongest, k=2", SelectionStrategy::StrongestSignal { k: 2 }),
    ];
    let rounds = bench_rounds().min(15);
    let mut total_elapsed = 0.0;
    println!(
        "{:<18} {:>14} {:>14} {:>16} {:>18}",
        "selection", "loss before", "loss after", "coop-data frames", "responses suppressed"
    );
    for (label, selection) in strategies {
        let carq = CarqConfig::paper_prototype().with_selection(selection);
        let config =
            UrbanConfig::paper_testbed().with_platoon_size(5).with_rounds(rounds).with_carq(carq);
        let (reports, elapsed) = run_urban(config);
        total_elapsed += elapsed;
        let suppressed = counter_total(&reports, "responses_suppressed");
        let coop_sent = counter_total(&reports, "coop_data_sent");
        let rows = table1(&into_round_results(reports));
        let before = rows.iter().map(|r| r.loss_pct_before).sum::<f64>() / rows.len().max(1) as f64;
        let after = rows.iter().map(|r| r.loss_pct_after).sum::<f64>() / rows.len().max(1) as f64;
        println!("{label:<18} {before:>13.1}% {after:>13.1}% {coop_sent:>16.0} {suppressed:>18.0}");
    }
    println!("\nexpected shape: recruiting every neighbour recovers the most packets but");
    println!("sends the most cooperative traffic; small cooperator sets trade a little");
    println!("residual loss for much less response traffic and fewer suppressions.");
    print_footer(total_elapsed);
}
