//! P2: throughput of sharded fleet execution vs worker count.
//!
//! Shards a fixed urban preset across 1, 2 and 4 workers (each an
//! in-process worker with its own shard journal — a faithful stand-in for
//! the `carq-cli fleet run` worker processes, minus process start-up),
//! merges the shard journals, and reports rounds simulated vs wall time
//! per worker count — re-checking on the way that the merged cache serves
//! the final pass with **zero** `run_round` calls and that its CSV is
//! byte-identical to the unsharded single-process run (the fleet's core
//! guarantee). On a single-core container the scaling is flat by
//! construction (see ROADMAP); re-baseline on real multi-core hardware.
//!
//! Rounds per point default to 1 and can be raised with
//! `CARQ_BENCH_ROUNDS` for a heavier, more realistic load.

use std::sync::Arc;

use bench::{print_footer, print_header};
use vanet_fleet::{execute_shard, merge_into, ShardPlan, SweepCache};
use vanet_sweep::{presets, SweepEngine};

fn rounds_per_point() -> u32 {
    std::env::var("CARQ_BENCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|r| *r > 0)
        .unwrap_or(1)
}

fn main() {
    print_header("fleet_scaling", "sharded sweep throughput vs worker count");
    let rounds = rounds_per_point();
    let preset = "urban-platoon";
    println!("preset       : {preset}, {rounds} round(s)/point (default 1, not the paper's 30)");

    let (scenario, spec) = presets::find(preset).expect("catalogue preset").build(0x5eed, rounds);
    let reference = SweepEngine::new(1).run(scenario.as_ref(), &spec).expect("monolithic run");
    let reference_csv = reference.to_csv();
    println!(
        "monolithic   : {} point(s), {} round(s) in {:.2} s",
        reference.len(),
        reference.rounds_simulated,
        reference.elapsed.as_secs_f64(),
    );

    let started = std::time::Instant::now();
    let scratch = std::env::temp_dir().join(format!("carq-bench-fleet-{}", std::process::id()));
    println!("{:>8} {:>10} {:>14} {:>10}", "workers", "simulated", "elapsed (s)", "rounds/s");
    for workers in [1usize, 2, 4] {
        std::fs::remove_dir_all(&scratch).ok();
        let plan =
            ShardPlan::for_preset(preset, 0x5eed, rounds, workers, None).expect("plan builds");
        let wall = std::time::Instant::now();
        // One thread per worker, mirroring `fleet run`'s process fan-out.
        let outcomes: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .shards
                .iter()
                .map(|shard| {
                    let dir = scratch.join(format!("w{}-{}", workers, shard.index));
                    scope.spawn(move || execute_shard(shard, &dir, 1).expect("shard executes"))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let simulated: usize = outcomes.iter().map(|o| o.rounds_simulated).sum();

        let merged_dir = scratch.join(format!("w{workers}-merged"));
        let merged = Arc::new(SweepCache::open(&merged_dir).expect("merged cache opens"));
        let shard_dirs: Vec<_> = plan
            .shards
            .iter()
            .map(|shard| scratch.join(format!("w{}-{}", workers, shard.index)))
            .collect();
        merge_into(&merged, &shard_dirs).expect("merge succeeds");
        let final_pass = SweepEngine::new(1)
            .with_cache(merged)
            .run(scenario.as_ref(), &spec)
            .expect("final pass runs");
        let elapsed = wall.elapsed().as_secs_f64();

        assert_eq!(final_pass.rounds_simulated, 0, "merged cache must cover the sweep");
        assert_eq!(
            final_pass.to_csv(),
            reference_csv,
            "fleet export must be byte-identical to the monolithic run"
        );
        println!(
            "{:>8} {:>10} {:>14.2} {:>10.2}",
            workers,
            simulated,
            elapsed,
            if elapsed > 0.0 { simulated as f64 / elapsed } else { f64::INFINITY },
        );
    }
    std::fs::remove_dir_all(&scratch).ok();
    println!("determinism: merged exports identical to the monolithic run at every worker count");
    print_footer(started.elapsed().as_secs_f64());
}
