//! Reproduces **Figures 6, 7 and 8** of the paper: for each car, the
//! probability of reception *after* the Cooperative-ARQ phase compared with
//! the joint probability that any car of the platoon received the packet.
//!
//! The paper's headline observation is that the two curves are almost
//! coincident — the protocol recovers essentially every packet the platoon
//! holds ("performs as well as a virtual car which uses the better reception
//! conditions of all of them"). The bench prints both curves and the mean
//! gap between them.

use bench::{print_footer, print_header, run_paper_testbed};
use vanet_mac::NodeId;
use vanet_stats::{
    into_round_results, joint_series, recovery_series, render_series_csv, SeriesPoint,
};

fn mean_probability(series: &[SeriesPoint]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|p| p.probability).sum::<f64>() / series.len() as f64
}

fn main() {
    print_header("fig_carq", "Figures 6-8 — reception with C-ARQ vs joint reception in car 1/2/3");
    let (reports, elapsed) = run_paper_testbed();
    let results = into_round_results(reports);
    for (figure, car) in (6..=8).zip([NodeId::new(1), NodeId::new(2), NodeId::new(3)]) {
        let after = recovery_series(&results, car);
        let joint = joint_series(&results, car);
        let mean_after = mean_probability(&after);
        let mean_joint = mean_probability(&joint);
        println!("--- Figure {figure}: car {car} ---");
        println!(
            "mean P(rx after coop) = {mean_after:.3}   mean P(joint rx in car 1,2 or 3) = {mean_joint:.3}   \
             optimality gap = {:.3}",
            mean_joint - mean_after
        );
        let csv = render_series_csv(&["rx_after_coop", "joint_rx"], &[after, joint]);
        println!("{csv}");
    }
    print_footer(elapsed);
}
