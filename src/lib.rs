//! # carq-repro — Cooperative ARQ for Delay-Tolerant Vehicular Networks
//!
//! Umbrella crate of the reproduction of *"A Cooperative ARQ for
//! Delay-Tolerant Vehicular Networks"* (Morillo-Pozo, Trullols, Barceló,
//! García-Vidal — ICDCS Workshops 2008). It re-exports every layer of the
//! stack so that examples, integration tests and downstream users can depend
//! on a single crate:
//!
//! * [`sim`] — deterministic discrete-event engine.
//! * [`geo`] — geometry, roads and vehicular mobility.
//! * [`radio`] — path loss, shadowing, fading and packet-error models.
//! * [`mac`] — broadcast 802.11-like medium with carrier sensing and
//!   collisions.
//! * [`dtn`] — AP traffic sources, reception maps, cooperation buffers,
//!   epidemic baseline and the joint-reception oracle.
//! * [`protocol`] — the Cooperative ARQ protocol itself (the paper's
//!   contribution).
//! * [`stats`] — Table-1 and figure-series generation, summaries,
//!   percentiles and CSV/JSON record export.
//! * [`scenarios`] — the urban testbed, highway drive-thru and multi-AP
//!   download experiments behind the unified `Scenario` API: typed
//!   parameter schemas, per-round purity, a name-indexed registry.
//! * [`sweep`] — the parallel, deterministic experiment-sweep engine
//!   (parameter grids over any scenario, intra-point parallel rounds,
//!   thread-count-independent results) that the `carq-cli` binary drives
//!   from the command line.
//! * [`cache`] — the persistent, crash-tolerant round-report store that
//!   makes sweeps resumable: re-runs simulate only what the cache does not
//!   already hold; shard journals merge into one store, and compaction
//!   reclaims superseded records.
//! * [`fleet`] — sharded multi-process sweep execution: deterministic
//!   shard plans, self-describing shard files, worker execution against
//!   per-shard journals, and merge-then-export orchestration
//!   (`carq-cli fleet run --workers N`).
//! * [`gen`] — procedural scenario generation: composable deterministic
//!   world generators (`grid-city`, `highway-flow`, `platoon-merge`) whose
//!   output is a first-class [`scenarios`] scenario, identified purely by
//!   `(generator, canonical params, gen seed)`; grid expansion feeds the
//!   mass campaigns of `carq-cli campaign run` (see `docs/GENERATION.md`).
//! * [`trace`] — zero-cost structured event tracing and the invariant
//!   checker behind `carq-cli verify`: typed trace records, pluggable
//!   sinks that monomorphize away when disabled, a compact binary trace
//!   codec with JSONL export, and the protocol-invariant verification
//!   pass (see `docs/OBSERVABILITY.md`).
//! * [`analysis`] — trace-driven analysis behind `carq-cli analyze`:
//!   recovery-latency distributions matched from the record stream, medium
//!   occupancy and airtime shares, per-node timelines, trace diffing, and
//!   the digest journal that makes re-analysis free (warm runs simulate
//!   zero rounds).
//! * [`faults`] — deterministic, seeded fault injection (`VANETFLT1`
//!   plans: kills, stalls, torn appends, bit rot, transient I/O, slow
//!   disk) behind `carq-cli chaos` and the self-healing fleet supervisor
//!   (see `docs/RESILIENCE.md`); zero-cost when disarmed.
//!
//! `docs/ARCHITECTURE.md` maps how these crates fit together;
//! `docs/REPRODUCING.md` maps each paper figure and table to the command
//! that regenerates it.
//!
//! ## Quickstart
//!
//! ```rust,no_run
//! use carq_repro::scenarios::{run_rounds, Param, ParamValue, ScenarioRegistry, SweepPoint};
//!
//! let registry = ScenarioRegistry::builtin();
//! let urban = registry.get("urban").expect("built-in scenario");
//! let point = SweepPoint::new(vec![(Param::Rounds, ParamValue::Int(5))]);
//! let run = urban.configure(&point).expect("schema-valid point");
//! let reports = run_rounds(run.as_ref(), 0x2008_1cdc, 4);
//! let table = carq_repro::stats::table1(&carq_repro::stats::into_round_results(reports));
//! println!("{}", carq_repro::stats::render_table1(&table));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use carq as protocol;
pub use sim_core as sim;
pub use vanet_analysis as analysis;
pub use vanet_cache as cache;
pub use vanet_dtn as dtn;
pub use vanet_faults as faults;
pub use vanet_fleet as fleet;
pub use vanet_gen as gen;
pub use vanet_geo as geo;
pub use vanet_mac as mac;
pub use vanet_radio as radio;
pub use vanet_scenarios as scenarios;
pub use vanet_stats as stats;
pub use vanet_sweep as sweep;
pub use vanet_trace as trace;
